//! Quickstart: run a sparse pillar-based detector on the SPADE accelerator
//! model and compare it against the ideal dense accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spade::baselines::DenseAccelerator;
use spade::core::{Accelerator, SpadeAccelerator, SpadeConfig};
use spade::nn::graph::{execute_pattern, ExecutionContext};
use spade::nn::{Model, ModelKind};
use spade::pointcloud::DatasetPreset;

fn main() {
    // 1. Generate a synthetic KITTI-like LiDAR frame.
    let preset = DatasetPreset::kitti_like();
    let frame = preset.generate_frame(42);
    println!(
        "frame: {} points, {} active pillars ({:.1}% of the {} BEV grid)",
        frame.num_points,
        frame.pillars.num_active(),
        frame.pillars.occupancy() * 100.0,
        preset.grid_shape(),
    );

    // 2. Run the SPP2 model (SpConv-P backbone with dynamic vector pruning).
    let model = Model::build(ModelKind::Spp2);
    let pillar_cfg = preset.pillar_config();
    let ctx = ExecutionContext {
        scene: Some(&frame.scene),
        pillar_config: Some(&pillar_cfg),
        ..Default::default()
    };
    let encoder_macs = (frame.num_points * 9 * 64) as u64;
    let (trace, workloads) = execute_pattern(
        model.spec(),
        &frame.pillars.active_coords,
        preset.grid_shape(),
        encoder_macs,
        &ctx,
    );
    println!(
        "SPP2: {:.1} GOPs per frame, {:.1}% computation savings vs dense",
        trace.total_gops(),
        trace.computation_savings() * 100.0
    );

    // 3. Simulate on SPADE.HE and on the ideal dense accelerator, both
    //    through the common `Accelerator` API so the comparison uses the same
    //    per-layer model as the experiments suite.
    let config = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(config).simulate_network(&workloads, trace.encoder_macs);
    let dense: &dyn Accelerator = &DenseAccelerator::new(config);
    let dense_perf = dense.simulate_network(&workloads, trace.encoder_macs);
    println!(
        "SPADE.HE: {:.3} ms/frame ({:.0} FPS), {:.2} mJ",
        spade.latency_ms,
        spade.fps,
        spade.energy.total_mj()
    );
    println!(
        "vs DenseAcc.HE: {:.2}x speedup, {:.2}x energy savings",
        dense_perf.total_cycles as f64 / spade.total_cycles.max(1) as f64,
        dense_perf.energy.total_pj() / spade.energy.total_pj().max(1e-9)
    );
}
