//! Accelerator comparison: run every sparse model of the paper's zoo on the
//! full Fig. 9/14 comparison set — SPADE, the ideal dense accelerator, the
//! conventional element-sparse Conv2D accelerator, and the PointAcc model —
//! entirely through the common [`Accelerator`] trait, then add the GPU/Jetson
//! platform models for reference.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use spade::baselines::{
    DenseAccelerator, Platform, PlatformKind, PointAccModel, SpConv2dAccelerator,
};
use spade::core::{Accelerator, SpadeAccelerator, SpadeConfig};
use spade::nn::graph::{execute_pattern, ExecutionContext};
use spade::nn::{Model, ModelKind};
use spade::pointcloud::dataset::DatasetKind;
use spade::pointcloud::DatasetPreset;

fn main() {
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let spconv2d = SpConv2dAccelerator::default();
    let pointacc = PointAccModel::new(cfg);
    // Every accelerator is driven through the same trait object — adding a
    // backend to this comparison means implementing `Accelerator`, nothing
    // else changes.
    let accelerators: [&dyn Accelerator; 4] = [&spade, &dense, &spconv2d, &pointacc];

    for kind in ModelKind::SPARSE {
        let preset = match kind.dataset() {
            DatasetKind::KittiLike => DatasetPreset::kitti_like(),
            DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
        };
        let frame = preset.generate_frame(3);
        let pillar_cfg = preset.pillar_config();
        let model = Model::build(kind);
        let encoder_macs = (frame.num_points * 9 * 64) as u64;
        let ctx = ExecutionContext {
            scene: Some(&frame.scene),
            pillar_config: Some(&pillar_cfg),
            ..Default::default()
        };
        let (trace, workloads) = execute_pattern(
            model.spec(),
            &frame.pillars.active_coords,
            preset.grid_shape(),
            encoder_macs,
            &ctx,
        );

        println!(
            "{} (computation savings {:.1}%):",
            kind.name(),
            trace.computation_savings() * 100.0
        );
        let perfs: Vec<_> = accelerators
            .iter()
            .map(|acc| acc.simulate_network(&workloads, trace.encoder_macs))
            .collect();
        let reference = &perfs[0];
        for (acc, perf) in accelerators.iter().zip(&perfs) {
            println!(
                "  {:<12} | {:>10.3} ms | {:>8.2} Mcycles | {:>8.2} MiB DRAM | {:>8.3} mJ | {:>6.2}x vs SPADE",
                acc.name(),
                perf.latency_ms,
                perf.total_cycles as f64 / 1e6,
                perf.total_dram_bytes as f64 / (1024.0 * 1024.0),
                perf.energy.total_mj(),
                perf.total_cycles as f64 / reference.total_cycles.max(1) as f64,
            );
        }
        for platform in [PlatformKind::Gpu2080Ti, PlatformKind::JetsonXavierNx] {
            let lat = Platform::new(platform).run(&trace);
            println!(
                "  {:<12} | {:>10.3} ms | {:>32} | {:>6.2}x vs SPADE",
                platform.to_string(),
                lat.total_ms(),
                "(platform latency model)",
                lat.total_ms() / reference.latency_ms,
            );
        }
    }
}
