//! Accelerator comparison: run every sparse model of the paper's zoo on
//! SPADE (high-end and low-end), the ideal dense accelerator, the PointAcc
//! model, and the GPU/Jetson platform models.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use spade::baselines::{DenseAccelerator, Platform, PlatformKind, PointAccModel};
use spade::core::{SpadeAccelerator, SpadeConfig};
use spade::nn::graph::{execute_pattern, ExecutionContext};
use spade::nn::{Model, ModelKind};
use spade::pointcloud::dataset::DatasetKind;
use spade::pointcloud::DatasetPreset;

fn main() {
    println!("model | savings | SPADE.HE ms | DenseAcc.HE ms equiv speedup | PointAcc ratio | 2080Ti speedup | Jetson-NX speedup");
    for kind in ModelKind::SPARSE {
        let preset = match kind.dataset() {
            DatasetKind::KittiLike => DatasetPreset::kitti_like(),
            DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
        };
        let frame = preset.generate_frame(3);
        let pillar_cfg = preset.pillar_config();
        let model = Model::build(kind);
        let encoder_macs = (frame.num_points * 9 * 64) as u64;
        let ctx = ExecutionContext {
            scene: Some(&frame.scene),
            pillar_config: Some(&pillar_cfg),
            ..Default::default()
        };
        let (trace, workloads) = execute_pattern(
            model.spec(),
            &frame.pillars.active_coords,
            preset.grid_shape(),
            encoder_macs,
            &ctx,
        );

        let cfg = SpadeConfig::high_end();
        let spade = SpadeAccelerator::new(cfg).simulate_network(&workloads, trace.encoder_macs);
        let dense = DenseAccelerator::new(cfg);
        let pacc = PointAccModel::new(cfg).simulate_network(&workloads, trace.encoder_macs);
        let gpu = Platform::new(PlatformKind::Gpu2080Ti);
        let jetson = Platform::new(PlatformKind::JetsonXavierNx);

        println!(
            "{:<5} | {:>6.1}% | {:>10.3} | {:>27.2}x | {:>13.2}x | {:>13.1}x | {:>16.1}x",
            kind.name(),
            trace.computation_savings() * 100.0,
            spade.latency_ms,
            dense.speedup_of(&spade, &trace),
            pacc.total_cycles as f64 / spade.total_cycles as f64,
            gpu.run(&trace).total_ms() / spade.latency_ms,
            jetson.run(&trace).total_ms() / spade.latency_ms,
        );
    }
}
