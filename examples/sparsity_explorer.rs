//! Sparsity exploration: sweep the dynamic-pruning keep ratio of SpConv-P and
//! report the accuracy/computation trade-off the paper's Fig. 13(a) studies.
//!
//! ```text
//! cargo run --release --example sparsity_explorer
//! ```

use spade::nn::graph::{execute_pattern, ExecutionContext};
use spade::nn::{Model, ModelKind, PruningConfig};
use spade::pointcloud::{AccuracyProxy, DatasetPreset};

fn main() {
    let preset = DatasetPreset::kitti_like();
    let frame = preset.generate_frame(7);
    let pillar_cfg = preset.pillar_config();
    let model = Model::build(ModelKind::Spp2);
    let dense = Model::build(ModelKind::Pp);
    let encoder_macs = (frame.num_points * 9 * 64) as u64;

    // Dense reference for the savings computation.
    let (dense_trace, _) = execute_pattern(
        dense.spec(),
        &frame.pillars.active_coords,
        preset.grid_shape(),
        encoder_macs,
        &ExecutionContext::default(),
    );
    let (base_map, _) = ModelKind::Spp2.baseline_accuracy();
    let proxy = AccuracyProxy::with_finetuning(base_map);

    println!("keep_ratio | GOPs    | savings | foreground coverage | proxy mAP (BEV)");
    for keep in [1.0, 0.8, 0.65, 0.5, 0.35, 0.2] {
        let ctx = ExecutionContext {
            pruning: PruningConfig::with_keep_ratio(keep),
            scene: Some(&frame.scene),
            pillar_config: Some(&pillar_cfg),
            seed: 7,
        };
        let (trace, _) = execute_pattern(
            model.spec(),
            &frame.pillars.active_coords,
            preset.grid_shape(),
            encoder_macs,
            &ctx,
        );
        let savings = 1.0 - trace.total_macs() as f64 / dense_trace.total_macs() as f64;
        let coverage = trace.foreground_coverage.unwrap_or(1.0);
        println!(
            "{:>10.2} | {:>7.2} | {:>6.1}% | {:>19.2} | {:>10.2}",
            keep,
            trace.total_gops(),
            savings * 100.0,
            coverage,
            proxy.estimate_map(coverage)
        );
    }
}
