//! Design-space exploration walkthrough: compare the legacy i.i.d. drive
//! against a scripted persistent scenario (frame-to-frame object
//! persistence, stopped-traffic / crossing-wave events), print how occupancy
//! and temporal locality evolve, then sweep the hardware grid against the
//! scripted drive and extract the latency/energy/area Pareto frontier. The
//! sweep fans out across every available core; the result is bit-identical
//! to a serial run.
//!
//! ```text
//! cargo run --release --example dse_explorer
//! ```
//!
//! For the full default sweep with an explicit worker count and CSV/JSON
//! export, use the binary instead: `cargo run --release -p spade-bench --bin
//! spade-experiments -- dse --jobs 4 --scenario stop-and-go --csv pareto.csv`.

use spade::pointcloud::{DatasetPreset, DriveScenario, NamedScenario};
use spade_bench::dse::{run_dse_with_jobs, DseParams, SweepAxes};
use spade_bench::{default_jobs, WorkloadScale};

fn print_drive(name: &str, frames: &[spade::pointcloud::DriveFrame]) {
    println!("{name}:");
    for f in frames {
        let events = if f.active_events.is_empty() {
            String::new()
        } else {
            format!(" [{}]", f.active_events.join(", "))
        };
        let overlap = f
            .pillar_overlap
            .map_or_else(|| "    -".to_owned(), |o| format!("{o:.3}"));
        println!(
            "  frame {} | density {:.2}x | {:>6} points | {:>5} active pillars | overlap {}{}",
            f.index,
            f.density_factor,
            f.frame.num_points,
            f.frame.pillars.num_active(),
            overlap,
            events,
        );
    }
    println!(
        "  mean consecutive-frame pillar overlap: {:.3}",
        DriveScenario::mean_overlap_of(frames)
    );
}

fn main() {
    // 1. The workload axis. The i.i.d. baseline resamples the whole scene
    //    every frame; the scripted stop-and-go scenario evolves one
    //    persistent world, so consecutive frames share most active pillars.
    let preset = DatasetPreset::kitti_like();
    let baseline = DriveScenario::named(preset.clone(), NamedScenario::Constant, 6, 2024);
    print_drive("Legacy i.i.d. drive (constant density)", &baseline.frames());
    let scripted = DriveScenario::named(preset, NamedScenario::StopAndGo, 6, 2024);
    print_drive(
        "\nScripted stop-and-go drive (persistent world)",
        &scripted.frames(),
    );

    // 2. The hardware axes, crossed with the scripted drive. The reduced
    //    scale keeps this example snappy; the `dse` experiment runs the
    //    paper-scale grid.
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes::paper_neighbourhood();
    params.scenario = Some(NamedScenario::StopAndGo);
    params.num_frames = 6;
    let jobs = default_jobs();
    println!(
        "\nSweeping {} configurations across {} worker threads...",
        params.axes.expand_configs().len(),
        jobs,
    );
    let result = run_dse_with_jobs(&params, jobs);
    println!("\n{}", result.summary());
}
