//! Design-space exploration walkthrough: sweep the hardware grid against a
//! suburb-to-downtown drive scenario, print how occupancy (and therefore the
//! sparse win) drifts across the drive, and extract the latency/energy/area
//! Pareto frontier. The sweep fans out across every available core; the
//! result is bit-identical to a serial run.
//!
//! ```text
//! cargo run --release --example dse_explorer
//! ```
//!
//! For the full default sweep with an explicit worker count and CSV/JSON
//! export, use the binary instead: `cargo run --release -p spade-bench --bin
//! spade-experiments -- dse --jobs 4 --csv pareto.csv`.

use spade::pointcloud::{DatasetPreset, DensityProfile, DriveScenario, DriveScenarioConfig};
use spade_bench::dse::{run_dse_with_jobs, DseParams, SweepAxes};
use spade_bench::{default_jobs, WorkloadScale};

fn main() {
    // 1. The workload axis: a drive whose density doubles by the end.
    //    Generate the frames once and read everything off that one vector.
    let scenario = DriveScenario::new(
        DatasetPreset::kitti_like(),
        DriveScenarioConfig {
            num_frames: 6,
            base_seed: 2024,
            profile: DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
        },
    );
    let frames = scenario.frames();
    let occupancy = DriveScenario::occupancy_of(&frames);
    println!("Drive scenario (KITTI-like, 6 frames, density 0.5x -> 2.0x):");
    for (f, occ) in frames.iter().zip(&occupancy) {
        println!(
            "  frame {} | density {:.2}x | {:>6} points | {:>5} active pillars | occupancy {:.2}%",
            f.index,
            f.density_factor,
            f.frame.num_points,
            f.frame.pillars.num_active(),
            occ * 100.0,
        );
    }

    // 2. The hardware axes, crossed with that drive. The reduced scale keeps
    //    this example snappy; the `dse` experiment runs the paper-scale grid.
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes::paper_neighbourhood();
    let jobs = default_jobs();
    println!(
        "\nSweeping {} configurations across {} worker threads...",
        params.axes.expand_configs().len(),
        jobs,
    );
    let result = run_dse_with_jobs(&params, jobs);
    println!("\n{}", result.summary());
}
