//! Unit tests for the [`Accelerator`] trait: all four implementors — SPADE,
//! DenseAcc, SpConv2D-Acc, and PointAcc — must return consistent, nonzero
//! [`spade::core::NetworkPerf`] results on a shared SPP2 workload fixture.

use spade::baselines::{DenseAccelerator, PointAccModel, SpConv2dAccelerator};
use spade::core::{Accelerator, NetworkPerf, SpadeAccelerator, SpadeConfig};
use spade::nn::graph::{execute_pattern, ExecutionContext, LayerWorkload};
use spade::nn::{Model, ModelKind};
use spade::tensor::{GridShape, PillarCoord};

/// The shared fixture: SPP2 executed at pattern level on a 96×96 grid with
/// clustered active pillars (LiDAR-like occupancy).
fn spp2_fixture() -> (Vec<LayerWorkload>, u64) {
    let grid = GridShape::new(96, 96);
    let mut coords: Vec<PillarCoord> = Vec::new();
    for (br, bc) in [(8u32, 8u32), (40, 56), (72, 24)] {
        for r in 0..10 {
            for c in 0..10 {
                coords.push(PillarCoord::new(br + r, bc + c));
            }
        }
    }
    let encoder_macs = 250_000u64;
    let model = Model::build(ModelKind::Spp2);
    let (_, workloads) = execute_pattern(
        model.spec(),
        &coords,
        grid,
        encoder_macs,
        &ExecutionContext::default(),
    );
    (workloads, encoder_macs)
}

/// The four implementors, boxed so the tests iterate over them uniformly.
fn all_accelerators() -> Vec<Box<dyn Accelerator>> {
    let cfg = SpadeConfig::high_end();
    vec![
        Box::new(SpadeAccelerator::new(cfg)),
        Box::new(DenseAccelerator::new(cfg)),
        Box::new(SpConv2dAccelerator::default()),
        Box::new(PointAccModel::new(cfg)),
    ]
}

fn assert_nonzero(name: &str, perf: &NetworkPerf, num_layers: usize) {
    assert_eq!(perf.layers.len(), num_layers, "{name}: layer count");
    assert!(perf.total_cycles > 0, "{name}: zero cycles");
    assert!(perf.total_macs > 0, "{name}: zero MACs");
    assert!(perf.total_dram_bytes > 0, "{name}: zero DRAM traffic");
    assert!(perf.latency_ms > 0.0, "{name}: zero latency");
    assert!(perf.fps > 0.0, "{name}: zero fps");
    assert!(perf.energy.total_pj() > 0.0, "{name}: zero energy");
    assert!(perf.average_power_w() > 0.0, "{name}: zero power");
}

#[test]
fn there_are_at_least_four_implementors() {
    let names: Vec<String> = all_accelerators()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    assert!(names.len() >= 4);
    for expected in ["SPADE", "DenseAcc", "SpConv2D-Acc", "PointAcc"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing {expected} in {names:?}"
        );
    }
}

#[test]
fn every_implementor_returns_nonzero_network_perf_on_spp2() {
    let (workloads, encoder_macs) = spp2_fixture();
    for acc in all_accelerators() {
        let perf = acc.simulate_network(&workloads, encoder_macs);
        assert_nonzero(acc.name(), &perf, workloads.len());
    }
}

#[test]
fn network_perf_is_consistent_with_per_layer_results() {
    let (workloads, encoder_macs) = spp2_fixture();
    for acc in all_accelerators() {
        let perf = acc.simulate_network(&workloads, encoder_macs);
        let layer_cycles: u64 = workloads
            .iter()
            .map(|w| acc.simulate_layer(w).total_cycles)
            .sum();
        assert_eq!(
            perf.total_cycles,
            layer_cycles + perf.encoder_cycles,
            "{}: network cycles must equal layer cycles + encoder cycles",
            acc.name()
        );
        let layer_dram: u64 = workloads
            .iter()
            .map(|w| acc.simulate_layer(w).dram_bytes)
            .sum();
        assert_eq!(
            perf.total_dram_bytes,
            layer_dram,
            "{}: network DRAM must equal summed layer DRAM",
            acc.name()
        );
    }
}

#[test]
fn per_layer_results_are_nonzero_and_named() {
    let (workloads, _) = spp2_fixture();
    for acc in all_accelerators() {
        for w in &workloads {
            let perf = acc.simulate_layer(w);
            assert_eq!(perf.name, w.spec.name, "{}: layer name", acc.name());
            assert_eq!(perf.kind, w.spec.kind, "{}: layer kind", acc.name());
            assert!(perf.total_cycles > 0, "{}: zero layer cycles", acc.name());
            assert!(perf.macs > 0, "{}: zero layer MACs", acc.name());
            assert!(
                perf.total_cycles >= perf.mxu_cycles,
                "{}: total below compute",
                acc.name()
            );
        }
    }
}

#[test]
fn implementors_are_deterministic() {
    let (workloads, encoder_macs) = spp2_fixture();
    for acc in all_accelerators() {
        let a = acc.simulate_network(&workloads, encoder_macs);
        let b = acc.simulate_network(&workloads, encoder_macs);
        assert_eq!(a, b, "{}: nondeterministic result", acc.name());
    }
}

#[test]
fn spade_beats_the_dense_baseline_on_the_sparse_fixture() {
    let (workloads, encoder_macs) = spp2_fixture();
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let s = Accelerator::simulate_network(&spade, &workloads, encoder_macs);
    let d = Accelerator::simulate_network(&dense, &workloads, encoder_macs);
    assert!(
        s.total_cycles < d.total_cycles,
        "SPADE ({}) should beat DenseAcc ({}) on a sparse workload",
        s.total_cycles,
        d.total_cycles
    );
}
