//! End-to-end integration tests spanning the workspace crates: synthetic
//! frame → pillarisation → model execution → accelerator simulation →
//! baseline comparisons.

use spade::baselines::{
    DenseAccelerator, Platform, PlatformKind, PointAccModel, SpConv2dAccelerator,
};
use spade::core::{Accelerator, SpadeAccelerator, SpadeConfig};
use spade::nn::graph::{execute_pattern, ExecutionContext};
use spade::nn::{Model, ModelKind};
use spade::pointcloud::DatasetPreset;
use spade::tensor::GridShape;

/// Builds a reduced-scale (quarter-grid) run of one model so the integration
/// tests stay fast in debug builds.
fn reduced_run(
    kind: ModelKind,
    seed: u64,
) -> (
    spade::nn::graph::NetworkTrace,
    Vec<spade::nn::graph::LayerWorkload>,
) {
    let preset = DatasetPreset::kitti_like();
    let frame = preset.generate_frame(seed);
    let base = preset.grid_shape();
    // Quarter-size window over the mid-range road corridor, so the cropped
    // frame keeps the occupancy statistics of a full frame.
    let grid = GridShape::new(base.height / 4, base.width / 4);
    let (row0, col0) = (base.height / 4, base.width * 3 / 8);
    let coords: Vec<_> = frame
        .pillars
        .active_coords
        .iter()
        .filter(|c| {
            c.row >= row0
                && c.row < row0 + grid.height
                && c.col >= col0
                && c.col < col0 + grid.width
        })
        .map(|c| spade::tensor::PillarCoord::new(c.row - row0, c.col - col0))
        .collect();
    let pillar_cfg = preset.pillar_config();
    let ctx = ExecutionContext {
        scene: Some(&frame.scene),
        pillar_config: Some(&pillar_cfg),
        seed,
        ..Default::default()
    };
    execute_pattern(Model::build(kind).spec(), &coords, grid, 500_000, &ctx)
}

#[test]
fn full_pipeline_runs_for_every_sparse_model_on_every_accelerator() {
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let spconv2d = SpConv2dAccelerator::default();
    let pointacc = PointAccModel::new(cfg);
    let accelerators: [&dyn Accelerator; 4] = [&spade, &dense, &spconv2d, &pointacc];
    for kind in ModelKind::SPARSE {
        let (trace, workloads) = reduced_run(kind, 5);
        assert_eq!(trace.layers.len(), workloads.len());
        assert!(trace.total_macs() > 0, "{kind} produced no work");
        assert!(
            trace.computation_savings() > 0.0,
            "{kind} should save computation vs dense"
        );
        for acc in accelerators {
            let perf = acc.simulate_network(&workloads, trace.encoder_macs);
            assert_eq!(
                perf.layers.len(),
                workloads.len(),
                "{} on {kind}",
                acc.name()
            );
            assert!(perf.fps > 0.0, "{} on {kind}", acc.name());
            assert!(perf.total_cycles > 0, "{} on {kind}", acc.name());
            assert!(perf.energy.total_pj() > 0.0, "{} on {kind}", acc.name());
        }
    }
}

#[test]
fn sparse_variants_order_matches_table_one() {
    // SPP1 (standard SpConv, unconstrained dilation) saves the least; both
    // SPP2 (SpConv-P) and SPP3 (submanifold) save substantially more. The
    // SPP3-vs-SPP2 gap only shows at paper-scale grids (quarter-scale stages
    // saturate), so it is left to full-scale `spade-experiments table1` runs
    // rather than asserted here.
    let s1 = reduced_run(ModelKind::Spp1, 9).0.computation_savings();
    let s2 = reduced_run(ModelKind::Spp2, 9).0.computation_savings();
    let s3 = reduced_run(ModelKind::Spp3, 9).0.computation_savings();
    assert!(s2 > s1, "SPP2 ({s2}) should exceed SPP1 ({s1})");
    assert!(s3 > s1, "SPP3 ({s3}) should exceed SPP1 ({s1})");
}

#[test]
fn spade_speedup_over_dense_acc_grows_with_sparsity() {
    let cfg = SpadeConfig::high_end();
    let spade: &dyn Accelerator = &SpadeAccelerator::new(cfg);
    let dense: &dyn Accelerator = &DenseAccelerator::new(cfg);
    // SPP1's savings at quarter scale (~15%) are close to SPADE's scheduling
    // overhead, so only the moderately and highly sparse variants are asserted
    // to beat DenseAcc here; regenerate the full-scale SPP1 numbers with
    // `spade-experiments fig10`.
    let mut results = Vec::new();
    for kind in [ModelKind::Spp2, ModelKind::Spp3] {
        let (trace, workloads) = reduced_run(kind, 13);
        let perf = spade.simulate_network(&workloads, trace.encoder_macs);
        let dense_perf = dense.simulate_network(&workloads, trace.encoder_macs);
        let speedup = dense_perf.total_cycles as f64 / perf.total_cycles.max(1) as f64;
        assert!(speedup > 1.0, "{kind}: speedup {speedup}");
        results.push((trace.computation_savings(), speedup));
    }
    // The model with the highest computation savings must also see the
    // highest speedup over DenseAcc (sparsity-proportional gains).
    let best_savings = results
        .iter()
        .cloned()
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    let worst_savings = results
        .iter()
        .cloned()
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    assert!(
        best_savings.1 >= worst_savings.1,
        "speedup should track savings: {results:?}"
    );
}

#[test]
fn spade_outperforms_pointacc_and_platforms() {
    let cfg = SpadeConfig::high_end();
    let (trace, workloads) = reduced_run(ModelKind::Spp2, 17);
    let spade_acc: &dyn Accelerator = &SpadeAccelerator::new(cfg);
    let pointacc: &dyn Accelerator = &PointAccModel::new(cfg);
    let spade = spade_acc.simulate_network(&workloads, trace.encoder_macs);
    let pacc = pointacc.simulate_network(&workloads, trace.encoder_macs);
    assert!(pacc.total_cycles > spade.total_cycles);
    assert!(pacc.total_dram_bytes >= spade.total_dram_bytes);
    let gpu = Platform::new(PlatformKind::Gpu2080Ti).run(&trace);
    assert!(gpu.total_ms() > spade.latency_ms);
}

#[test]
fn foreground_coverage_is_tracked_for_pruning_models() {
    let (trace, _) = reduced_run(ModelKind::Spp2, 23);
    let coverage = trace.foreground_coverage.expect("scene was provided");
    assert!(coverage > 0.0 && coverage <= 1.0);
}
