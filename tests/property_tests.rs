//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use spade::nn::rulegen::{self, RuleGenMethod};
use spade::nn::{ConvKind, KernelShape, LayerSpec};
use spade::tensor::{CprTensor, GridShape, PillarCoord};

fn arb_coords(max: usize) -> impl Strategy<Value = Vec<PillarCoord>> {
    prop::collection::vec(
        (0u32..24, 0u32..24).prop_map(|(r, c)| PillarCoord::new(r, c)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CPR construction from arbitrary coordinates always satisfies the
    /// format invariants and preserves the deduplicated coordinate set.
    #[test]
    fn cpr_invariants_hold(coords in arb_coords(80)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 4, &coords);
        prop_assert!(t.check_invariants());
        let mut expected: Vec<PillarCoord> = coords.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(t.coords(), expected);
    }

    /// Dense round trip preserves the sparse tensor exactly.
    #[test]
    fn dense_round_trip(coords in arb_coords(60)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 3, &coords);
        prop_assert_eq!(t.to_dense().to_cpr(), t);
    }

    /// All three rule-generation algorithms agree on outputs and rule counts
    /// for every sparse convolution kind.
    #[test]
    fn rulegen_algorithms_agree(coords in arb_coords(40)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        for kind in [ConvKind::SpConv, ConvKind::SpConvS, ConvKind::SpStConv] {
            prop_assert!(spade::nn::rulegen::hash::equivalent_to_streaming(&t, kind, KernelShape::k3x3()));
            prop_assert!(spade::nn::rulegen::sort::equivalent_to_streaming(&t, kind, KernelShape::k3x3()));
        }
        prop_assert!(spade::nn::rulegen::hash::equivalent_to_streaming(&t, ConvKind::SpDeconv, KernelShape::k2x2()));
    }

    /// The fused streaming pass is pinned to the hash-table and merge-sort
    /// reference generators for every convolution kind and kernel shape the
    /// zoo uses: the rule books must be *identical* (same outputs, same
    /// per-tap rule sequences), and the analytic `count_rules` must equal the
    /// materialised rule count.
    #[test]
    fn fused_streaming_is_pinned_to_reference_generators(coords in arb_coords(48)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        let cases = [
            (ConvKind::SpConv, KernelShape::k3x3()),
            (ConvKind::SpConvS, KernelShape::k3x3()),
            (ConvKind::SpConvP, KernelShape::k3x3()),
            (ConvKind::SpStConv, KernelShape::k3x3()),
            (ConvKind::SpDeconv, KernelShape::k2x2()),
            (ConvKind::Dense, KernelShape::k3x3()),
            (ConvKind::SpConv, KernelShape::k1x1()),
            (ConvKind::SpConvS, KernelShape::k1x1()),
            (ConvKind::SpStConv, KernelShape::k1x1()),
        ];
        for (kind, kernel) in cases {
            let fused = spade::nn::rulegen::streaming::generate(&t, kind, kernel);
            let hashed = spade::nn::rulegen::hash::generate(&t, kind, kernel);
            let sorted = spade::nn::rulegen::sort::generate(&t, kind, kernel);
            prop_assert_eq!(&fused, &hashed, "hash mismatch for {} {:?}", kind, kernel);
            prop_assert_eq!(&fused, &sorted, "sort mismatch for {} {:?}", kind, kernel);
            prop_assert!(fused.check_monotone(), "monotonicity lost for {} {:?}", kind, kernel);
            // Dense `count_rules` is the closed-form cells x taps (it counts
            // the dense loop, not the in-bounds rule book entries).
            if kind != ConvKind::Dense {
                let counted = spade::nn::graph::count_rules(
                    &t.coords(),
                    grid,
                    rulegen::output_grid(grid, kind),
                    kind,
                    kernel,
                );
                prop_assert_eq!(counted, fused.num_rules() as u64, "count mismatch for {} {:?}", kind, kernel);
            }
        }
    }

    /// Submanifold convolution never changes the active set; standard sparse
    /// convolution never shrinks it; and the streaming rule book stays
    /// monotone (the property SPADE's hardware depends on).
    #[test]
    fn sparse_conv_active_set_properties(coords in arb_coords(40)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        let sub = rulegen::output_coords(&t, ConvKind::SpConvS, KernelShape::k3x3());
        prop_assert_eq!(sub, t.coords());
        let dilated = rulegen::output_coords(&t, ConvKind::SpConv, KernelShape::k3x3());
        prop_assert!(dilated.len() >= t.num_active());
        let book = rulegen::generate_rules(&t, ConvKind::SpConv, KernelShape::k3x3());
        prop_assert!(book.check_monotone());
    }

    /// The sparse functional convolution matches the dense reference at every
    /// grid position for random sparse inputs.
    #[test]
    fn spconv_matches_dense_reference(coords in arb_coords(12)) {
        let grid = GridShape::new(10, 10);
        let t = CprTensor::from_coords(grid, 2, &coords);
        let layer = LayerSpec::new("p", ConvKind::SpConv, 2, 2);
        let w = layer.seeded_weights(3);
        let sparse = layer.execute(&t, &w, false).to_dense();
        let dense = spade::nn::conv::dense_conv2d_reference(&t.to_dense(), &w, false);
        for ch in 0..2 {
            for r in 0..10 {
                for c in 0..10 {
                    let a = sparse.get(ch, r, c);
                    let b = dense.get(ch, r, c);
                    prop_assert!((a - b).abs() < 1e-3, "mismatch at ({}, {}, {})", ch, r, c);
                }
            }
        }
    }

    /// The streaming RGU cost model is never slower than the hash-table or
    /// merge-sort models on dilating workloads.
    #[test]
    fn rgu_cost_is_minimal(pillars in 100usize..50_000) {
        let outputs = pillars * 2;
        let rules = pillars * 9;
        let rgu = RuleGenMethod::StreamingRgu.cost(pillars, outputs, rules).cycles;
        let hash = RuleGenMethod::HashTable.cost(pillars, outputs, rules).cycles;
        let sort = RuleGenMethod::MergeSort.cost(pillars, outputs, rules).cycles;
        prop_assert!(rgu <= hash);
        prop_assert!(rgu <= sort);
    }
}
