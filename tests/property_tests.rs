//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use spade::nn::rulegen::{self, RuleGenMethod};
use spade::nn::{ConvKind, KernelShape, LayerSpec};
use spade::pointcloud::{
    DatasetPreset, DriveScenario, NamedScenario, PersistentWorld, SceneConfig, WorldObject,
    WorldStep,
};
use spade::tensor::{CprTensor, GridShape, PillarCoord};

fn arb_coords(max: usize) -> impl Strategy<Value = Vec<PillarCoord>> {
    prop::collection::vec(
        (0u32..24, 0u32..24).prop_map(|(r, c)| PillarCoord::new(r, c)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CPR construction from arbitrary coordinates always satisfies the
    /// format invariants and preserves the deduplicated coordinate set.
    #[test]
    fn cpr_invariants_hold(coords in arb_coords(80)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 4, &coords);
        prop_assert!(t.check_invariants());
        let mut expected: Vec<PillarCoord> = coords.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(t.coords(), expected);
    }

    /// Dense round trip preserves the sparse tensor exactly.
    #[test]
    fn dense_round_trip(coords in arb_coords(60)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 3, &coords);
        prop_assert_eq!(t.to_dense().to_cpr(), t);
    }

    /// All three rule-generation algorithms agree on outputs and rule counts
    /// for every sparse convolution kind.
    #[test]
    fn rulegen_algorithms_agree(coords in arb_coords(40)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        for kind in [ConvKind::SpConv, ConvKind::SpConvS, ConvKind::SpStConv] {
            prop_assert!(spade::nn::rulegen::hash::equivalent_to_streaming(&t, kind, KernelShape::k3x3()));
            prop_assert!(spade::nn::rulegen::sort::equivalent_to_streaming(&t, kind, KernelShape::k3x3()));
        }
        prop_assert!(spade::nn::rulegen::hash::equivalent_to_streaming(&t, ConvKind::SpDeconv, KernelShape::k2x2()));
    }

    /// The fused streaming pass is pinned to the hash-table and merge-sort
    /// reference generators for every convolution kind and kernel shape the
    /// zoo uses: the rule books must be *identical* (same outputs, same
    /// per-tap rule sequences), and the analytic `count_rules` must equal the
    /// materialised rule count.
    #[test]
    fn fused_streaming_is_pinned_to_reference_generators(coords in arb_coords(48)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        let cases = [
            (ConvKind::SpConv, KernelShape::k3x3()),
            (ConvKind::SpConvS, KernelShape::k3x3()),
            (ConvKind::SpConvP, KernelShape::k3x3()),
            (ConvKind::SpStConv, KernelShape::k3x3()),
            (ConvKind::SpDeconv, KernelShape::k2x2()),
            (ConvKind::Dense, KernelShape::k3x3()),
            (ConvKind::SpConv, KernelShape::k1x1()),
            (ConvKind::SpConvS, KernelShape::k1x1()),
            (ConvKind::SpStConv, KernelShape::k1x1()),
        ];
        for (kind, kernel) in cases {
            let fused = spade::nn::rulegen::streaming::generate(&t, kind, kernel);
            let hashed = spade::nn::rulegen::hash::generate(&t, kind, kernel);
            let sorted = spade::nn::rulegen::sort::generate(&t, kind, kernel);
            prop_assert_eq!(&fused, &hashed, "hash mismatch for {} {:?}", kind, kernel);
            prop_assert_eq!(&fused, &sorted, "sort mismatch for {} {:?}", kind, kernel);
            prop_assert!(fused.check_monotone(), "monotonicity lost for {} {:?}", kind, kernel);
            // Dense `count_rules` is the closed-form cells x taps (it counts
            // the dense loop, not the in-bounds rule book entries).
            if kind != ConvKind::Dense {
                let counted = spade::nn::graph::count_rules(
                    &t.coords(),
                    grid,
                    rulegen::output_grid(grid, kind),
                    kind,
                    kernel,
                );
                prop_assert_eq!(counted, fused.num_rules() as u64, "count mismatch for {} {:?}", kind, kernel);
            }
        }
    }

    /// Submanifold convolution never changes the active set; standard sparse
    /// convolution never shrinks it; and the streaming rule book stays
    /// monotone (the property SPADE's hardware depends on).
    #[test]
    fn sparse_conv_active_set_properties(coords in arb_coords(40)) {
        let grid = GridShape::new(24, 24);
        let t = CprTensor::from_coords(grid, 1, &coords);
        let sub = rulegen::output_coords(&t, ConvKind::SpConvS, KernelShape::k3x3());
        prop_assert_eq!(sub, t.coords());
        let dilated = rulegen::output_coords(&t, ConvKind::SpConv, KernelShape::k3x3());
        prop_assert!(dilated.len() >= t.num_active());
        let book = rulegen::generate_rules(&t, ConvKind::SpConv, KernelShape::k3x3());
        prop_assert!(book.check_monotone());
    }

    /// The sparse functional convolution matches the dense reference at every
    /// grid position for random sparse inputs.
    #[test]
    fn spconv_matches_dense_reference(coords in arb_coords(12)) {
        let grid = GridShape::new(10, 10);
        let t = CprTensor::from_coords(grid, 2, &coords);
        let layer = LayerSpec::new("p", ConvKind::SpConv, 2, 2);
        let w = layer.seeded_weights(3);
        let sparse = layer.execute(&t, &w, false).to_dense();
        let dense = spade::nn::conv::dense_conv2d_reference(&t.to_dense(), &w, false);
        for ch in 0..2 {
            for r in 0..10 {
                for c in 0..10 {
                    let a = sparse.get(ch, r, c);
                    let b = dense.get(ch, r, c);
                    prop_assert!((a - b).abs() < 1e-3, "mismatch at ({}, {}, {})", ch, r, c);
                }
            }
        }
    }

    /// The streaming RGU cost model is never slower than the hash-table or
    /// merge-sort models on dilating workloads.
    #[test]
    fn rgu_cost_is_minimal(pillars in 100usize..50_000) {
        let outputs = pillars * 2;
        let rules = pillars * 9;
        let rgu = RuleGenMethod::StreamingRgu.cost(pillars, outputs, rules).cycles;
        let hash = RuleGenMethod::HashTable.cost(pillars, outputs, rules).cycles;
        let sort = RuleGenMethod::MergeSort.cost(pillars, outputs, rules).cycles;
        prop_assert!(rgu <= hash);
        prop_assert!(rgu <= sort);
    }

    /// Persistent-world objects never teleport: between consecutive frames a
    /// surviving object's displacement is bounded by its class's maximum
    /// speed times the frame interval, under arbitrary target-count
    /// sequences (spawning, thinning, and emptying included) and arbitrary
    /// speed multipliers.
    #[test]
    fn persistent_world_objects_never_teleport(
        (seed, targets) in (0u64..100_000, prop::collection::vec((0usize..26, 0u8..=2), 3..9))
    ) {
        let dt = 0.1;
        let mut world = PersistentWorld::new(SceneConfig::kitti_like(), dt);
        let mut prev: Vec<WorldObject> = Vec::new();
        for (i, &(target, speed_tier)) in targets.iter().enumerate() {
            let speed_multiplier = f64::from(speed_tier) / 2.0; // 0, 0.5, 1
            world.step(&WorldStep {
                target_count: target,
                speed_multiplier,
                crossing_spawns: usize::from(i % 3 == 0),
                seed: seed.wrapping_add(i as u64),
            });
            for o in world.objects() {
                if let Some(p) = prev.iter().find(|p| p.id == o.id) {
                    let dx = o.object.bbox.cx - p.object.bbox.cx;
                    let dy = o.object.bbox.cy - p.object.bbox.cy;
                    let bound = o.object.class.max_speed_mps() * dt * speed_multiplier;
                    prop_assert!(
                        (dx * dx + dy * dy).sqrt() <= bound + 1e-9,
                        "object {} moved {} > {}", o.id, (dx * dx + dy * dy).sqrt(), bound
                    );
                }
            }
            prev = world.objects().to_vec();
        }
    }
}

proptest! {
    // Drive-level properties regenerate whole frames (LiDAR sampling +
    // pillarisation), so they run a handful of seeds rather than the
    // default case count.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same seed reproduces an identical drive, for both the legacy
    /// i.i.d. mode and the persistent scripted scenarios.
    #[test]
    fn same_seed_gives_identical_drives(seed in 0u64..100_000) {
        for scenario in [NamedScenario::Constant, NamedScenario::StopAndGo] {
            let build = || DriveScenario::named(DatasetPreset::kitti_like(), scenario, 4, seed);
            let (a, b) = (build().frames(), build().frames());
            prop_assert_eq!(a.len(), b.len());
            for (fa, fb) in a.iter().zip(&b) {
                prop_assert_eq!(fa.frame.num_points, fb.frame.num_points);
                prop_assert_eq!(
                    &fa.frame.pillars.active_coords,
                    &fb.frame.pillars.active_coords
                );
                prop_assert_eq!(fa.pillar_overlap, fb.pillar_overlap);
            }
        }
    }

    /// Consecutive-frame active-pillar overlap is high for persistent
    /// scenarios (the temporal locality the scenario layer exists to
    /// create) and near the i.i.d. baseline for legacy `Constant` drives.
    #[test]
    fn persistent_drives_have_temporal_locality_iid_drives_do_not(seed in 0u64..100_000) {
        let persistent = DriveScenario::named(
            DatasetPreset::kitti_like(), NamedScenario::Urban, 4, seed);
        let iid = DriveScenario::named(
            DatasetPreset::kitti_like(), NamedScenario::Constant, 4, seed);
        let persistent_overlap = DriveScenario::mean_overlap_of(&persistent.frames());
        let iid_overlap = DriveScenario::mean_overlap_of(&iid.frames());
        prop_assert!(persistent_overlap >= 0.5, "persistent {persistent_overlap}");
        prop_assert!(iid_overlap < 0.2, "i.i.d. baseline {iid_overlap}");
    }

    /// Delta rule generation is byte-identical to the full streaming sweep on
    /// real drive data: over every consecutive frame pair of every named
    /// scenario, for every convolution kind and kernel shape the zoo uses,
    /// patching the previous frame's rule book reproduces the from-scratch
    /// book exactly — same output coordinates, same per-tap rule sequences,
    /// and the analytic `count_rules` agrees with the materialised count.
    #[test]
    fn delta_patching_matches_full_sweeps_on_every_named_scenario(seed in 0u64..100_000) {
        use spade::nn::rulegen::delta::patch_rule_book;
        let cases = [
            (ConvKind::SpConv, KernelShape::k3x3()),
            (ConvKind::SpConvS, KernelShape::k3x3()),
            (ConvKind::SpConvP, KernelShape::k3x3()),
            (ConvKind::SpStConv, KernelShape::k3x3()),
            (ConvKind::SpDeconv, KernelShape::k2x2()),
            (ConvKind::Dense, KernelShape::k3x3()),
            (ConvKind::SpConv, KernelShape::k1x1()),
            (ConvKind::SpConvS, KernelShape::k1x1()),
            (ConvKind::SpStConv, KernelShape::k1x1()),
        ];
        for scenario in NamedScenario::ALL {
            let drive = DriveScenario::named(DatasetPreset::kitti_like(), scenario, 3, seed);
            // Downsample the BEV coordinates 8x so a whole scenario sweep of
            // 9 kind/kernel cases stays fast while preserving the drive's
            // change structure (moved pillars, appearing/vanishing rows).
            let base = DatasetPreset::kitti_like().grid_shape();
            let grid = GridShape::new(base.height / 8, base.width / 8);
            let tensors: Vec<CprTensor> = drive
                .frames()
                .iter()
                .map(|f| {
                    let coords: Vec<PillarCoord> = f
                        .frame
                        .pillars
                        .active_coords
                        .iter()
                        .map(|c| PillarCoord::new(c.row / 8, c.col / 8))
                        .collect();
                    CprTensor::from_coords(grid, 1, &coords)
                })
                .collect();
            for pair in tensors.windows(2) {
                for (kind, kernel) in cases {
                    let prev_book = rulegen::generate_rules(&pair[0], kind, kernel);
                    let full = rulegen::generate_rules(&pair[1], kind, kernel);
                    let patched = patch_rule_book(&pair[0], &prev_book, &pair[1], kind, kernel);
                    prop_assert_eq!(
                        &patched, &full,
                        "{}: patched book drifted for {} {:?}", scenario, kind, kernel
                    );
                    prop_assert_eq!(
                        patched.output_coords(),
                        rulegen::output_coords(&pair[1], kind, kernel),
                        "{}: output coords drifted for {} {:?}", scenario, kind, kernel
                    );
                    if kind != ConvKind::Dense {
                        let counted = spade::nn::graph::count_rules(
                            &pair[1].coords(),
                            grid,
                            rulegen::output_grid(grid, kind),
                            kind,
                            kernel,
                        );
                        prop_assert_eq!(
                            counted,
                            patched.num_rules() as u64,
                            "{}: count drifted for {} {:?}", scenario, kind, kernel
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn delta_fallback_boundaries_are_exact() {
    // The fallback decision is inclusive at the threshold and conservative at
    // the extremes — and whichever path runs, the book matches the oracle.
    use spade::nn::rulegen::delta::{changed_fraction, generate_or_patch, DeltaPolicy};
    let grid = GridShape::new(24, 24);
    let t = |coords: &[(u32, u32)]| {
        CprTensor::from_coords(
            grid,
            1,
            &coords
                .iter()
                .map(|&(r, c)| PillarCoord::new(r, c))
                .collect::<Vec<_>>(),
        )
    };
    // 4 shared + 1 changed coordinate: |symdiff| = 2, max size = 5, so the
    // changed fraction is exactly 0.4 — at a 0.4 threshold the delta path
    // must still run (the policy is inclusive).
    let prev = t(&[(2, 2), (2, 3), (5, 5), (9, 1), (12, 7)]);
    let next = t(&[(2, 2), (2, 3), (5, 5), (9, 1), (20, 20)]);
    assert_eq!(changed_fraction(&prev.coords(), &next.coords()), 0.4);
    let prev_book = rulegen::generate_rules(&prev, ConvKind::SpConv, KernelShape::k3x3());
    let at = DeltaPolicy { threshold: 0.4 };
    let below = DeltaPolicy { threshold: 0.39 };
    for (policy, expect_patch) in [(at, true), (below, false)] {
        let (book, patched) = generate_or_patch(
            policy,
            Some((&prev, &prev_book)),
            &next,
            ConvKind::SpConv,
            KernelShape::k3x3(),
        );
        assert_eq!(patched, expect_patch, "threshold {}", policy.threshold);
        assert_eq!(
            book,
            rulegen::generate_rules(&next, ConvKind::SpConv, KernelShape::k3x3())
        );
    }
    // Boundary frames: an empty next frame (fraction 1.0) and a fully
    // changed frame (fraction 2.0) both force the full-sweep fallback; a
    // missing previous frame always full-sweeps.
    let empty = CprTensor::empty(grid, 1);
    let moved = t(&[(15, 15), (16, 16), (17, 17), (18, 18), (19, 19)]);
    for next in [&empty, &moved] {
        let (book, patched) = generate_or_patch(
            DeltaPolicy::default(),
            Some((&prev, &prev_book)),
            next,
            ConvKind::SpConv,
            KernelShape::k3x3(),
        );
        assert!(!patched);
        assert_eq!(
            book,
            rulegen::generate_rules(next, ConvKind::SpConv, KernelShape::k3x3())
        );
    }
    let (_, patched) = generate_or_patch(
        DeltaPolicy::default(),
        None,
        &next,
        ConvKind::SpConv,
        KernelShape::k3x3(),
    );
    assert!(!patched);
}

// ---------------------------------------------------------------------------
// Wire-protocol properties (PR 7): the spade-serve request encoding must
// round-trip every expressible sweep exactly, and the service cache key
// must not care how the client ordered (or duplicated) its axes.

mod protocol_props {
    use super::*;
    use spade::core::DataflowOptions;
    use spade::nn::ModelKind;
    use spade::pointcloud::DensityProfile;
    use spade_bench::dse::{DseParams, SweepAxes};
    use spade_bench::protocol::{cache_key, canonicalize_params, decode_params, encode_params};
    use spade_bench::WorkloadScale;

    /// A tiny deterministic stream (splitmix64) that expands one seed into a
    /// whole `DseParams` — the vendored proptest stub only samples scalar
    /// ranges, so structured values are derived from a sampled seed.
    struct Stream(u64);

    impl Stream {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        /// Positive grid-step float: k/16 for k in 1..=64 (round-trips are
        /// exact for *any* finite f64; the grid just keeps values readable).
        fn step(&mut self) -> f64 {
            (self.below(64) + 1) as f64 / 16.0
        }

        fn vec<T>(&mut self, max_len: u64, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
            let n = self.below(max_len) + 1;
            (0..n).map(|_| f(self)).collect()
        }
    }

    fn params_from_seed(seed: u64) -> DseParams {
        let mut s = Stream(seed);
        let axes = SweepAxes {
            pe_dims: s.vec(3, |s| {
                ((s.below(96) + 1) as usize, (s.below(96) + 1) as usize)
            }),
            sram_scales: s.vec(3, Stream::step),
            freq_ghz: s.vec(3, Stream::step),
            dram_bytes_per_cycle: s.vec(3, Stream::step),
            buffer_splits: s.vec(3, |s| s.below(10) as f64 / 10.0),
            sram_banks: s.vec(3, |s| (s.below(16) + 1) as u32),
            dataflow: s.vec(3, |s| {
                let mask = s.below(8);
                DataflowOptions {
                    weight_grouping: mask & 1 != 0,
                    ganged_scatter: mask & 2 != 0,
                    adaptive_tiling: mask & 4 != 0,
                }
            }),
        };
        let models = s.vec(3, |s| ModelKind::ALL[s.below(11) as usize]);
        let profile = match s.below(3) {
            0 => DensityProfile::Constant,
            1 => DensityProfile::Ramp {
                start: s.step(),
                end: s.step(),
            },
            _ => DensityProfile::Peak {
                base: s.step(),
                peak: s.step(),
            },
        };
        let scenario = {
            let all = spade::pointcloud::NamedScenario::ALL;
            match s.below(all.len() as u64 + 1) {
                0 => None,
                k => Some(all[(k - 1) as usize]),
            }
        };
        DseParams {
            scale: if s.below(2) == 0 {
                WorkloadScale::Full
            } else {
                WorkloadScale::Reduced
            },
            axes,
            models,
            num_frames: (s.below(5) + 1) as usize,
            base_seed: s.next(),
            profile,
            scenario,
            delta: s.below(2) == 0,
            adaptive: s.below(2) == 0,
        }
    }

    /// Rotates and (optionally) reverses every axis: a pure reordering that
    /// must not change what the sweep means.
    fn reorder(params: &DseParams, rot: usize, rev: bool) -> DseParams {
        fn scramble<T>(v: &mut [T], rot: usize, rev: bool) {
            if v.is_empty() {
                return;
            }
            let k = rot % v.len();
            v.rotate_left(k);
            if rev {
                v.reverse();
            }
        }
        let mut out = params.clone();
        scramble(&mut out.models, rot, rev);
        scramble(&mut out.axes.pe_dims, rot, rev);
        scramble(&mut out.axes.sram_scales, rot, rev);
        scramble(&mut out.axes.freq_ghz, rot, rev);
        scramble(&mut out.axes.dram_bytes_per_cycle, rot, rev);
        scramble(&mut out.axes.buffer_splits, rot, rev);
        scramble(&mut out.axes.sram_banks, rot, rev);
        scramble(&mut out.axes.dataflow, rot, rev);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Arbitrary params encode → decode to the identical value: the wire
        /// form loses nothing (floats travel via shortest-round-trip
        /// formatting, so fractional values survive exactly).
        #[test]
        fn params_encode_decode_is_the_identity(seed in 0u64..u64::MAX) {
            let params = params_from_seed(seed);
            let encoded = encode_params(&params);
            let decoded = decode_params(&encoded).expect("decode of own encoding");
            prop_assert_eq!(decoded, params);
        }

        /// Params differing only in axis order — or in duplicated axis
        /// values, which the sweep ignores — canonicalize to the same cache
        /// key and the same executable form, so the server answers every
        /// spelling of a sweep with one cached, byte-identical result.
        #[test]
        fn cache_key_ignores_axis_order_and_duplicates(seed in 0u64..u64::MAX) {
            let params = params_from_seed(seed);
            let rot = (seed >> 7) as usize % 8;
            let rev = seed & 1 == 1;
            let reordered = reorder(&params, rot, rev);
            prop_assert_eq!(cache_key(&params), cache_key(&reordered));
            prop_assert_eq!(
                canonicalize_params(&params),
                canonicalize_params(&reordered)
            );
            // Duplicating an axis value changes the encoding but not the key.
            let mut duplicated = params.clone();
            duplicated.models.push(duplicated.models[0]);
            duplicated.axes.sram_scales.push(duplicated.axes.sram_scales[0]);
            duplicated.axes.pe_dims.push(duplicated.axes.pe_dims[0]);
            assert_ne!(encode_params(&params), encode_params(&duplicated));
            prop_assert_eq!(cache_key(&params), cache_key(&duplicated));
            // Canonicalisation is idempotent: a canonical form is its own key.
            let canonical = canonicalize_params(&params);
            prop_assert_eq!(encode_params(&canonical), cache_key(&params));
        }
    }
}
