//! Integration tests of the serving layer, end-to-end over a real
//! loopback socket: canonical byte-identity of served sweeps, the result
//! cache, in-flight dedupe of concurrent duplicates, malformed-frame
//! resilience, persistent-world `FRAME` streams, and the closed-loop
//! load generator's measured hit-rate against its analytic expectation.

use spade::core::DataflowOptions;
use spade::nn::{DeltaPolicy, FrameDeltaState, ModelKind, PruningConfig};
use spade::pointcloud::{DatasetPreset, DriveScenario, NamedScenario};
use spade_bench::dse::{run_dse, DseParams, SweepAxes};
use spade_bench::loadgen::{expected_hit_rate, run_loadgen, zipf_weights, LoadgenConfig};
use spade_bench::protocol::{
    canonicalize_params, decode_request, encode_request, read_frame, write_frame, FrameRequest,
    Request, Response,
};
use spade_bench::serve::parse_stats_body;
use spade_bench::workload::model_run_on_frame_delta;
use spade_bench::{ServeConfig, Server, WorkloadScale};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

/// A deliberately small sweep (4 configurations × 3 frames × 1 model)
/// that still takes long enough in a debug build for concurrent
/// duplicates to overlap in flight.
fn small_params() -> DseParams {
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes {
        pe_dims: vec![(16, 16), (64, 64)],
        sram_scales: vec![0.5, 1.0],
        freq_ghz: vec![1.0],
        dram_bytes_per_cycle: vec![25.6],
        buffer_splits: vec![0.0],
        sram_banks: vec![spade::core::GATHER_SCATTER_LANES],
        dataflow: vec![DataflowOptions::all_enabled()],
    };
    params.num_frames = 3;
    params
}

/// The smallest useful sweep (1 configuration × 2 frames), for the
/// 200-request load-generator smoke.
fn tiny_params(seed_offset: u64) -> DseParams {
    let mut params = small_params();
    params.axes.pe_dims = vec![(32, 32)];
    params.axes.sram_scales = vec![1.0];
    params.num_frames = 2;
    params.base_seed += seed_offset;
    params
}

fn test_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        sweep_jobs: 2,
        budget_tokens: 2,
        cache_bytes: 8 * 1024 * 1024,
    })
    .expect("bind test server")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect to test server");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn send(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, encode_request(request).as_bytes()).expect("send request");
    let reply = read_frame(stream)
        .expect("read response")
        .expect("server closed connection");
    Response::decode(std::str::from_utf8(&reply).expect("UTF-8 response")).expect("valid response")
}

fn stats(stream: &mut TcpStream) -> std::collections::HashMap<String, String> {
    match send(stream, &Request::Stats) {
        Response::Ok { body, .. } => parse_stats_body(&body),
        Response::Err(message) => panic!("STATS failed: {message}"),
    }
}

#[test]
fn served_sweep_is_byte_identical_to_direct_execution_and_caches() {
    let server = test_server();
    let mut client = connect(&server);

    // Spell the request in a scrambled axis order: the server must execute
    // the canonical form, so the reply matches a direct canonical run byte
    // for byte.
    let mut params = small_params();
    params.axes.pe_dims.reverse();
    params.axes.sram_scales.reverse();
    let direct = run_dse(&canonicalize_params(&params)).to_csv();

    let cold = send(&mut client, &Request::Sweep(params.clone()));
    match &cold {
        Response::Ok { body, .. } => assert_eq!(body, &direct, "served CSV differs from direct"),
        Response::Err(message) => panic!("cold SWEEP failed: {message}"),
    }
    assert_eq!(cold.meta_field("hit"), Some("0"));

    // The warm repeat — spelled in yet another axis order — is a cache hit
    // with the identical body.
    let mut respelled = params.clone();
    respelled.models.push(respelled.models[0]); // duplicate, canonically equal
    let warm = send(&mut client, &Request::Sweep(respelled));
    match &warm {
        Response::Ok { body, .. } => assert_eq!(body, &direct),
        Response::Err(message) => panic!("warm SWEEP failed: {message}"),
    }
    assert_eq!(warm.meta_field("hit"), Some("1"));

    let counters = stats(&mut client);
    assert_eq!(
        counters.get("sweeps_requested").map(String::as_str),
        Some("2")
    );
    assert_eq!(
        counters.get("sweeps_executed").map(String::as_str),
        Some("1")
    );
    assert_eq!(counters.get("cache_hits").map(String::as_str), Some("1"));

    server.shutdown();
    server.join();
}

#[test]
fn served_adaptive_sweep_matches_direct_execution_and_exports_counters() {
    let server = test_server();
    let mut client = connect(&server);

    // An adaptive request with the new axes swept: the cold-path execution
    // goes through the screening explorer, and the reply must still be
    // byte-identical to a direct canonical adaptive run.
    let mut params = small_params();
    params.axes.buffer_splits = vec![0.0, 0.25, 0.75];
    params.axes.sram_banks = vec![spade::core::GATHER_SCATTER_LANES, 4];
    params.adaptive = true;
    let direct = run_dse(&canonicalize_params(&params));

    let cold = send(&mut client, &Request::Sweep(params.clone()));
    match &cold {
        Response::Ok { body, .. } => {
            assert_eq!(body, &direct.to_csv(), "served adaptive CSV differs");
        }
        Response::Err(message) => panic!("adaptive SWEEP failed: {message}"),
    }
    assert_eq!(cold.meta_field("hit"), Some("0"));

    // The exhaustive spelling of the same grid keys a *different* cache
    // entry (its export bytes differ), so it executes rather than hits.
    params.adaptive = false;
    let exhaustive = send(&mut client, &Request::Sweep(params));
    assert_eq!(exhaustive.meta_field("hit"), Some("0"));

    // STATS aggregates the explorer's budget counters across executed
    // sweeps: the adaptive run screened some cells, the exhaustive run
    // contributed simulated cells only.
    let counters = stats(&mut client);
    let count = |key: &str| -> usize {
        counters
            .get(key)
            .unwrap_or_else(|| panic!("STATS missing {key}: {counters:?}"))
            .parse()
            .expect("numeric counter")
    };
    assert!(count("cells_screened") > 0);
    assert_eq!(
        count("cells_screened") + count("cells_simulated"),
        direct.cells.len() * 2,
        "both executed sweeps contribute their cells: {counters:?}"
    );
    assert!(count("frames_saved") >= count("cells_screened"));

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_identical_requests_execute_the_sweep_exactly_once() {
    const CLIENTS: usize = 4;
    let server = test_server();
    let params = small_params();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut bodies: Vec<(String, Option<String>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let mut client = connect(&server);
                let barrier = Arc::clone(&barrier);
                let params = params.clone();
                scope.spawn(move || {
                    barrier.wait();
                    match send(&mut client, &Request::Sweep(params)) {
                        Response::Ok { meta, body } => {
                            let hit = meta
                                .split(' ')
                                .find_map(|t| t.strip_prefix("hit="))
                                .map(str::to_owned);
                            (body, hit)
                        }
                        Response::Err(message) => panic!("SWEEP failed: {message}"),
                    }
                })
            })
            .collect();
        for handle in handles {
            bodies.push(handle.join().expect("client thread"));
        }
    });

    // Everyone got the same bytes...
    let reference = &bodies[0].0;
    assert!(!reference.is_empty());
    assert!(bodies.iter().all(|(body, _)| body == reference));
    // ...but the sweep ran once: the others either joined the in-flight
    // execution or (if they raced in after completion) hit the cache.
    let mut client = connect(&server);
    let counters = stats(&mut client);
    assert_eq!(
        counters.get("sweeps_executed").map(String::as_str),
        Some("1"),
        "N identical concurrent requests must execute one sweep: {counters:?}"
    );
    assert_eq!(
        counters.get("sweeps_requested").map(String::as_str),
        Some(format!("{CLIENTS}").as_str())
    );

    server.shutdown();
    server.join();
}

#[test]
fn malformed_frames_get_error_replies_without_killing_the_server() {
    let server = test_server();
    let mut client = connect(&server);

    // Unknown verb.
    write_frame(&mut client, b"NUKE the grid").expect("send");
    let reply = read_frame(&mut client).expect("read").expect("open");
    let response = Response::decode(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(response, Response::Err(_)), "{response:?}");

    // Not even UTF-8.
    write_frame(&mut client, &[0xff, 0xfe, 0x00, 0x9f]).expect("send");
    let reply = read_frame(&mut client).expect("read").expect("open");
    let response = Response::decode(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(response, Response::Err(_)), "{response:?}");

    // Malformed SWEEP params.
    let sweep = send(
        &mut client,
        &Request::Sweep(small_params()), // control: well-formed works...
    );
    assert!(matches!(sweep, Response::Ok { .. }));
    write_frame(&mut client, b"SWEEP scale=banana").expect("send");
    let reply = read_frame(&mut client).expect("read").expect("open");
    let response = Response::decode(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(response, Response::Err(_)), "{response:?}");

    // The same connection still serves requests afterwards, and the error
    // count is visible in STATS.
    let pong = send(&mut client, &Request::Ping);
    assert!(matches!(pong, Response::Ok { .. }), "{pong:?}");
    let counters = stats(&mut client);
    assert_eq!(counters.get("errors").map(String::as_str), Some("3"));

    // Fresh connections are unaffected too.
    let mut second = connect(&server);
    assert!(matches!(
        send(&mut second, &Request::Ping),
        Response::Ok { .. }
    ));

    server.shutdown();
    server.join();
}

#[test]
fn frame_stream_matches_direct_delta_execution() {
    const FRAMES: usize = 6;
    let server = test_server();
    let mut client = connect(&server);

    // Direct reference: the same drive executed locally through the
    // temporal delta path. (The tunnel drive patches most of its frames
    // at this length; short urban drives ramp too fast to patch any.)
    let scenario = NamedScenario::Tunnel;
    let seed = 11u64;
    let config = scenario.config(FRAMES, seed);
    let drive = DriveScenario::new(DatasetPreset::kitti_like(), config.clone());
    let frames = drive.frames();
    let mut state = FrameDeltaState::new(DeltaPolicy::default());
    let mut reference = Vec::new();
    for frame in &frames {
        let run = model_run_on_frame_delta(
            ModelKind::Spp2,
            &DatasetPreset::kitti_like(),
            &frame.frame,
            config.pruning_seed(frame.index),
            WorkloadScale::Reduced,
            PruningConfig::default(),
            &mut state,
        );
        let frame_stats = state.take_stats();
        reference.push((
            run.encoder_macs,
            run.workloads.len(),
            frame_stats.frames_delta > 0,
        ));
    }
    assert!(
        reference.iter().any(|&(_, _, delta)| delta),
        "the tunnel drive should patch at least one frame"
    );

    // Served: one FRAME request per index over the same (drive, model) key.
    for (index, &(encoder_macs, layers, delta)) in reference.iter().enumerate() {
        let response = send(
            &mut client,
            &Request::Frame(FrameRequest {
                drive: "veh-1".to_owned(),
                scenario,
                model: ModelKind::Spp2,
                scale: WorkloadScale::Reduced,
                seed,
                frames: FRAMES,
                index,
            }),
        );
        let Response::Ok { body, .. } = &response else {
            panic!("FRAME {index} failed: {response:?}");
        };
        let fields = parse_stats_body(body);
        assert_eq!(
            fields.get("encoder_macs").map(String::as_str),
            Some(encoder_macs.to_string().as_str()),
            "frame {index}"
        );
        assert_eq!(
            fields.get("layers").map(String::as_str),
            Some(layers.to_string().as_str()),
            "frame {index}"
        );
        assert_eq!(
            response.meta_field("delta"),
            Some(if delta { "1" } else { "0" }),
            "frame {index}: server's delta path must follow the reference"
        );
    }

    // Out-of-range index is an error, not a crash.
    let bad = send(
        &mut client,
        &Request::Frame(FrameRequest {
            drive: "veh-1".to_owned(),
            scenario,
            model: ModelKind::Spp2,
            scale: WorkloadScale::Reduced,
            seed,
            frames: FRAMES,
            index: FRAMES,
        }),
    );
    assert!(matches!(bad, Response::Err(_)), "{bad:?}");

    // The drained per-frame stats landed in the service-wide aggregate.
    let counters = stats(&mut client);
    let total: usize = counters
        .get("delta_frames_total")
        .and_then(|v| v.parse().ok())
        .expect("delta_frames_total in STATS");
    assert_eq!(total, FRAMES);

    server.shutdown();
    server.join();
}

/// Regression test for the admission/stats lock ordering: concurrent
/// `FRAME` requests for the *same* drive used to take the global state
/// lock and the per-stream lock in opposite orders, wedging every handler
/// thread. All clients hammer one (drive, model) key at once; the test
/// passing at all (rather than hanging) is the assertion that matters.
#[test]
fn concurrent_frames_for_the_same_drive_do_not_deadlock() {
    const CLIENTS: usize = 4;
    const FRAMES: usize = 4;
    let server = test_server();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let server = &server;
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = connect(server);
                barrier.wait();
                for index in 0..FRAMES {
                    let response = send(
                        &mut client,
                        &Request::Frame(FrameRequest {
                            drive: "shared-drive".to_owned(),
                            scenario: NamedScenario::Tunnel,
                            model: ModelKind::Spp2,
                            scale: WorkloadScale::Reduced,
                            seed: 7,
                            frames: FRAMES,
                            index,
                        }),
                    );
                    assert!(
                        matches!(response, Response::Ok { .. }),
                        "client {client_id} frame {index}: {response:?}"
                    );
                }
            });
        }
    });

    // Every request landed on the one shared stream.
    let mut client = connect(&server);
    let counters = stats(&mut client);
    assert_eq!(
        counters.get("frames_served").map(String::as_str),
        Some(format!("{}", CLIENTS * FRAMES).as_str())
    );
    assert_eq!(counters.get("streams").map(String::as_str), Some("1"));

    server.shutdown();
    server.join();
}

#[test]
fn loadgen_hit_rate_matches_the_zipfian_analytic_expectation() {
    const REQUESTS: usize = 200;
    const CATALOG: usize = 5;
    const ZIPF: f64 = 1.0;
    let server = test_server();

    let config = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1, // sequential: every repeat is a true cache hit
        requests: REQUESTS,
        catalog: (0..CATALOG as u64).map(tiny_params).collect(),
        zipf_exponent: ZIPF,
        seed: 42,
    };
    let report = run_loadgen(&config).expect("loadgen run");
    assert_eq!(report.requests, REQUESTS);
    assert_eq!(report.errors, 0);

    let expected = expected_hit_rate(&zipf_weights(CATALOG, ZIPF), REQUESTS);
    assert!(
        (report.hit_rate - expected).abs() < 0.05,
        "measured hit-rate {:.3} vs analytic {expected:.3}",
        report.hit_rate
    );
    // Warm requests are served from memory; cold ones execute a sweep. Even
    // in a debug build the gap is at least an order of magnitude, so a lax
    // ordering assertion is safe.
    assert!(
        report.warm_p99_ms < report.cold_p50_ms,
        "warm p99 {:.3} ms should undercut cold p50 {:.3} ms",
        report.warm_p99_ms,
        report.cold_p50_ms
    );

    // The server agrees: exactly CATALOG sweeps executed, the rest hits.
    let mut client = connect(&server);
    let counters = stats(&mut client);
    assert_eq!(
        counters.get("sweeps_executed").map(String::as_str),
        Some(format!("{CATALOG}").as_str())
    );

    server.shutdown();
    server.join();
}

/// The PR-8 join reconciliation: under concurrency the dedupe path converts
/// would-be cache hits into in-flight joins (`join=1`), which used to drag
/// the measured hit-rate below the analytic expectation by exactly the join
/// count. Counting joins as warm, the identity is exact: warm requests =
/// requests − sweeps the server actually executed, whatever the
/// interleaving, so the warm rate matches the analytic expectation to the
/// same tolerance as the sequential test.
#[test]
fn loadgen_warm_rate_counts_joins_under_concurrency() {
    const REQUESTS: usize = 200;
    const CATALOG: usize = 5;
    const ZIPF: f64 = 1.0;
    let server = test_server();

    let config = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 4, // concurrent: repeats may hit the cache OR join
        requests: REQUESTS,
        catalog: (0..CATALOG as u64).map(tiny_params).collect(),
        zipf_exponent: ZIPF,
        seed: 42,
    };
    let report = run_loadgen(&config).expect("loadgen run");
    assert_eq!(report.requests, REQUESTS);
    assert_eq!(report.errors, 0);

    let expected = expected_hit_rate(&zipf_weights(CATALOG, ZIPF), REQUESTS);
    assert!(
        (report.hit_rate - expected).abs() < 0.05,
        "measured warm rate {:.3} (joins {}) vs analytic {expected:.3}",
        report.hit_rate,
        report.joined
    );

    // Exact ledger: every request either executed a sweep or was warm.
    let mut client = connect(&server);
    let counters = stats(&mut client);
    let executed: usize = counters
        .get("sweeps_executed")
        .expect("stats carry sweeps_executed")
        .parse()
        .expect("numeric counter");
    let warm = (report.hit_rate * REQUESTS as f64).round() as usize;
    assert_eq!(
        warm,
        REQUESTS - executed,
        "warm count must equal requests minus executed sweeps (joins {})",
        report.joined
    );

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_verb_stops_the_server_cleanly() {
    let server = test_server();
    let mut client = connect(&server);
    // A request first, so shutdown happens on a warmed-up server.
    assert!(matches!(
        send(&mut client, &Request::Ping),
        Response::Ok { .. }
    ));
    let bye = send(&mut client, &Request::Shutdown);
    assert!(matches!(bye, Response::Ok { .. }), "{bye:?}");
    // join() returns because every handler thread observes the flag.
    server.join();
}

#[test]
fn request_encoding_round_trips_over_the_public_surface() {
    // Belt-and-braces for the binaries: the exact request the loadgen
    // sends parses back to itself (the property tests fuzz this; here it
    // guards the re-exported API shape).
    let request = Request::Sweep(tiny_params(3));
    let encoded = encode_request(&request);
    assert_eq!(decode_request(&encoded).expect("decode"), request);
}
