//! Integration tests of the design-space exploration subsystem: the drive
//! scenario feeding the sweep, determinism of the whole pipeline (serial and
//! parallel), legacy byte-stability (golden CSV + pre-PR frame
//! fingerprints), the scripted persistent scenarios' temporal locality, and
//! the paper-consistency property (SPADE dominating DenseAcc at equal form
//! factor, Fig. 9).

use spade::core::DataflowOptions;
use spade::pointcloud::{
    DatasetPreset, DensityProfile, DriveScenario, DriveScenarioConfig, NamedScenario,
};
use spade_bench::dse::{run_dse, run_dse_with_jobs, DseParams, SweepAxes};
use spade_bench::WorkloadScale;

fn small_params() -> DseParams {
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes {
        pe_dims: vec![(16, 16), (64, 64)],
        sram_scales: vec![0.5, 1.0],
        freq_ghz: vec![1.0],
        dram_bytes_per_cycle: vec![25.6],
        buffer_splits: vec![0.0],
        sram_banks: vec![spade::core::GATHER_SCATTER_LANES],
        dataflow: vec![DataflowOptions::all_enabled()],
    };
    params.num_frames = 3;
    params
}

#[test]
fn dse_sweep_is_deterministic_for_a_seed() {
    let params = small_params();
    let a = run_dse(&params);
    let b = run_dse(&params);
    assert_eq!(a.cells.len(), b.cells.len());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    // The worker pool reassembles cells in index order, so the full
    // `DseResult` — every cell, the frontier marks, the dominance tally —
    // must be *equal*, not just equivalent, for any worker count.
    let params = small_params();
    let serial = run_dse_with_jobs(&params, 1);
    let parallel = run_dse_with_jobs(&params, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    // More workers than cells degrades gracefully to the same result too.
    let overprovisioned = run_dse_with_jobs(&params, 64);
    assert_eq!(serial, overprovisioned);
    // run_dse is the jobs=1 shorthand.
    assert_eq!(serial, run_dse(&params));
}

#[test]
fn dse_covers_the_grid_and_marks_a_frontier() {
    let params = small_params();
    let result = run_dse(&params);
    // 4 configs x 4 accelerator cells (1 SPADE dataflow setting + 3
    // baselines) x 1 workload.
    assert_eq!(result.num_configs, 4);
    assert_eq!(result.cells.len(), 16);
    assert!(result.num_swept_axes >= 2);
    let frontier = result.frontier();
    assert!(!frontier.is_empty());
    assert!(
        frontier.len() < result.cells.len(),
        "everything on frontier"
    );
    // Fig. 9 consistency: SPADE beats the same-form-factor dense design in
    // at least one configuration cell.
    assert!(result.spade_dense_wins >= 1);
}

#[test]
fn dse_export_matches_cell_count() {
    let result = run_dse(&small_params());
    let csv = result.to_csv();
    // Header + one line per cell.
    assert_eq!(csv.lines().count(), result.cells.len() + 1);
    assert!(csv.starts_with("workload,accelerator,design,"));
    let json = result.to_json();
    assert_eq!(
        json.matches("\"workload\"").count(),
        result.cells.len(),
        "one JSON object per cell"
    );
}

#[test]
fn drive_scenario_feeds_distinct_frames_into_the_sweep() {
    let scenario = DriveScenario::new(
        DatasetPreset::kitti_like(),
        DriveScenarioConfig {
            num_frames: 5,
            base_seed: 11,
            profile: DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
            ..DriveScenarioConfig::default()
        },
    );
    let frames = scenario.frames();
    assert_eq!(frames.len(), 5);
    // Frames differ (the drive moves) and density rises along the ramp.
    assert_ne!(
        frames[0].frame.pillars.active_coords,
        frames[4].frame.pillars.active_coords
    );
    assert!(frames[4].frame.pillars.num_active() > frames[0].frame.pillars.num_active());
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Order-sensitive FNV fingerprint of a frame's active pillar coordinates.
fn coord_fingerprint(frame: &spade::pointcloud::DriveFrame) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in &frame.frame.pillars.active_coords {
        for v in [u64::from(c.row), u64::from(c.col)] {
            h ^= v;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

#[test]
fn legacy_frames_match_pre_pr_fingerprints() {
    // Frame generation for Constant/Ramp/Peak drives without events must be
    // byte-identical to the pre-scenario-layer generator. The expected
    // values were captured by running the pre-PR code (`num_points`,
    // `num_active`, coordinate fingerprint per frame at seed 2024).
    type FrameFingerprints = [(usize, usize, u64); 4];
    let expected: [(&str, DensityProfile, FrameFingerprints); 3] = [
        (
            "ramp",
            DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
            [
                (8239, 6670, 0x8a34_bb9f_a465_5e2c),
                (10855, 6829, 0x1e58_0ff7_aba8_48d2),
                (12892, 7392, 0xfe5e_c63a_1479_5965),
                (14201, 8123, 0xc0ef_fb4a_ea2e_868a),
            ],
        ),
        (
            "constant",
            DensityProfile::Constant,
            [
                (9881, 7157, 0xe406_ef59_95eb_37e3),
                (10855, 6829, 0x1e58_0ff7_aba8_48d2),
                (9792, 6758, 0xd6b8_c557_5368_df8f),
                (12099, 7307, 0x0321_7755_d702_5a53),
            ],
        ),
        (
            "peak",
            DensityProfile::Peak {
                base: 1.0,
                peak: 2.0,
            },
            [
                (9881, 7157, 0xe406_ef59_95eb_37e3),
                (13049, 7456, 0xbda7_35e8_9c17_df2c),
                (13106, 7507, 0x6331_4822_6155_f50f),
                (12099, 7307, 0x0321_7755_d702_5a53),
            ],
        ),
    ];
    for (name, profile, frames_expected) in expected {
        let scenario = DriveScenario::new(
            DatasetPreset::kitti_like(),
            DriveScenarioConfig {
                num_frames: 4,
                base_seed: 2024,
                profile,
                ..DriveScenarioConfig::default()
            },
        );
        for (f, (points, active, fp)) in scenario.frames().iter().zip(frames_expected) {
            assert_eq!(f.frame.num_points, points, "{name} frame {}", f.index);
            assert_eq!(
                f.frame.pillars.num_active(),
                active,
                "{name} frame {}",
                f.index
            );
            assert_eq!(coord_fingerprint(f), fp, "{name} frame {}", f.index);
        }
    }
}

#[test]
fn legacy_dse_csv_matches_committed_golden() {
    // The full legacy sweep pipeline (i.i.d. Ramp drive, no scenario) is
    // pinned byte-for-byte to a committed golden CSV, so neither the
    // scenario machinery nor future refactors can silently perturb legacy
    // output. The golden reflects one deliberate post-capture change vs. the
    // literal pre-PR bytes: model runs now derive their RNG from a stream
    // decorrelated from frame generation (the `model_seed` bugfix), which
    // shifts the pruning noise and therefore the mean metric columns; frame
    // generation itself is pinned to pre-PR bytes by
    // `legacy_frames_match_pre_pr_fingerprints`, and the grid structure to
    // the pre-PR CSV by `legacy_dse_grid_structure_matches_pre_pr`.
    let csv = run_dse(&small_params()).to_csv();
    let golden = std::fs::read_to_string(golden_path("dse_legacy_reduced.csv"))
        .expect("tests/golden/dse_legacy_reduced.csv is committed");
    assert_eq!(csv, golden, "legacy DSE CSV drifted from the golden file");
}

#[test]
fn legacy_dse_grid_structure_matches_pre_pr() {
    // Identity columns (workload, accelerator, design point, hardware axes)
    // of the legacy sweep, compared against the CSV captured from the
    // pre-PR code: the scenario layer must not add, drop, reorder, or
    // relabel any cell of a legacy sweep.
    let golden = std::fs::read_to_string(golden_path("dse_legacy_pre_pr.csv"))
        .expect("tests/golden/dse_legacy_pre_pr.csv is committed");
    let result = run_dse(&small_params());
    let csv = result.to_csv();
    let identity = |line: &str| {
        line.split(',')
            .take(9) // workload..dataflow — everything value-independent
            .collect::<Vec<_>>()
            .join(",")
    };
    let ours: Vec<String> = csv.lines().map(identity).collect();
    let pre_pr: Vec<String> = golden.lines().map(identity).collect();
    assert_eq!(ours, pre_pr, "legacy grid structure drifted from pre-PR");
}

#[test]
fn scripted_scenario_raises_temporal_locality_over_iid_baseline() {
    // The acceptance bar of the scenario layer: a persistent scripted drive
    // shows mean consecutive-frame active-pillar overlap >= 0.5, while the
    // legacy i.i.d. drive sits far below it, and the metric reaches the CSV
    // as the `mean_pillar_overlap` column.
    let mut params = small_params();
    params.scenario = Some(NamedScenario::StopAndGo);
    let scripted = run_dse(&params);
    params.scenario = Some(NamedScenario::Constant);
    let baseline = run_dse(&params);
    let overlap_of = |r: &spade_bench::dse::DseResult| {
        let v = r.cells[0].mean_pillar_overlap;
        assert!(r.cells.iter().all(|c| c.mean_pillar_overlap == v));
        v
    };
    let scripted_overlap = overlap_of(&scripted);
    let baseline_overlap = overlap_of(&baseline);
    assert!(
        scripted_overlap >= 0.5,
        "persistent drive overlap {scripted_overlap} below 0.5"
    );
    assert!(
        scripted_overlap > baseline_overlap + 0.2,
        "scripted {scripted_overlap} should clearly beat i.i.d. {baseline_overlap}"
    );
    let header = scripted.to_csv().lines().next().unwrap().to_owned();
    assert!(header.contains("mean_pillar_overlap"));
    assert!(scripted.summary().contains("temporal locality"));
}

#[test]
fn scripted_scenario_sweep_is_deterministic_and_parallel_safe() {
    // Persistent drives are generated sequentially inside the sweep, so the
    // whole result must stay bit-identical for any worker count, like the
    // legacy path.
    let mut params = small_params();
    params.scenario = Some(NamedScenario::Tunnel);
    let serial = run_dse_with_jobs(&params, 1);
    let parallel = run_dse_with_jobs(&params, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), run_dse(&params).to_csv());
}

#[test]
fn delta_sweep_simulates_the_same_cells_as_the_full_sweep() {
    // The delta path changes how the per-frame workloads are computed —
    // never what they contain — so every simulated metric of every cell must
    // be identical with delta on and off; only the delta bookkeeping columns
    // may differ.
    for scenario in [NamedScenario::StopAndGo, NamedScenario::Urban] {
        let mut params = small_params();
        params.scenario = Some(scenario);
        let full = run_dse(&params);
        params.delta = true;
        let delta = run_dse(&params);
        assert_eq!(full.cells.len(), delta.cells.len());
        for (f, d) in full.cells.iter().zip(&delta.cells) {
            let mut d_masked = d.clone();
            d_masked.frames_delta_executed = f.frames_delta_executed;
            d_masked.delta_speedup = f.delta_speedup;
            assert_eq!(*f, d_masked, "{scenario}: cell metrics drifted");
        }
        // A temporally coherent drive actually exercises the delta path and
        // wins: at least one frame patches (frame 0 always full-sweeps, and
        // an eventful transition may trip the fallback threshold), and fewer
        // rows are swept than a from-scratch run would walk.
        assert!(
            delta.delta_stats.frames_delta >= 1
                && delta.delta_stats.frames_delta < delta.delta_stats.frames_total,
            "{scenario}: delta stats {:?}",
            delta.delta_stats
        );
        assert!(
            delta.cells[0].delta_speedup > 1.0,
            "{scenario}: modelled speedup {} not > 1",
            delta.cells[0].delta_speedup
        );
        assert!(delta.cells[0].frames_delta_executed > 0);
        // The bookkeeping columns appear only on delta runs, so legacy
        // exports stay byte-identical.
        let delta_header = delta.to_csv().lines().next().unwrap().to_owned();
        assert!(delta_header.contains("frames_delta_executed"));
        assert!(delta_header.contains("delta_speedup"));
        let full_header = full.to_csv().lines().next().unwrap().to_owned();
        assert!(!full_header.contains("delta"));
        assert!(delta.summary().contains("delta execution"));
    }
}

#[test]
fn delta_sweep_is_bit_identical_across_worker_counts() {
    // Delta drives run stage 1 sequentially per model, but the design-point
    // fan-out still parallelises — the whole result must stay bit-identical
    // for any worker count, like the full-sweep path.
    let mut params = small_params();
    params.scenario = Some(NamedScenario::StopAndGo);
    params.delta = true;
    let serial = run_dse_with_jobs(&params, 1);
    let parallel = run_dse_with_jobs(&params, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn per_frame_delta_runs_match_full_runs_exactly() {
    // Below the sweep: model_run_on_frame_delta must reproduce
    // model_run_on_frame byte-for-byte on every frame of a scripted drive.
    use spade::nn::{DeltaPolicy, FrameDeltaState, ModelKind, PruningConfig};
    use spade_bench::workload::{model_run_on_frame, model_run_on_frame_delta};

    let preset = DatasetPreset::kitti_like();
    let cfg = NamedScenario::StopAndGo.config(5, 2024);
    let scenario = DriveScenario::new(preset.clone(), cfg.clone());
    let mut state = FrameDeltaState::new(DeltaPolicy::default());
    for f in &scenario.frames() {
        let seed = cfg.pruning_seed(f.index);
        let full = model_run_on_frame(
            ModelKind::Spp2,
            &preset,
            &f.frame,
            seed,
            WorkloadScale::Reduced,
            PruningConfig::default(),
        );
        let delta = model_run_on_frame_delta(
            ModelKind::Spp2,
            &preset,
            &f.frame,
            seed,
            WorkloadScale::Reduced,
            PruningConfig::default(),
            &mut state,
        );
        assert_eq!(full.trace, delta.trace, "frame {}", f.index);
        assert_eq!(full.workloads, delta.workloads, "frame {}", f.index);
        assert_eq!(full.encoder_macs, delta.encoder_macs, "frame {}", f.index);
    }
    let stats = state.stats();
    assert_eq!(stats.frames_total, 5);
    assert!(stats.frames_delta >= 3, "stats: {stats:?}");
    assert!(stats.rows_swept < stats.rows_full_equivalent);
}

#[test]
fn denser_traffic_narrows_spades_win() {
    // Run the sparse model on the sparse and dense ends of the drive via the
    // sweep machinery: the SPADE-vs-DenseAcc latency gap should be wider on
    // the sparse (early) frame than on the dense (late) frame, which is why
    // single-frame evaluation misstates the benefit over a whole drive.
    use spade::baselines::DenseAccelerator;
    use spade::core::{SpadeAccelerator, SpadeConfig};
    use spade::nn::{ModelKind, PruningConfig};
    use spade_bench::workload::{model_run_on_frame, simulate_on};

    let preset = DatasetPreset::kitti_like();
    let scenario = DriveScenario::new(
        preset.clone(),
        DriveScenarioConfig {
            num_frames: 5,
            base_seed: 2024,
            profile: DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
            ..DriveScenarioConfig::default()
        },
    );
    let frames = scenario.frames();
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let gap_at = |idx: usize| {
        let run = model_run_on_frame(
            ModelKind::Spp3,
            &preset,
            &frames[idx].frame,
            idx as u64,
            WorkloadScale::Reduced,
            PruningConfig::default(),
        );
        simulate_on(&dense, &run).latency_ms / simulate_on(&spade, &run).latency_ms
    };
    let sparse_gap = gap_at(0);
    let dense_gap = gap_at(4);
    assert!(sparse_gap > 1.0 && dense_gap > 1.0);
    assert!(
        sparse_gap > dense_gap,
        "speedup should shrink as occupancy grows: sparse {sparse_gap:.2}x vs dense {dense_gap:.2}x"
    );
}
