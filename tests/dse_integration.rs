//! Integration tests of the design-space exploration subsystem: the drive
//! scenario feeding the sweep, determinism of the whole pipeline (serial and
//! parallel), and the paper-consistency property (SPADE dominating DenseAcc
//! at equal form factor, Fig. 9).

use spade::core::DataflowOptions;
use spade::pointcloud::{DatasetPreset, DensityProfile, DriveScenario, DriveScenarioConfig};
use spade_bench::dse::{run_dse, run_dse_with_jobs, DseParams, SweepAxes};
use spade_bench::WorkloadScale;

fn small_params() -> DseParams {
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes {
        pe_dims: vec![(16, 16), (64, 64)],
        sram_scales: vec![0.5, 1.0],
        freq_ghz: vec![1.0],
        dram_bytes_per_cycle: vec![25.6],
        dataflow: vec![DataflowOptions::all_enabled()],
    };
    params.num_frames = 3;
    params
}

#[test]
fn dse_sweep_is_deterministic_for_a_seed() {
    let params = small_params();
    let a = run_dse(&params);
    let b = run_dse(&params);
    assert_eq!(a.cells.len(), b.cells.len());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    // The worker pool reassembles cells in index order, so the full
    // `DseResult` — every cell, the frontier marks, the dominance tally —
    // must be *equal*, not just equivalent, for any worker count.
    let params = small_params();
    let serial = run_dse_with_jobs(&params, 1);
    let parallel = run_dse_with_jobs(&params, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    // More workers than cells degrades gracefully to the same result too.
    let overprovisioned = run_dse_with_jobs(&params, 64);
    assert_eq!(serial, overprovisioned);
    // run_dse is the jobs=1 shorthand.
    assert_eq!(serial, run_dse(&params));
}

#[test]
fn dse_covers_the_grid_and_marks_a_frontier() {
    let params = small_params();
    let result = run_dse(&params);
    // 4 configs x 4 accelerator cells (1 SPADE dataflow setting + 3
    // baselines) x 1 workload.
    assert_eq!(result.num_configs, 4);
    assert_eq!(result.cells.len(), 16);
    assert!(result.num_swept_axes >= 2);
    let frontier = result.frontier();
    assert!(!frontier.is_empty());
    assert!(
        frontier.len() < result.cells.len(),
        "everything on frontier"
    );
    // Fig. 9 consistency: SPADE beats the same-form-factor dense design in
    // at least one configuration cell.
    assert!(result.spade_dense_wins >= 1);
}

#[test]
fn dse_export_matches_cell_count() {
    let result = run_dse(&small_params());
    let csv = result.to_csv();
    // Header + one line per cell.
    assert_eq!(csv.lines().count(), result.cells.len() + 1);
    assert!(csv.starts_with("workload,accelerator,design,"));
    let json = result.to_json();
    assert_eq!(
        json.matches("\"workload\"").count(),
        result.cells.len(),
        "one JSON object per cell"
    );
}

#[test]
fn drive_scenario_feeds_distinct_frames_into_the_sweep() {
    let scenario = DriveScenario::new(
        DatasetPreset::kitti_like(),
        DriveScenarioConfig {
            num_frames: 5,
            base_seed: 11,
            profile: DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
        },
    );
    let frames = scenario.frames();
    assert_eq!(frames.len(), 5);
    // Frames differ (the drive moves) and density rises along the ramp.
    assert_ne!(
        frames[0].frame.pillars.active_coords,
        frames[4].frame.pillars.active_coords
    );
    assert!(frames[4].frame.pillars.num_active() > frames[0].frame.pillars.num_active());
}

#[test]
fn denser_traffic_narrows_spades_win() {
    // Run the sparse model on the sparse and dense ends of the drive via the
    // sweep machinery: the SPADE-vs-DenseAcc latency gap should be wider on
    // the sparse (early) frame than on the dense (late) frame, which is why
    // single-frame evaluation misstates the benefit over a whole drive.
    use spade::baselines::DenseAccelerator;
    use spade::core::{SpadeAccelerator, SpadeConfig};
    use spade::nn::{ModelKind, PruningConfig};
    use spade_bench::workload::{model_run_on_frame, simulate_on};

    let preset = DatasetPreset::kitti_like();
    let scenario = DriveScenario::new(
        preset.clone(),
        DriveScenarioConfig {
            num_frames: 5,
            base_seed: 2024,
            profile: DensityProfile::Ramp {
                start: 0.5,
                end: 2.0,
            },
        },
    );
    let frames = scenario.frames();
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let gap_at = |idx: usize| {
        let run = model_run_on_frame(
            ModelKind::Spp3,
            &preset,
            &frames[idx].frame,
            idx as u64,
            WorkloadScale::Reduced,
            PruningConfig::default(),
        );
        simulate_on(&dense, &run).latency_ms / simulate_on(&spade, &run).latency_ms
    };
    let sparse_gap = gap_at(0);
    let dense_gap = gap_at(4);
    assert!(sparse_gap > 1.0 && dense_gap > 1.0);
    assert!(
        sparse_gap > dense_gap,
        "speedup should shrink as occupancy grows: sparse {sparse_gap:.2}x vs dense {dense_gap:.2}x"
    );
}
