//! Integration tests of the adaptive design-space explorer: exact frontier
//! equivalence with the exhaustive sweep (the screen's whole contract),
//! soundness of the roofline lower bound it prunes on, the budget counters,
//! and worker-count determinism of the halving loop.

use spade::core::{DataflowOptions, SpadeAccelerator, SpadeConfig};
use spade::nn::{ModelKind, PruningConfig};
use spade::pointcloud::{DatasetPreset, DriveScenario, NamedScenario};
use spade_bench::dse::{adaptive, run_dse, run_dse_with_jobs, DseCell, DseParams, SweepAxes};
use spade_bench::workload::{model_run_on_frame, simulate_on};
use spade_bench::WorkloadScale;

/// A small grid that still sweeps both of the new axes, so the screen has
/// dominated buffer-split / banking points to discard.
fn small_params() -> DseParams {
    let mut params = DseParams::default_for(WorkloadScale::Reduced);
    params.axes = SweepAxes {
        pe_dims: vec![(16, 16), (64, 64)],
        sram_scales: vec![0.5, 1.0],
        freq_ghz: vec![1.0],
        dram_bytes_per_cycle: vec![25.6],
        buffer_splits: vec![0.0, 0.25, 0.75],
        sram_banks: vec![spade::core::GATHER_SCATTER_LANES, 4],
        dataflow: vec![DataflowOptions::all_enabled()],
    };
    params.num_frames = 3;
    params
}

/// The frontier cells by value: the adaptive explorer must reproduce these
/// byte-for-byte, not merely hit the same design points.
fn frontier_cells(result: &spade_bench::dse::DseResult) -> Vec<DseCell> {
    result.frontier().into_iter().cloned().collect()
}

#[test]
fn adaptive_frontier_is_byte_identical_to_exhaustive() {
    let exhaustive_params = small_params();
    let mut adaptive_params = exhaustive_params.clone();
    adaptive_params.adaptive = true;

    let exhaustive = run_dse_with_jobs(&exhaustive_params, 4);
    let adaptive_run = run_dse_with_jobs(&adaptive_params, 4);

    assert_eq!(exhaustive.cells.len(), adaptive_run.cells.len());
    assert_eq!(
        frontier_cells(&exhaustive),
        frontier_cells(&adaptive_run),
        "adaptive frontier drifted from the exhaustive frontier"
    );
    // Every fully simulated adaptive cell matches its exhaustive twin
    // exactly; screened cells carry bounds, which can only undercut.
    for (e, a) in exhaustive.cells.iter().zip(&adaptive_run.cells) {
        if a.simulated {
            assert_eq!(e, a, "simulated cell drifted: {}", a.design);
        } else {
            assert!(!a.on_frontier, "screened cell on frontier: {}", a.design);
            assert!(a.mean_latency_ms <= e.mean_latency_ms);
            assert!(a.mean_energy_mj <= e.mean_energy_mj);
        }
    }

    // Counter invariants, and the screen actually saves work on this grid.
    assert!(adaptive_run.adaptive);
    assert_eq!(
        adaptive_run.cells_screened + adaptive_run.cells_simulated,
        adaptive_run.cells.len()
    );
    assert!(
        adaptive_run.cells_screened > 0,
        "screen discarded nothing on a grid with dominated bank/split points"
    );
    assert!(adaptive_run.frames_saved >= adaptive_run.cells_screened);
    assert_eq!(exhaustive.cells_screened, 0);
    assert_eq!(exhaustive.cells_simulated, exhaustive.cells.len());
    assert_eq!(exhaustive.frames_saved, 0);

    // The budget columns ride along only on adaptive exports, so default
    // exports stay byte-identical.
    let adaptive_header = adaptive_run.to_csv().lines().next().unwrap().to_owned();
    for column in [
        "simulated",
        "cells_screened",
        "cells_simulated",
        "frames_saved",
    ] {
        assert!(adaptive_header.contains(column), "missing column {column}");
    }
    let exhaustive_header = exhaustive.to_csv().lines().next().unwrap().to_owned();
    assert!(!exhaustive_header.contains("simulated"));
    assert!(adaptive_run.summary().contains("adaptive exploration"));
    assert!(!exhaustive.summary().contains("adaptive exploration"));
}

#[test]
fn adaptive_frontier_equality_holds_for_scenarios_and_delta() {
    // The screen composes with the scripted-scenario and delta-execution
    // paths (both only change how stage 1 builds the per-frame workloads):
    // frontier equality must survive the combination.
    for delta in [false, true] {
        let mut exhaustive_params = small_params();
        exhaustive_params.scenario = Some(NamedScenario::StopAndGo);
        exhaustive_params.delta = delta;
        let mut adaptive_params = exhaustive_params.clone();
        adaptive_params.adaptive = true;

        let exhaustive = run_dse_with_jobs(&exhaustive_params, 4);
        let adaptive_run = run_dse_with_jobs(&adaptive_params, 4);
        assert_eq!(
            frontier_cells(&exhaustive),
            frontier_cells(&adaptive_run),
            "frontier drifted (stop-and-go, delta={delta})"
        );
    }
}

#[test]
fn adaptive_sweep_is_bit_identical_across_worker_counts() {
    // Halving rungs fan out over the pool but decide serially, so the whole
    // result — screened bounds included — must not depend on `--jobs`.
    let mut params = small_params();
    params.adaptive = true;
    let serial = run_dse_with_jobs(&params, 1);
    let parallel = run_dse_with_jobs(&params, 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial, run_dse(&params));
}

#[test]
fn roofline_bound_never_exceeds_simulation() {
    // The exactness argument rests on `bound ≤ simulated` per frame, for
    // every configuration and dataflow setting. Exercise every named
    // scenario, both dataflow extremes, and configurations that stress the
    // new axes (skewed buffer split, conflicted banking) plus the clock and
    // array-shape axes the bound's arithmetic folds in.
    let preset = DatasetPreset::kitti_like();
    let configs = [
        SpadeConfig::high_end(),
        SpadeConfig::low_end(),
        SpadeConfig::high_end()
            .with_buffer_split(0.9)
            .with_sram_banks(1),
        SpadeConfig::high_end()
            .with_freq_ghz(1.5)
            .with_buffer_split(0.25)
            .with_sram_banks(4),
        SpadeConfig::low_end()
            .with_buffer_split(0.1)
            .with_sram_banks(2),
    ];
    for scenario in NamedScenario::ALL {
        let cfg = scenario.config(2, 2024);
        let drive = DriveScenario::new(preset.clone(), cfg.clone());
        let runs: Vec<_> = drive
            .frames()
            .iter()
            .map(|f| {
                model_run_on_frame(
                    ModelKind::Spp2,
                    &preset,
                    &f.frame,
                    cfg.pruning_seed(f.index),
                    WorkloadScale::Reduced,
                    PruningConfig::default(),
                )
            })
            .collect();
        for config in &configs {
            let bounds = adaptive::roofline_bound(config, &runs);
            assert_eq!(bounds.len(), runs.len());
            for dataflow in [
                DataflowOptions::all_enabled(),
                DataflowOptions::all_disabled(),
            ] {
                let acc = SpadeAccelerator::with_options(*config, dataflow);
                for (run, &(bound_lat, bound_energy)) in runs.iter().zip(&bounds) {
                    let perf = simulate_on(&acc, run);
                    assert!(
                        bound_lat <= perf.latency_ms,
                        "{scenario}: latency bound {bound_lat} > simulated {} \
                         (config {}, dataflow {dataflow:?})",
                        perf.latency_ms,
                        config.label(),
                    );
                    assert!(
                        bound_energy <= perf.energy.total_mj(),
                        "{scenario}: energy bound {bound_energy} > simulated {} \
                         (config {}, dataflow {dataflow:?})",
                        perf.energy.total_mj(),
                        config.label(),
                    );
                }
            }
        }
    }
}
