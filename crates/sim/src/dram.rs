//! Off-chip DRAM timing and traffic model (Ramulator substitute).
//!
//! The model captures the two effects the paper's DRAM comparisons rely on:
//! sequential (streaming) accesses run at full bandwidth with rare row
//! activations, while random accesses pay a row-miss penalty on most requests
//! (Fig. 6(c), Fig. 14).

use serde::{Deserialize, Serialize};

/// Cumulative DRAM activity statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// Bytes transferred by sequential (streaming) requests.
    pub sequential_bytes: u64,
    /// Bytes transferred by random requests.
    pub random_bytes: u64,
    /// Number of row activations modelled.
    pub row_activations: u64,
    /// Accumulated access cycles (at the accelerator clock).
    pub cycles: u64,
}

/// A bandwidth/row-buffer DRAM model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Peak bandwidth in bytes per accelerator cycle.
    bytes_per_cycle: f64,
    /// DRAM row (page) size in bytes.
    row_bytes: u64,
    /// Extra cycles charged per row activation.
    row_activation_cycles: u64,
    /// Fraction of random requests that miss the open row.
    random_row_miss_rate: f64,
    stats: DramStats,
}

impl DramModel {
    /// An LPDDR4-class interface: ~25.6 GB/s at a 1 GHz accelerator clock.
    #[must_use]
    pub fn lpddr4() -> Self {
        Self {
            bytes_per_cycle: 25.6,
            row_bytes: 2048,
            row_activation_cycles: 28,
            random_row_miss_rate: 0.8,
            stats: DramStats::default(),
        }
    }

    /// A model with explicit bandwidth (bytes per accelerator cycle).
    #[must_use]
    pub fn with_bandwidth(bytes_per_cycle: f64) -> Self {
        Self {
            bytes_per_cycle,
            ..Self::lpddr4()
        }
    }

    /// Records a sequential (streaming) transfer of `bytes`.
    /// Returns the cycles this transfer occupies the DRAM interface.
    // unit: cycles
    pub fn read_sequential(&mut self, bytes: u64) -> u64 {
        let rows = bytes.div_ceil(self.row_bytes);
        let cycles =
            (bytes as f64 / self.bytes_per_cycle).ceil() as u64 + rows * self.row_activation_cycles;
        self.stats.total_bytes += bytes;
        self.stats.sequential_bytes += bytes;
        self.stats.row_activations += rows;
        self.stats.cycles += cycles;
        cycles
    }

    /// Records `count` random transfers of `granule` bytes each (e.g. cache
    /// line fills). Most of them pay a row activation.
    // unit: cycles
    pub fn read_random(&mut self, count: u64, granule: u64) -> u64 {
        let bytes = count * granule;
        let misses = (count as f64 * self.random_row_miss_rate).round() as u64;
        let cycles = (bytes as f64 / self.bytes_per_cycle).ceil() as u64
            + misses * self.row_activation_cycles;
        self.stats.total_bytes += bytes;
        self.stats.random_bytes += bytes;
        self.stats.row_activations += misses;
        self.stats.cycles += cycles;
        cycles
    }

    /// Records a sequential write (same cost model as a sequential read).
    // unit: cycles
    pub fn write_sequential(&mut self, bytes: u64) -> u64 {
        self.read_sequential(bytes)
    }

    /// The accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> DramStats {
        self.stats
    }

    /// The minimum cycles needed to move `bytes` at peak bandwidth with a
    /// single row activation per row — the "ideal DRAM latency" reference of
    /// Fig. 6(c).
    #[must_use]
    pub fn ideal_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
            + bytes.div_ceil(self.row_bytes) * self.row_activation_cycles
    }

    /// Resets the statistics.
    pub fn reset(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_ideal() {
        let mut d = DramModel::lpddr4();
        let c = d.read_sequential(64 * 1024);
        assert_eq!(c, d.ideal_cycles(64 * 1024));
    }

    #[test]
    fn random_costs_more_than_sequential_for_same_bytes() {
        let mut a = DramModel::lpddr4();
        let mut b = DramModel::lpddr4();
        let seq = a.read_sequential(64 * 1024);
        let rnd = b.read_random(1024, 64);
        assert_eq!(a.stats().total_bytes, b.stats().total_bytes);
        assert!(rnd > seq, "random {rnd} should exceed sequential {seq}");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramModel::lpddr4();
        d.read_sequential(1000);
        d.write_sequential(500);
        d.read_random(10, 64);
        let s = d.stats();
        assert_eq!(s.total_bytes, 1000 + 500 + 640);
        assert_eq!(s.sequential_bytes, 1500);
        assert_eq!(s.random_bytes, 640);
        assert!(s.cycles > 0);
        d.reset();
        assert_eq!(d.stats(), DramStats::default());
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let mut slow = DramModel::with_bandwidth(12.8);
        let mut fast = DramModel::with_bandwidth(51.2);
        assert!(slow.read_sequential(1 << 20) > fast.read_sequential(1 << 20));
    }
}
