//! On-chip SRAM energy and area model (CACTI substitute).

use serde::{Deserialize, Serialize};

/// A single-ported SRAM buffer: capacity, access energy, and area estimate.
///
/// Per-byte access energy grows slowly with capacity and area grows roughly
/// linearly — the relationships CACTI reports for small buffers at 32 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    capacity_bytes: u64,
}

impl SramModel {
    /// Creates a buffer of the given capacity in kibibytes.
    #[must_use]
    pub const fn new_kib(capacity_kib: u64) -> Self {
        Self {
            capacity_bytes: capacity_kib * 1024,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub const fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Capacity in kibibytes.
    #[must_use]
    pub const fn capacity_kib(&self) -> u64 {
        self.capacity_bytes / 1024
    }

    /// Energy to read or write one byte (pJ); grows with the square root of
    /// capacity (longer bit/word lines).
    #[must_use]
    pub fn energy_per_byte_pj(&self) -> f64 {
        let kib = self.capacity_bytes as f64 / 1024.0;
        0.6 + 0.15 * kib.sqrt()
    }

    /// Estimated area in mm² (≈0.012 mm² per KiB at 32 nm plus periphery).
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let kib = self.capacity_bytes as f64 / 1024.0;
        0.01 + 0.012 * kib
    }

    /// Energy (pJ) for transferring `bytes` through this buffer.
    #[must_use]
    pub fn access_energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_buffers_cost_more_per_byte() {
        let small = SramModel::new_kib(32);
        let big = SramModel::new_kib(256);
        assert!(big.energy_per_byte_pj() > small.energy_per_byte_pj());
        assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn capacity_round_trip() {
        let s = SramModel::new_kib(64);
        assert_eq!(s.capacity_bytes(), 65536);
        assert_eq!(s.capacity_kib(), 64);
    }

    #[test]
    fn access_energy_scales_linearly_with_bytes() {
        let s = SramModel::new_kib(32);
        assert!((s.access_energy_pj(200) - 2.0 * s.access_energy_pj(100)).abs() < 1e-9);
    }
}
