//! Direct-mapped cache model.
//!
//! Used by the cache-based baselines (the SpConv-library execution model and
//! the PointAcc accelerator model): sparse gather/scatter through a
//! direct-mapped cache suffers conflict misses near active-tile boundaries,
//! which is exactly the effect Fig. 6(c) and Fig. 14 quantify.

use serde::{Deserialize, Serialize};

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of hits.
    pub hits: u64,
    /// Number of misses (each triggers a line fill from DRAM).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A direct-mapped cache with configurable capacity and line size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectMappedCache {
    line_bytes: u64,
    num_lines: u64,
    tags: Vec<Option<u64>>,
    stats: CacheStats,
}

impl DirectMappedCache {
    /// Creates a cache with the given capacity (KiB) and line size (bytes).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a multiple of the line size or either is
    /// zero.
    #[must_use]
    pub fn new(capacity_kib: u64, line_bytes: u64) -> Self {
        assert!(capacity_kib > 0 && line_bytes > 0, "sizes must be non-zero");
        let capacity = capacity_kib * 1024;
        assert_eq!(
            capacity % line_bytes,
            0,
            "capacity must be a multiple of the line size"
        );
        let num_lines = capacity / line_bytes;
        Self {
            line_bytes,
            num_lines,
            tags: vec![None; num_lines as usize],
            stats: CacheStats::default(),
        }
    }

    /// Cache line size in bytes.
    #[must_use]
    pub const fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accesses the byte address `addr`; returns `true` on a hit. A miss
    /// installs the line.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let index = (line % self.num_lines) as usize;
        let tag = line / self.num_lines;
        self.stats.accesses += 1;
        if self.tags[index] == Some(tag) {
            self.stats.hits += 1;
            true
        } else {
            self.tags[index] = Some(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses a `bytes`-long object starting at `addr`, touching every line
    /// it spans. Returns the number of misses incurred.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line * self.line_bytes) {
                misses += 1;
            }
        }
        misses
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = DirectMappedCache::new(1, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63));
        assert!(!c.access(64));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        // 1 KiB / 64 B = 16 lines; addresses 0 and 1024 map to the same index.
        let mut c = DirectMappedCache::new(1, 64);
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(!c.access(0), "line was evicted by the conflicting access");
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn sequential_streaming_has_low_miss_rate_per_byte() {
        let mut c = DirectMappedCache::new(32, 64);
        for addr in (0..32 * 1024).step_by(4) {
            c.access(addr);
        }
        // One miss per 64-byte line, i.e. 1/16 of the 4-byte accesses.
        assert!(c.stats().miss_rate() < 0.07);
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = DirectMappedCache::new(4, 64);
        let misses = c.access_range(60, 72); // spans lines 0 and 1 and 2
        assert_eq!(misses, 3);
        assert_eq!(c.access_range(60, 72), 0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn capacity_must_be_line_multiple() {
        let _ = DirectMappedCache::new(1, 100);
    }
}
