//! Energy constants and per-component energy accounting.

use serde::{Deserialize, Serialize};

/// Technology energy constants (per-operation energies in picojoules).
///
/// Approximate 32 nm-class values: an int8 MAC costs a fraction of a
/// picojoule, an SRAM access a few picojoules per byte-row, and DRAM tens of
/// picojoules per byte — the 1 : ~10 : ~100 ordering all accelerator papers
/// rely on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    mac_pj: f64,
    sram_per_byte_pj: f64,
    dram_per_byte_pj: f64,
    leakage_mw: f64,
}

impl EnergyModel {
    /// Constants for a 32 nm-class ASIC at 1 GHz.
    #[must_use]
    pub fn asic_32nm() -> Self {
        Self {
            mac_pj: 0.3,
            sram_per_byte_pj: 1.2,
            dram_per_byte_pj: 40.0,
            leakage_mw: 50.0,
        }
    }

    /// Energy of one int8 multiply-accumulate (pJ).
    #[must_use]
    pub const fn mac_energy_pj(&self) -> f64 {
        self.mac_pj
    }

    /// Energy of moving one byte to/from on-chip SRAM (pJ).
    #[must_use]
    pub const fn sram_energy_per_byte_pj(&self) -> f64 {
        self.sram_per_byte_pj
    }

    /// Energy of moving one byte to/from off-chip DRAM (pJ).
    #[must_use]
    pub const fn dram_energy_per_byte_pj(&self) -> f64 {
        self.dram_per_byte_pj
    }

    /// Static leakage power (mW).
    #[must_use]
    pub const fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Supply-voltage factor for a clock frequency, relative to the 1 GHz
    /// nominal point: the classic linear V/f approximation
    /// `V/V₀ = 0.7 + 0.3·f`, exactly 1 at 1 GHz.
    ///
    /// Running faster needs a higher supply voltage, so a frequency sweep is
    /// a genuine latency-vs-energy trade-off rather than a free win: dynamic
    /// energy per operation scales with `V²` and leakage power with `V`.
    #[must_use]
    pub fn voltage_factor(freq_ghz: f64) -> f64 {
        0.7 + 0.3 * freq_ghz
    }

    /// Builds an energy breakdown from raw activity counts.
    ///
    /// On-chip dynamic energy (MACs, SRAM) scales with the square of
    /// [`EnergyModel::voltage_factor`] and leakage power linearly with it;
    /// off-chip DRAM energy is per byte on its own supply rail and does not
    /// scale with the core clock. At the paper's 1 GHz design points every
    /// factor is exactly 1, so the two fixed configurations are untouched.
    #[must_use]
    pub fn breakdown(
        &self,
        macs: u64,
        sram_bytes: u64,
        dram_bytes: u64,
        cycles: u64,
        freq_ghz: f64,
    ) -> EnergyBreakdown {
        let v = Self::voltage_factor(freq_ghz);
        let v2 = v * v;
        let compute_pj = macs as f64 * self.mac_pj * v2;
        let sram_pj = sram_bytes as f64 * self.sram_per_byte_pj * v2;
        let dram_pj = dram_bytes as f64 * self.dram_per_byte_pj;
        let time_s = cycles as f64 / (freq_ghz * 1e9);
        let leakage_pj = self.leakage_mw * 1e-3 * v * time_s * 1e12;
        EnergyBreakdown {
            compute_pj,
            sram_pj,
            dram_pj,
            leakage_pj,
        }
    }
}

/// Energy split by component (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC array energy.
    pub compute_pj: f64,
    /// On-chip SRAM energy.
    pub sram_pj: f64,
    /// Off-chip DRAM energy.
    pub dram_pj: f64,
    /// Leakage over the run time.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.leakage_pj
    }

    /// Total energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Element-wise sum of two breakdowns.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        Self {
            compute_pj: self.compute_pj + other.compute_pj,
            sram_pj: self.sram_pj + other.sram_pj,
            dram_pj: self.dram_pj + other.dram_pj,
            leakage_pj: self.leakage_pj + other.leakage_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_ordered() {
        let e = EnergyModel::asic_32nm();
        assert!(e.mac_energy_pj() < e.sram_energy_per_byte_pj());
        assert!(e.sram_energy_per_byte_pj() < e.dram_energy_per_byte_pj());
    }

    #[test]
    fn breakdown_sums_components() {
        let e = EnergyModel::asic_32nm();
        let b = e.breakdown(1_000_000, 10_000, 1_000, 1_000_000, 1.0);
        assert!(b.compute_pj > 0.0 && b.sram_pj > 0.0 && b.dram_pj > 0.0 && b.leakage_pj > 0.0);
        assert!(
            (b.total_pj() - (b.compute_pj + b.sram_pj + b.dram_pj + b.leakage_pj)).abs() < 1e-9
        );
    }

    #[test]
    fn fewer_macs_means_less_compute_energy() {
        let e = EnergyModel::asic_32nm();
        let dense = e.breakdown(10_000_000, 0, 0, 0, 1.0);
        let sparse = e.breakdown(2_000_000, 0, 0, 0, 1.0);
        assert!((dense.compute_pj / sparse.compute_pj - 5.0).abs() < 1e-9);
    }

    #[test]
    fn overclocking_trades_energy_for_latency() {
        let e = EnergyModel::asic_32nm();
        // Nominal point is exactly neutral — the paper's 1 GHz designs are
        // untouched by the DVFS model.
        assert!((EnergyModel::voltage_factor(1.0) - 1.0).abs() < 1e-12);
        let base = e.breakdown(1_000_000, 10_000, 1_000, 1_000_000, 1.0);
        let fast = e.breakdown(1_000_000, 10_000, 1_000, 1_000_000, 1.5);
        // Higher clock → higher voltage → more dynamic energy per op...
        assert!(fast.compute_pj > base.compute_pj);
        assert!(fast.sram_pj > base.sram_pj);
        // ...but DRAM is on its own rail and leakage integrates over a
        // shorter runtime.
        assert!((fast.dram_pj - base.dram_pj).abs() < 1e-12);
        assert!(fast.leakage_pj < base.leakage_pj);
    }

    #[test]
    fn add_combines_breakdowns() {
        let a = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            dram_pj: 3.0,
            leakage_pj: 4.0,
        };
        let b = a.add(&a);
        assert_eq!(b.total_pj(), 20.0);
    }
}
