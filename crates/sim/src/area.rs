//! Silicon area model for accelerator components.

use serde::{Deserialize, Serialize};

/// Per-component area constants (mm², 32 nm-class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one int8 MAC processing element (including its register file
    /// slice), mm².
    pub pe_mm2: f64,
    /// SRAM area per KiB, mm².
    pub sram_per_kib_mm2: f64,
    /// Fixed control/NoC overhead, mm².
    pub control_mm2: f64,
}

impl AreaModel {
    /// 32 nm-class constants.
    #[must_use]
    pub fn asic_32nm() -> Self {
        Self {
            pe_mm2: 0.0012,
            sram_per_kib_mm2: 0.012,
            control_mm2: 0.35,
        }
    }

    /// Area of a PE array with the given number of processing elements.
    #[must_use]
    pub fn pe_array_mm2(&self, num_pes: usize) -> f64 {
        self.pe_mm2 * num_pes as f64
    }

    /// Area of SRAM buffers totalling `kib` KiB.
    #[must_use]
    pub fn sram_mm2(&self, kib: u64) -> f64 {
        self.sram_per_kib_mm2 * kib as f64
    }

    /// Area of the dense datapath of an accelerator instance — PE array plus
    /// SRAM plus fixed control — before any sparsity-support hardware.
    ///
    /// This is the quantity every design point of a configuration sweep
    /// queries; sparsity-specific additions (RGU/GSU, sorters, caches) are
    /// layered on top by the reporting layer.
    #[must_use]
    pub fn datapath_mm2(&self, num_pes: usize, sram_kib: u64) -> f64 {
        self.pe_array_mm2(num_pes) + self.sram_mm2(sram_kib) + self.control_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_pe_count() {
        let a = AreaModel::asic_32nm();
        assert!((a.pe_array_mm2(4096) - 16.0 * a.pe_array_mm2(256)).abs() < 1e-9);
    }

    #[test]
    fn sram_area_scales_with_capacity() {
        let a = AreaModel::asic_32nm();
        assert!(a.sram_mm2(512) > a.sram_mm2(64));
    }

    #[test]
    fn datapath_sums_components() {
        let a = AreaModel::asic_32nm();
        let total = a.datapath_mm2(4096, 480);
        assert!((total - (a.pe_array_mm2(4096) + a.sram_mm2(480) + a.control_mm2)).abs() < 1e-12);
    }
}
