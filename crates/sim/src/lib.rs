//! # spade-sim
//!
//! Cycle-level hardware-simulation substrate for the SPADE reproduction:
//! DRAM timing/energy (a Ramulator substitute), SRAM energy/area (a CACTI
//! substitute), a direct-mapped cache model (used by the cache-based
//! baselines), and the technology constants shared by every accelerator
//! model in the workspace.
//!
//! All constants approximate a 32 nm-class ASIC at 1 GHz, the paper's
//! implementation technology; they are documented where defined and only
//! *relative* comparisons between configurations are meaningful.
//!
//! ## Example
//!
//! ```
//! use spade_sim::{DramModel, EnergyModel};
//!
//! let mut dram = DramModel::lpddr4();
//! dram.read_sequential(4096);
//! assert!(dram.stats().total_bytes == 4096);
//!
//! let e = EnergyModel::asic_32nm();
//! assert!(e.mac_energy_pj() < e.dram_energy_per_byte_pj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod cache;
pub mod dram;
pub mod energy;
pub mod sram;

pub use area::AreaModel;
pub use cache::{CacheStats, DirectMappedCache};
pub use dram::{DramModel, DramStats};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use sram::SramModel;
