//! Symmetric int8 quantization of pillar features.
//!
//! The paper's sparse models use 8-bit multiplication with 32-bit
//! accumulation (Table I). This module provides the quantization parameters
//! and a quantized view of a [`CprTensor`], used both by the functional
//! sparse-convolution kernels and by the accelerator model (the MXU operates
//! on int8 operands and int32 partial sums).

use crate::cpr::CprTensor;
use serde::{Deserialize, Serialize};

/// Symmetric per-tensor quantization parameters: `real = scale * int8`.
///
/// # Example
///
/// ```
/// use spade_tensor::QuantParams;
///
/// let q = QuantParams::from_abs_max(6.35);
/// let code = q.quantize(3.175);
/// assert!((q.dequantize(code) - 3.175).abs() < q.scale());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Maximum representable int8 magnitude.
    pub const QMAX: i32 = 127;

    /// Creates parameters with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    #[must_use]
    pub fn new(scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be positive and finite, got {scale}"
        );
        Self { scale }
    }

    /// Derives parameters so that `abs_max` maps to the largest int8 code.
    ///
    /// A zero or non-finite `abs_max` falls back to a scale of 1.
    #[must_use]
    pub fn from_abs_max(abs_max: f32) -> Self {
        if !abs_max.is_finite() || abs_max <= 0.0 {
            return Self { scale: 1.0 };
        }
        Self {
            scale: abs_max / Self::QMAX as f32,
        }
    }

    /// Derives parameters from the absolute maximum of a data slice.
    #[must_use]
    pub fn from_data(data: &[f32]) -> Self {
        let abs_max = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self::from_abs_max(abs_max)
    }

    /// The quantization step size.
    #[must_use]
    pub const fn scale(self) -> f32 {
        self.scale
    }

    /// Quantizes a real value to int8 (rounded, saturated).
    #[must_use]
    pub fn quantize(self, value: f32) -> i8 {
        let q = (value / self.scale).round();
        q.clamp(-(Self::QMAX as f32), Self::QMAX as f32) as i8
    }

    /// Dequantizes an int8 code back to a real value.
    #[must_use]
    pub fn dequantize(self, code: i8) -> f32 {
        f32::from(code) * self.scale
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

/// An int8-quantized copy of a [`CprTensor`]'s feature data.
///
/// The coordinate structure is shared with the source tensor (same CPR
/// ordering); only the channel payload is quantized. The accelerator model
/// consumes this representation when counting multiply-accumulate operations
/// and SRAM/DRAM traffic in bytes.
///
/// # Example
///
/// ```
/// use spade_tensor::{CprTensor, GridShape, PillarCoord, QuantizedCprTensor};
///
/// let t = CprTensor::from_entries(
///     GridShape::new(2, 2),
///     2,
///     vec![(PillarCoord::new(0, 0), vec![1.0, -2.0])],
/// ).unwrap();
/// let q = QuantizedCprTensor::quantize(&t);
/// assert_eq!(q.num_active(), 1);
/// let back = q.dequantize();
/// assert!((back.features(0)[1] + 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedCprTensor {
    params: QuantParams,
    channels: usize,
    grid: crate::GridShape,
    coords: Vec<crate::PillarCoord>,
    codes: Vec<i8>,
}

impl QuantizedCprTensor {
    /// Quantizes the feature data of a CPR tensor with per-tensor symmetric
    /// int8 parameters derived from its absolute maximum.
    #[must_use]
    pub fn quantize(tensor: &CprTensor) -> Self {
        let params = QuantParams::from_data(tensor.feature_data());
        Self::quantize_with(tensor, params)
    }

    /// Quantizes with explicit parameters.
    #[must_use]
    pub fn quantize_with(tensor: &CprTensor, params: QuantParams) -> Self {
        let codes = tensor
            .feature_data()
            .iter()
            .map(|&v| params.quantize(v))
            .collect();
        Self {
            params,
            channels: tensor.channels(),
            grid: tensor.grid(),
            coords: tensor.coords(),
            codes,
        }
    }

    /// Quantization parameters in use.
    #[must_use]
    pub const fn params(&self) -> QuantParams {
        self.params
    }

    /// Number of active pillars.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.coords.len()
    }

    /// Channels per pillar.
    #[must_use]
    pub const fn channels(&self) -> usize {
        self.channels
    }

    /// Active pillar coordinates (CPR order).
    #[must_use]
    pub fn coords(&self) -> &[crate::PillarCoord] {
        &self.coords
    }

    /// Int8 codes of the `i`-th pillar.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_active()`.
    #[must_use]
    pub fn codes(&self, i: usize) -> &[i8] {
        assert!(i < self.num_active(), "pillar index {i} out of range");
        &self.codes[i * self.channels..(i + 1) * self.channels]
    }

    /// Total payload size in bytes (one byte per channel element).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Reconstructs a floating-point CPR tensor (lossy).
    #[must_use]
    pub fn dequantize(&self) -> CprTensor {
        let entries = self
            .coords
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    c,
                    self.codes(i)
                        .iter()
                        .map(|&q| self.params.dequantize(q))
                        .collect(),
                )
            })
            .collect();
        CprTensor::from_entries(self.grid, self.channels, entries)
            .expect("coordinates come from a valid CPR tensor")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridShape, PillarCoord};

    #[test]
    fn quantize_round_trip_within_one_step() {
        let q = QuantParams::from_abs_max(10.0);
        for v in [-10.0f32, -3.3, 0.0, 0.05, 9.99] {
            let code = q.quantize(v);
            assert!((q.dequantize(code) - v).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantParams::from_abs_max(1.0);
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -127);
    }

    #[test]
    fn from_data_handles_all_zero() {
        let q = QuantParams::from_data(&[0.0, 0.0]);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_rejects_zero_scale() {
        let _ = QuantParams::new(0.0);
    }

    #[test]
    fn quantized_tensor_preserves_structure() {
        let t = CprTensor::from_entries(
            GridShape::new(4, 4),
            3,
            vec![
                (PillarCoord::new(0, 0), vec![0.5, -1.0, 2.0]),
                (PillarCoord::new(3, 3), vec![-2.0, 0.0, 1.5]),
            ],
        )
        .unwrap();
        let q = QuantizedCprTensor::quantize(&t);
        assert_eq!(q.num_active(), 2);
        assert_eq!(q.channels(), 3);
        assert_eq!(q.payload_bytes(), 6);
        assert_eq!(q.coords()[1], PillarCoord::new(3, 3));
        let back = q.dequantize();
        assert_eq!(back.num_active(), 2);
        for i in 0..2 {
            for (a, b) in back.features(i).iter().zip(t.features(i)) {
                assert!((a - b).abs() < q.params().scale());
            }
        }
    }
}
