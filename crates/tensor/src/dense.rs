//! Dense `C × H × W` BEV pseudo-images.

use crate::coord::{GridShape, PillarCoord};
use crate::cpr::CprTensor;
use crate::error::TensorError;
use serde::{Deserialize, Serialize};

/// A dense channel-major BEV tensor (`C × H × W`), the "pseudo-image" produced
/// by densifying sparse pillars in the original PointPillars pipeline.
///
/// # Example
///
/// ```
/// use spade_tensor::{DenseTensor, GridShape};
///
/// let mut d = DenseTensor::zeros(2, GridShape::new(3, 3));
/// d.set(1, 2, 2, 5.0);
/// assert_eq!(d.get(1, 2, 2), 5.0);
/// assert_eq!(d.num_active_pillars(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseTensor {
    channels: usize,
    grid: GridShape,
    data: Vec<f32>,
}

impl DenseTensor {
    /// Creates a zero-filled tensor.
    #[must_use]
    pub fn zeros(channels: usize, grid: GridShape) -> Self {
        Self {
            channels,
            grid,
            data: vec![0.0; channels * grid.num_cells()],
        }
    }

    /// Number of channels.
    #[must_use]
    pub const fn channels(&self) -> usize {
        self.channels
    }

    /// BEV grid shape.
    #[must_use]
    pub const fn grid(&self) -> GridShape {
        self.grid
    }

    /// Shape as `(channels, height, width)`.
    #[must_use]
    pub const fn shape(&self) -> (usize, u32, u32) {
        (self.channels, self.grid.height, self.grid.width)
    }

    fn index(&self, ch: usize, row: u32, col: u32) -> usize {
        debug_assert!(ch < self.channels && row < self.grid.height && col < self.grid.width);
        (ch * self.grid.height as usize + row as usize) * self.grid.width as usize + col as usize
    }

    /// Reads the value at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn get(&self, ch: usize, row: u32, col: u32) -> f32 {
        assert!(
            ch < self.channels && row < self.grid.height && col < self.grid.width,
            "dense tensor index ({ch}, {row}, {col}) out of bounds for shape {:?}",
            self.shape()
        );
        self.data[self.index(ch, row, col)]
    }

    /// Writes the value at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn set(&mut self, ch: usize, row: u32, col: u32, value: f32) {
        assert!(
            ch < self.channels && row < self.grid.height && col < self.grid.width,
            "dense tensor index ({ch}, {row}, {col}) out of bounds for shape {:?}",
            self.shape()
        );
        let idx = self.index(ch, row, col);
        self.data[idx] = value;
    }

    /// Adds `value` to the element at `(channel, row, col)`.
    pub fn add(&mut self, ch: usize, row: u32, col: u32, value: f32) {
        let idx = self.index(ch, row, col);
        self.data[idx] += value;
    }

    /// Returns the channel vector at the given BEV cell.
    #[must_use]
    pub fn pillar_vector(&self, coord: PillarCoord) -> Vec<f32> {
        (0..self.channels)
            .map(|ch| self.get(ch, coord.row, coord.col))
            .collect()
    }

    /// Returns `true` if any channel at the given cell is non-zero.
    #[must_use]
    pub fn is_active(&self, coord: PillarCoord) -> bool {
        (0..self.channels).any(|ch| self.get(ch, coord.row, coord.col) != 0.0)
    }

    /// Number of BEV cells with at least one non-zero channel.
    #[must_use]
    pub fn num_active_pillars(&self) -> usize {
        let mut n = 0;
        for row in 0..self.grid.height {
            for col in 0..self.grid.width {
                if self.is_active(PillarCoord::new(row, col)) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Fraction of scalar elements that are exactly zero (element-wise
    /// sparsity, as exploited by conventional sparse Conv2D accelerators).
    #[must_use]
    pub fn element_sparsity(&self) -> f64 {
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Converts back to a CPR tensor, keeping only active pillars.
    #[must_use]
    pub fn to_cpr(&self) -> CprTensor {
        let mut entries = Vec::new();
        for row in 0..self.grid.height {
            for col in 0..self.grid.width {
                let c = PillarCoord::new(row, col);
                if self.is_active(c) {
                    entries.push((c, self.pillar_vector(c)));
                }
            }
        }
        CprTensor::from_entries(self.grid, self.channels, entries)
            .expect("coordinates scanned in row-major order are valid CPR input")
    }

    /// Element-wise sum with another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(out)
    }

    /// Applies ReLU in place (clamps negative values to zero).
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Raw data slice in `C × H × W` order.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_active_pillars() {
        let d = DenseTensor::zeros(4, GridShape::new(6, 6));
        assert_eq!(d.num_active_pillars(), 0);
        assert_eq!(d.element_sparsity(), 1.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut d = DenseTensor::zeros(3, GridShape::new(4, 5));
        d.set(2, 3, 4, -1.5);
        assert_eq!(d.get(2, 3, 4), -1.5);
        d.add(2, 3, 4, 0.5);
        assert_eq!(d.get(2, 3, 4), -1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let d = DenseTensor::zeros(1, GridShape::new(2, 2));
        let _ = d.get(0, 2, 0);
    }

    #[test]
    fn cpr_round_trip() {
        let grid = GridShape::new(5, 5);
        let mut d = DenseTensor::zeros(2, grid);
        d.set(0, 1, 1, 1.0);
        d.set(1, 1, 1, 2.0);
        d.set(0, 4, 0, 3.0);
        let cpr = d.to_cpr();
        assert_eq!(cpr.num_active(), 2);
        assert_eq!(cpr.to_dense(), d);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut d = DenseTensor::zeros(1, GridShape::new(2, 2));
        d.set(0, 0, 0, -3.0);
        d.set(0, 1, 1, 2.0);
        d.relu_in_place();
        assert_eq!(d.get(0, 0, 0), 0.0);
        assert_eq!(d.get(0, 1, 1), 2.0);
    }

    #[test]
    fn try_add_checks_shape() {
        let a = DenseTensor::zeros(1, GridShape::new(2, 2));
        let b = DenseTensor::zeros(2, GridShape::new(2, 2));
        assert!(a.try_add(&b).is_err());
        let c = a.try_add(&a).unwrap();
        assert_eq!(c.shape(), a.shape());
    }

    #[test]
    fn pillar_vector_and_is_active() {
        let mut d = DenseTensor::zeros(3, GridShape::new(3, 3));
        d.set(1, 2, 0, 7.0);
        let c = PillarCoord::new(2, 0);
        assert!(d.is_active(c));
        assert_eq!(d.pillar_vector(c), vec![0.0, 7.0, 0.0]);
        assert!(!d.is_active(PillarCoord::new(0, 0)));
    }

    #[test]
    fn element_sparsity_counts_zeros() {
        let mut d = DenseTensor::zeros(1, GridShape::new(2, 2));
        d.set(0, 0, 0, 1.0);
        assert!((d.element_sparsity() - 0.75).abs() < 1e-12);
    }
}
