//! Compressed-pillar-row (CPR) sparse tensors.
//!
//! CPR is the sparse encoding SPADE's hardware consumes: active pillar
//! coordinates are stored row by row with strictly increasing column indices
//! inside each row (analogous to CSR for sparse matrices), and each active
//! pillar carries a dense vector of `C` channel elements. The monotone
//! coordinate ordering is the invariant the Rule Generation Unit relies on to
//! produce input-output mappings in `O(P)` time without hashing or sorting.

use crate::coord::{GridShape, PillarCoord};
use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::stats::SparsityStats;
use serde::{Deserialize, Serialize};

/// A vector-sparse BEV tensor in compressed-pillar-row (CPR) format.
///
/// Invariants (maintained by [`CprBuilder`] and all constructors):
///
/// * coordinates are sorted row-major and are unique;
/// * `row_ptr` has `height + 1` entries delimiting each grid row's pillars;
/// * every active pillar stores exactly `channels` feature values, laid out
///   contiguously in `features`.
///
/// # Example
///
/// ```
/// use spade_tensor::{CprTensor, GridShape, PillarCoord};
///
/// let t = CprTensor::from_coords(
///     GridShape::new(8, 8),
///     4,
///     &[PillarCoord::new(1, 2), PillarCoord::new(3, 0)],
/// );
/// assert_eq!(t.num_active(), 2);
/// assert_eq!(t.pillars_in_row(1).len(), 1);
/// assert_eq!(t.pillars_in_row(2).len(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CprTensor {
    grid: GridShape,
    channels: usize,
    /// Row pointer array of length `grid.height + 1`.
    row_ptr: Vec<usize>,
    /// Column index of each active pillar, grouped by row.
    cols: Vec<u32>,
    /// Channel data, `num_active * channels` values.
    features: Vec<f32>,
}

impl CprTensor {
    /// Returns a builder that accepts pillars in CPR (row-major) order.
    #[must_use]
    pub fn builder(grid: GridShape, channels: usize) -> CprBuilder {
        CprBuilder::new(grid, channels)
    }

    /// Builds a tensor from a list of coordinates (in any order), filling all
    /// channel values with `1.0`. Duplicate coordinates are collapsed.
    ///
    /// This is the common entry point for workload generation where only the
    /// *pattern* of active pillars matters. Inputs that are already strictly
    /// CPR-sorted and in bounds skip the sort/dedup pass entirely; callers
    /// that can *guarantee* that ordering should use
    /// [`CprTensor::from_sorted_coords`] directly.
    #[must_use]
    pub fn from_coords(grid: GridShape, channels: usize, coords: &[PillarCoord]) -> Self {
        let cpr_ready =
            coords.windows(2).all(|w| w[0] < w[1]) && coords.iter().all(|c| c.in_bounds(grid));
        if cpr_ready {
            return Self::from_sorted_coords(grid, channels, coords);
        }
        let mut sorted: Vec<PillarCoord> = coords
            .iter()
            .copied()
            .filter(|c| c.in_bounds(grid))
            .collect();
        sorted.sort();
        sorted.dedup();
        Self::from_sorted_coords(grid, channels, &sorted)
    }

    /// Builds a pattern-only tensor (all features `1.0`) from coordinates
    /// that are **already** strictly CPR-sorted (row-major, unique) and in
    /// bounds — the fast path for data that is CPR-ordered by construction,
    /// such as rule-generation outputs or pillarised frames.
    ///
    /// Skips the sort, dedup, and per-pillar feature allocations of
    /// [`CprTensor::from_coords`]; the ordering contract is checked with
    /// debug assertions only.
    #[must_use]
    pub fn from_sorted_coords(grid: GridShape, channels: usize, coords: &[PillarCoord]) -> Self {
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "from_sorted_coords requires strictly CPR-sorted coordinates"
        );
        debug_assert!(
            coords.iter().all(|c| c.in_bounds(grid)),
            "from_sorted_coords requires in-bounds coordinates"
        );
        let mut row_ptr = vec![0usize; grid.height as usize + 1];
        for c in coords {
            row_ptr[c.row as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        CprTensor {
            grid,
            channels,
            row_ptr,
            cols: coords.iter().map(|c| c.col).collect(),
            features: vec![1.0; coords.len() * channels],
        }
    }

    /// Builds a tensor from `(coordinate, feature-vector)` pairs given in any
    /// order.
    ///
    /// # Errors
    ///
    /// Returns an error if a coordinate is out of bounds, duplicated, or a
    /// feature vector has the wrong number of channels.
    pub fn from_entries(
        grid: GridShape,
        channels: usize,
        entries: Vec<(PillarCoord, Vec<f32>)>,
    ) -> Result<Self, TensorError> {
        let mut entries = entries;
        entries.sort_by_key(|(c, _)| *c);
        let mut builder = CprBuilder::new(grid, channels);
        for (coord, feat) in entries {
            builder.push(coord, feat)?;
        }
        Ok(builder.build())
    }

    /// Creates an empty tensor (no active pillars).
    #[must_use]
    pub fn empty(grid: GridShape, channels: usize) -> Self {
        CprBuilder::new(grid, channels).build()
    }

    /// The BEV grid shape.
    #[must_use]
    pub const fn grid(&self) -> GridShape {
        self.grid
    }

    /// Number of channels per pillar.
    #[must_use]
    pub const fn channels(&self) -> usize {
        self.channels
    }

    /// Number of active pillars.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.cols.len()
    }

    /// Fraction of grid cells that are active (`P / (H*W)`).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.num_active() as f64 / self.grid.num_cells() as f64
    }

    /// Vector sparsity: fraction of grid cells that are *inactive*.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.occupancy()
    }

    /// Returns the column indices of active pillars in the given grid row.
    #[must_use]
    pub fn pillars_in_row(&self, row: u32) -> &[u32] {
        if row >= self.grid.height {
            return &[];
        }
        let start = self.row_ptr[row as usize];
        let end = self.row_ptr[row as usize + 1];
        &self.cols[start..end]
    }

    /// Returns the global pillar index range `[start, end)` of the given row.
    #[must_use]
    pub fn row_range(&self, row: u32) -> (usize, usize) {
        if row >= self.grid.height {
            let n = self.num_active();
            return (n, n);
        }
        (self.row_ptr[row as usize], self.row_ptr[row as usize + 1])
    }

    /// Returns the coordinate of the `i`-th active pillar (CPR order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_active()`.
    #[must_use]
    pub fn coord(&self, i: usize) -> PillarCoord {
        assert!(i < self.num_active(), "pillar index {i} out of range");
        // Binary search over row_ptr to find the row containing index i.
        let row = match self.row_ptr.binary_search(&i) {
            Ok(mut r) => {
                // row_ptr may contain repeated values for empty rows; advance
                // to the last row whose start equals i and that is non-empty.
                while r + 1 < self.row_ptr.len() && self.row_ptr[r + 1] == i {
                    r += 1;
                }
                r
            }
            Err(r) => r - 1,
        };
        PillarCoord::new(row as u32, self.cols[i])
    }

    /// Returns the index of the active pillar at `coord`, if it is active.
    #[must_use]
    pub fn index_of(&self, coord: PillarCoord) -> Option<usize> {
        if !coord.in_bounds(self.grid) {
            return None;
        }
        let (start, end) = self.row_range(coord.row);
        self.cols[start..end]
            .binary_search(&coord.col)
            .ok()
            .map(|offset| start + offset)
    }

    /// Returns the feature vector of the `i`-th active pillar.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_active()`.
    #[must_use]
    pub fn features(&self, i: usize) -> &[f32] {
        assert!(i < self.num_active(), "pillar index {i} out of range");
        &self.features[i * self.channels..(i + 1) * self.channels]
    }

    /// Returns all feature data as a flat slice (`num_active * channels`).
    #[must_use]
    pub fn feature_data(&self) -> &[f32] {
        &self.features
    }

    /// Iterates over `(coordinate, feature-slice)` pairs in CPR order.
    pub fn iter(&self) -> impl Iterator<Item = (PillarCoord, &[f32])> + '_ {
        self.iter_coords()
            .enumerate()
            .map(move |(i, c)| (c, self.features(i)))
    }

    /// Iterates over active pillar coordinates in CPR order.
    pub fn iter_coords(&self) -> impl Iterator<Item = PillarCoord> + '_ {
        (0..self.grid.height).flat_map(move |row| {
            let (start, end) = self.row_range(row);
            self.cols[start..end]
                .iter()
                .map(move |&col| PillarCoord::new(row, col))
        })
    }

    /// Collects all active coordinates into a vector (CPR order).
    #[must_use]
    pub fn coords(&self) -> Vec<PillarCoord> {
        self.iter_coords().collect()
    }

    /// L2 magnitude of each pillar's feature vector, in CPR order.
    ///
    /// Used as the importance score for dynamic vector pruning.
    #[must_use]
    pub fn pillar_magnitudes(&self) -> Vec<f32> {
        (0..self.num_active())
            .map(|i| self.features(i).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect()
    }

    /// Densifies into a `C × H × W` pseudo-image.
    #[must_use]
    pub fn to_dense(&self) -> DenseTensor {
        let mut dense = DenseTensor::zeros(self.channels, self.grid);
        for (i, coord) in self.iter_coords().enumerate() {
            for (ch, &v) in self.features(i).iter().enumerate() {
                dense.set(ch, coord.row, coord.col, v);
            }
        }
        dense
    }

    /// Computes sparsity statistics for this tensor.
    #[must_use]
    pub fn stats(&self) -> SparsityStats {
        SparsityStats::from_tensor(self)
    }

    /// Returns a copy retaining only the pillars whose indices are listed in
    /// `keep` (indices refer to CPR order; they may be unsorted).
    #[must_use]
    pub fn select(&self, keep: &[usize]) -> Self {
        let mut keep: Vec<usize> = keep
            .iter()
            .copied()
            .filter(|&i| i < self.num_active())
            .collect();
        keep.sort_unstable();
        keep.dedup();
        let coords = self.coords();
        let mut builder = CprBuilder::new(self.grid, self.channels);
        for &i in &keep {
            builder
                .push(coords[i], self.features(i).to_vec())
                .expect("selected pillars keep CPR order");
        }
        builder.build()
    }

    /// Verifies internal invariants; useful for property-based tests.
    ///
    /// Returns `true` when row pointers are monotone and cover all pillars and
    /// columns are strictly increasing within each row.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        if self.row_ptr.len() != self.grid.height as usize + 1 {
            return false;
        }
        if *self.row_ptr.last().unwrap() != self.cols.len() {
            return false;
        }
        if self.features.len() != self.cols.len() * self.channels {
            return false;
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return false;
            }
        }
        for row in 0..self.grid.height {
            let cols = self.pillars_in_row(row);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return false;
                }
            }
            if cols.iter().any(|&c| c >= self.grid.width) {
                return false;
            }
        }
        true
    }
}

/// Incremental builder for [`CprTensor`] that enforces CPR ordering.
///
/// # Example
///
/// ```
/// use spade_tensor::{CprTensor, GridShape, PillarCoord};
/// let mut b = CprTensor::builder(GridShape::new(4, 4), 1);
/// b.push(PillarCoord::new(0, 0), vec![1.0]).unwrap();
/// assert!(b.push(PillarCoord::new(0, 0), vec![2.0]).is_err()); // duplicate
/// ```
#[derive(Debug, Clone)]
pub struct CprBuilder {
    grid: GridShape,
    channels: usize,
    coords: Vec<PillarCoord>,
    features: Vec<f32>,
}

impl CprBuilder {
    /// Creates a new builder for the given grid and channel count.
    #[must_use]
    pub fn new(grid: GridShape, channels: usize) -> Self {
        Self {
            grid,
            channels,
            coords: Vec::new(),
            features: Vec::new(),
        }
    }

    /// Appends an active pillar. Pillars must be pushed in row-major order.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate is out of bounds, out of order,
    /// duplicated, or the feature vector length does not match the channel
    /// count.
    pub fn push(&mut self, coord: PillarCoord, features: Vec<f32>) -> Result<(), TensorError> {
        if !coord.in_bounds(self.grid) {
            return Err(TensorError::CoordOutOfBounds {
                row: coord.row,
                col: coord.col,
                height: self.grid.height,
                width: self.grid.width,
            });
        }
        if features.len() != self.channels {
            return Err(TensorError::ChannelMismatch {
                expected: self.channels,
                found: features.len(),
            });
        }
        if let Some(&prev) = self.coords.last() {
            if coord == prev {
                return Err(TensorError::DuplicateCoord {
                    row: coord.row,
                    col: coord.col,
                });
            }
            if coord < prev {
                return Err(TensorError::OutOfOrder {
                    previous: (prev.row, prev.col),
                    current: (coord.row, coord.col),
                });
            }
        }
        self.coords.push(coord);
        self.features.extend_from_slice(&features);
        Ok(())
    }

    /// Number of pillars pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Returns `true` if no pillars have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Finalizes the tensor.
    #[must_use]
    pub fn build(self) -> CprTensor {
        let mut row_ptr = vec![0usize; self.grid.height as usize + 1];
        for c in &self.coords {
            row_ptr[c.row as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let cols = self.coords.iter().map(|c| c.col).collect();
        CprTensor {
            grid: self.grid,
            channels: self.channels,
            row_ptr,
            cols,
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tensor() -> CprTensor {
        CprTensor::from_entries(
            GridShape::new(4, 5),
            2,
            vec![
                (PillarCoord::new(0, 1), vec![1.0, 2.0]),
                (PillarCoord::new(2, 0), vec![3.0, 4.0]),
                (PillarCoord::new(2, 4), vec![5.0, 6.0]),
                (PillarCoord::new(3, 2), vec![7.0, 8.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builder_enforces_order_and_bounds() {
        let grid = GridShape::new(4, 4);
        let mut b = CprBuilder::new(grid, 1);
        b.push(PillarCoord::new(1, 2), vec![1.0]).unwrap();
        assert!(matches!(
            b.push(PillarCoord::new(0, 0), vec![1.0]),
            Err(TensorError::OutOfOrder { .. })
        ));
        assert!(matches!(
            b.push(PillarCoord::new(1, 2), vec![1.0]),
            Err(TensorError::DuplicateCoord { .. })
        ));
        assert!(matches!(
            b.push(PillarCoord::new(9, 0), vec![1.0]),
            Err(TensorError::CoordOutOfBounds { .. })
        ));
        assert!(matches!(
            b.push(PillarCoord::new(2, 0), vec![1.0, 2.0]),
            Err(TensorError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn row_ranges_and_lookup() {
        let t = sample_tensor();
        assert_eq!(t.num_active(), 4);
        assert_eq!(t.pillars_in_row(0), &[1]);
        assert_eq!(t.pillars_in_row(1), &[] as &[u32]);
        assert_eq!(t.pillars_in_row(2), &[0, 4]);
        assert_eq!(t.pillars_in_row(3), &[2]);
        assert_eq!(t.index_of(PillarCoord::new(2, 4)), Some(2));
        assert_eq!(t.index_of(PillarCoord::new(2, 3)), None);
        assert_eq!(t.index_of(PillarCoord::new(99, 0)), None);
    }

    #[test]
    fn coord_and_features_round_trip() {
        let t = sample_tensor();
        for i in 0..t.num_active() {
            let c = t.coord(i);
            assert_eq!(t.index_of(c), Some(i));
        }
        assert_eq!(t.features(2), &[5.0, 6.0]);
    }

    #[test]
    fn dense_round_trip() {
        let t = sample_tensor();
        let d = t.to_dense();
        assert_eq!(d.get(0, 2, 4), 5.0);
        assert_eq!(d.get(1, 3, 2), 8.0);
        assert_eq!(d.get(0, 1, 1), 0.0);
        // Count non-zero vectors in the dense image.
        let mut active = 0;
        for r in 0..4 {
            for c in 0..5 {
                if (0..2).any(|ch| d.get(ch, r, c) != 0.0) {
                    active += 1;
                }
            }
        }
        assert_eq!(active, t.num_active());
    }

    #[test]
    fn occupancy_and_sparsity() {
        let t = sample_tensor();
        assert!((t.occupancy() - 4.0 / 20.0).abs() < 1e-12);
        assert!((t.sparsity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn from_sorted_coords_matches_from_coords() {
        let grid = GridShape::new(6, 6);
        let coords = [
            PillarCoord::new(0, 2),
            PillarCoord::new(1, 0),
            PillarCoord::new(1, 5),
            PillarCoord::new(4, 4),
        ];
        let fast = CprTensor::from_sorted_coords(grid, 3, &coords);
        let slow = CprTensor::from_coords(grid, 3, &coords);
        assert_eq!(fast, slow);
        assert!(fast.check_invariants());
        assert_eq!(fast.features(2), &[1.0, 1.0, 1.0]);
        // Empty input round-trips too.
        assert_eq!(
            CprTensor::from_sorted_coords(grid, 2, &[]),
            CprTensor::empty(grid, 2)
        );
    }

    #[test]
    fn from_coords_dedups_and_filters() {
        let grid = GridShape::new(4, 4);
        let t = CprTensor::from_coords(
            grid,
            3,
            &[
                PillarCoord::new(3, 3),
                PillarCoord::new(1, 1),
                PillarCoord::new(1, 1),
                PillarCoord::new(10, 10), // out of bounds, dropped
            ],
        );
        assert_eq!(t.num_active(), 2);
        assert!(t.check_invariants());
    }

    #[test]
    fn select_keeps_subset() {
        let t = sample_tensor();
        let s = t.select(&[3, 0, 3, 99]);
        assert_eq!(s.num_active(), 2);
        assert_eq!(
            s.coords(),
            vec![PillarCoord::new(0, 1), PillarCoord::new(3, 2)]
        );
        assert_eq!(s.features(1), &[7.0, 8.0]);
        assert!(s.check_invariants());
    }

    #[test]
    fn magnitudes_match_l2_norm() {
        let t = sample_tensor();
        let mags = t.pillar_magnitudes();
        assert!((mags[0] - (1.0f32 + 4.0).sqrt()).abs() < 1e-6);
        assert!((mags[3] - (49.0f32 + 64.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_tensor_is_consistent() {
        let t = CprTensor::empty(GridShape::new(8, 8), 16);
        assert_eq!(t.num_active(), 0);
        assert_eq!(t.sparsity(), 1.0);
        assert!(t.check_invariants());
        assert_eq!(t.coords().len(), 0);
    }

    #[test]
    fn invariants_hold_for_sample() {
        assert!(sample_tensor().check_invariants());
    }

    #[test]
    fn iter_pairs_coords_with_features() {
        let t = sample_tensor();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1].0, PillarCoord::new(2, 0));
        assert_eq!(pairs[1].1, &[3.0, 4.0]);
    }
}
