//! Pillar coordinates and BEV grid shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A pillar coordinate on the bird's-eye-view (BEV) grid.
///
/// Coordinates are `(row, col)` pairs; the row corresponds to the X (forward)
/// binning of the point cloud and the column to the Y (lateral) binning, as in
/// PointPillars. Ordering is row-major (row first, then column), which is the
/// ordering required by the compressed-pillar-row (CPR) format and exploited
/// by SPADE's rule generation.
///
/// # Example
///
/// ```
/// use spade_tensor::PillarCoord;
///
/// let a = PillarCoord::new(1, 5);
/// let b = PillarCoord::new(2, 0);
/// assert!(a < b, "row-major ordering: row 1 precedes row 2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PillarCoord {
    /// Row index on the BEV grid (X binning).
    pub row: u32,
    /// Column index on the BEV grid (Y binning).
    pub col: u32,
}

impl PillarCoord {
    /// Creates a new pillar coordinate.
    #[must_use]
    pub const fn new(row: u32, col: u32) -> Self {
        Self { row, col }
    }

    /// Returns the linear (row-major) index of this coordinate on a grid of
    /// the given shape.
    ///
    /// # Example
    ///
    /// ```
    /// use spade_tensor::{GridShape, PillarCoord};
    /// let g = GridShape::new(4, 8);
    /// assert_eq!(PillarCoord::new(2, 3).linear_index(g), 2 * 8 + 3);
    /// ```
    #[must_use]
    pub const fn linear_index(self, grid: GridShape) -> usize {
        self.row as usize * grid.width as usize + self.col as usize
    }

    /// Returns `true` if the coordinate lies inside the given grid.
    #[must_use]
    pub const fn in_bounds(self, grid: GridShape) -> bool {
        self.row < grid.height && self.col < grid.width
    }

    /// Offsets the coordinate by a signed `(d_row, d_col)` pair, returning
    /// `None` if the result falls outside the grid.
    ///
    /// # Example
    ///
    /// ```
    /// use spade_tensor::{GridShape, PillarCoord};
    /// let g = GridShape::new(4, 4);
    /// assert_eq!(
    ///     PillarCoord::new(0, 0).offset(1, 1, g),
    ///     Some(PillarCoord::new(1, 1))
    /// );
    /// assert_eq!(PillarCoord::new(0, 0).offset(-1, 0, g), None);
    /// ```
    #[must_use]
    pub fn offset(self, d_row: i32, d_col: i32, grid: GridShape) -> Option<Self> {
        let row = i64::from(self.row) + i64::from(d_row);
        let col = i64::from(self.col) + i64::from(d_col);
        if row < 0 || col < 0 {
            return None;
        }
        let candidate = Self::new(row as u32, col as u32);
        candidate.in_bounds(grid).then_some(candidate)
    }
}

impl fmt::Display for PillarCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

impl From<(u32, u32)> for PillarCoord {
    fn from((row, col): (u32, u32)) -> Self {
        Self::new(row, col)
    }
}

/// The shape of a BEV grid: `height` rows by `width` columns.
///
/// # Example
///
/// ```
/// use spade_tensor::GridShape;
/// let g = GridShape::new(496, 432); // KITTI-like PointPillars grid
/// assert_eq!(g.num_cells(), 496 * 432);
/// assert_eq!(g.downsample(2), GridShape::new(248, 216));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridShape {
    /// Number of rows.
    pub height: u32,
    /// Number of columns.
    pub width: u32,
}

impl GridShape {
    /// Creates a new grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(height: u32, width: u32) -> Self {
        assert!(height > 0 && width > 0, "grid dimensions must be non-zero");
        Self { height, width }
    }

    /// Total number of cells on the grid.
    #[must_use]
    pub const fn num_cells(self) -> usize {
        self.height as usize * self.width as usize
    }

    /// Returns the grid obtained by downsampling with the given stride
    /// (ceiling division), as a strided convolution does.
    #[must_use]
    pub fn downsample(self, stride: u32) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        Self {
            height: self.height.div_ceil(stride),
            width: self.width.div_ceil(stride),
        }
    }

    /// Returns the grid obtained by upsampling with the given factor, as a
    /// deconvolution (transposed convolution) does.
    #[must_use]
    pub fn upsample(self, factor: u32) -> Self {
        assert!(factor > 0, "factor must be non-zero");
        Self {
            height: self.height * factor,
            width: self.width * factor,
        }
    }

    /// Every cell of the grid as a coordinate list in CPR (row-major) order —
    /// the active set of a fully dense tensor.
    #[must_use]
    pub fn all_cells(self) -> Vec<PillarCoord> {
        let mut v = Vec::with_capacity(self.num_cells());
        for r in 0..self.height {
            for c in 0..self.width {
                v.push(PillarCoord::new(r, c));
            }
        }
        v
    }
}

impl fmt::Display for GridShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_ordering_is_row_major() {
        let mut coords = vec![
            PillarCoord::new(1, 0),
            PillarCoord::new(0, 5),
            PillarCoord::new(0, 1),
            PillarCoord::new(1, 3),
        ];
        coords.sort();
        assert_eq!(
            coords,
            vec![
                PillarCoord::new(0, 1),
                PillarCoord::new(0, 5),
                PillarCoord::new(1, 0),
                PillarCoord::new(1, 3),
            ]
        );
    }

    #[test]
    fn linear_index_round_trip() {
        let grid = GridShape::new(7, 11);
        let mut seen = std::collections::HashSet::new();
        for r in 0..7 {
            for c in 0..11 {
                let idx = PillarCoord::new(r, c).linear_index(grid);
                assert!(idx < grid.num_cells());
                assert!(seen.insert(idx), "linear indices must be unique");
            }
        }
    }

    #[test]
    fn offset_in_and_out_of_bounds() {
        let grid = GridShape::new(3, 3);
        let c = PillarCoord::new(1, 1);
        assert_eq!(c.offset(1, 1, grid), Some(PillarCoord::new(2, 2)));
        assert_eq!(c.offset(-1, -1, grid), Some(PillarCoord::new(0, 0)));
        assert_eq!(c.offset(2, 0, grid), None);
        assert_eq!(c.offset(0, 2, grid), None);
        assert_eq!(PillarCoord::new(0, 0).offset(-1, 0, grid), None);
    }

    #[test]
    fn downsample_rounds_up() {
        assert_eq!(GridShape::new(5, 5).downsample(2), GridShape::new(3, 3));
        assert_eq!(GridShape::new(4, 6).downsample(2), GridShape::new(2, 3));
        assert_eq!(GridShape::new(1, 1).downsample(2), GridShape::new(1, 1));
    }

    #[test]
    fn upsample_multiplies() {
        assert_eq!(GridShape::new(3, 4).upsample(2), GridShape::new(6, 8));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_grid_panics() {
        let _ = GridShape::new(0, 4);
    }

    #[test]
    fn display_impls() {
        assert_eq!(PillarCoord::new(2, 3).to_string(), "(2, 3)");
        assert_eq!(GridShape::new(4, 8).to_string(), "4x8");
    }

    #[test]
    fn coord_from_tuple() {
        let c: PillarCoord = (3u32, 4u32).into();
        assert_eq!(c, PillarCoord::new(3, 4));
    }
}
