//! Error types for tensor construction and conversion.

use std::fmt;

/// Errors produced while constructing or converting tensors.
///
/// # Example
///
/// ```
/// use spade_tensor::{CprTensor, GridShape, PillarCoord, TensorError};
///
/// let mut b = CprTensor::builder(GridShape::new(2, 2), 3);
/// let err = b.push(PillarCoord::new(5, 0), vec![0.0; 3]).unwrap_err();
/// assert!(matches!(err, TensorError::CoordOutOfBounds { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// A pillar coordinate lies outside the grid.
    CoordOutOfBounds {
        /// Offending row index.
        row: u32,
        /// Offending column index.
        col: u32,
        /// Grid height.
        height: u32,
        /// Grid width.
        width: u32,
    },
    /// A channel vector has the wrong number of elements.
    ChannelMismatch {
        /// Number of channels expected by the tensor.
        expected: usize,
        /// Number of channels supplied.
        found: usize,
    },
    /// A pillar was pushed out of CPR order (rows must be non-decreasing and
    /// columns strictly increasing within a row).
    OutOfOrder {
        /// Coordinate of the previously pushed pillar.
        previous: (u32, u32),
        /// Coordinate of the offending pillar.
        current: (u32, u32),
    },
    /// The same coordinate was pushed twice.
    DuplicateCoord {
        /// Duplicated row index.
        row: u32,
        /// Duplicated column index.
        col: u32,
    },
    /// A dense tensor shape mismatch (e.g. in element-wise combination).
    ShapeMismatch {
        /// Left-hand shape `(channels, height, width)`.
        left: (usize, u32, u32),
        /// Right-hand shape `(channels, height, width)`.
        right: (usize, u32, u32),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::CoordOutOfBounds {
                row,
                col,
                height,
                width,
            } => write!(
                f,
                "pillar coordinate ({row}, {col}) is outside the {height}x{width} grid"
            ),
            TensorError::ChannelMismatch { expected, found } => write!(
                f,
                "channel vector has {found} elements but the tensor expects {expected}"
            ),
            TensorError::OutOfOrder { previous, current } => write!(
                f,
                "pillar ({}, {}) pushed after ({}, {}) violates CPR ordering",
                current.0, current.1, previous.0, previous.1
            ),
            TensorError::DuplicateCoord { row, col } => {
                write!(f, "pillar coordinate ({row}, {col}) was pushed twice")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "dense tensor shapes {left:?} and {right:?} do not match")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = TensorError::CoordOutOfBounds {
            row: 9,
            col: 3,
            height: 4,
            width: 4,
        };
        assert_eq!(
            e.to_string(),
            "pillar coordinate (9, 3) is outside the 4x4 grid"
        );
    }

    #[test]
    fn display_channel_mismatch() {
        let e = TensorError::ChannelMismatch {
            expected: 64,
            found: 32,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
