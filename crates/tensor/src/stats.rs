//! Sparsity statistics over pillar tensors.

use crate::cpr::CprTensor;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sparse pillar tensor's activity pattern.
///
/// These statistics drive both the evaluation (Table I sparsity columns,
/// Fig. 2(d–f) IOPR curves) and the accelerator's dataflow configuration
/// (active-tile sizing in the Gather-Scatter Unit).
///
/// # Example
///
/// ```
/// use spade_tensor::{CprTensor, GridShape, PillarCoord, SparsityStats};
///
/// let t = CprTensor::from_coords(
///     GridShape::new(4, 4),
///     8,
///     &[PillarCoord::new(0, 0), PillarCoord::new(0, 1), PillarCoord::new(2, 2)],
/// );
/// let s = SparsityStats::from_tensor(&t);
/// assert_eq!(s.active_pillars, 3);
/// assert_eq!(s.max_row_occupancy, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityStats {
    /// Number of active pillars.
    pub active_pillars: usize,
    /// Total grid cells.
    pub total_cells: usize,
    /// Fraction of cells that are active.
    pub occupancy: f64,
    /// Fraction of cells that are inactive (vector sparsity).
    pub sparsity: f64,
    /// Number of grid rows containing at least one active pillar.
    pub non_empty_rows: usize,
    /// Largest number of active pillars in any single row.
    pub max_row_occupancy: usize,
    /// Mean number of active pillars per non-empty row.
    pub mean_row_occupancy: f64,
    /// Mean nearest-neighbour column gap within rows (clustering indicator;
    /// small gaps mean pillars are clustered, as around objects).
    pub mean_column_gap: f64,
}

impl SparsityStats {
    /// Computes statistics from a CPR tensor.
    #[must_use]
    pub fn from_tensor(tensor: &CprTensor) -> Self {
        let grid = tensor.grid();
        let mut non_empty_rows = 0usize;
        let mut max_row = 0usize;
        let mut gap_sum = 0f64;
        let mut gap_count = 0usize;
        for row in 0..grid.height {
            let cols = tensor.pillars_in_row(row);
            if !cols.is_empty() {
                non_empty_rows += 1;
                max_row = max_row.max(cols.len());
            }
            for w in cols.windows(2) {
                gap_sum += f64::from(w[1] - w[0]);
                gap_count += 1;
            }
        }
        let active = tensor.num_active();
        Self {
            active_pillars: active,
            total_cells: grid.num_cells(),
            occupancy: tensor.occupancy(),
            sparsity: tensor.sparsity(),
            non_empty_rows,
            max_row_occupancy: max_row,
            mean_row_occupancy: if non_empty_rows == 0 {
                0.0
            } else {
                active as f64 / non_empty_rows as f64
            },
            mean_column_gap: if gap_count == 0 {
                0.0
            } else {
                gap_sum / gap_count as f64
            },
        }
    }
}

/// The input-output pillar ratio (IOPR) of a sparse convolution layer:
/// `output active pillars / input active pillars`.
///
/// IOPR > 1 indicates dilation (standard SpConv on sparse inputs), IOPR = 1
/// indicates submanifold behaviour, and IOPR < 1 indicates pruning or striding
/// (Fig. 2(d–f) of the paper).
#[must_use]
pub fn iopr(input_active: usize, output_active: usize) -> f64 {
    if input_active == 0 {
        if output_active == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        output_active as f64 / input_active as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridShape, PillarCoord};

    #[test]
    fn stats_on_empty_tensor() {
        let t = CprTensor::empty(GridShape::new(10, 10), 4);
        let s = SparsityStats::from_tensor(&t);
        assert_eq!(s.active_pillars, 0);
        assert_eq!(s.sparsity, 1.0);
        assert_eq!(s.non_empty_rows, 0);
        assert_eq!(s.mean_row_occupancy, 0.0);
        assert_eq!(s.mean_column_gap, 0.0);
    }

    #[test]
    fn stats_counts_rows_and_gaps() {
        let t = CprTensor::from_coords(
            GridShape::new(4, 10),
            1,
            &[
                PillarCoord::new(0, 0),
                PillarCoord::new(0, 2),
                PillarCoord::new(0, 8),
                PillarCoord::new(3, 5),
            ],
        );
        let s = SparsityStats::from_tensor(&t);
        assert_eq!(s.active_pillars, 4);
        assert_eq!(s.non_empty_rows, 2);
        assert_eq!(s.max_row_occupancy, 3);
        assert!((s.mean_row_occupancy - 2.0).abs() < 1e-12);
        // Gaps: (2-0)=2 and (8-2)=6 → mean 4.
        assert!((s.mean_column_gap - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iopr_edge_cases() {
        assert_eq!(iopr(0, 0), 1.0);
        assert!(iopr(0, 5).is_infinite());
        assert!((iopr(10, 20) - 2.0).abs() < 1e-12);
        assert!((iopr(20, 10) - 0.5).abs() < 1e-12);
    }
}
