//! # spade-tensor
//!
//! Sparse and dense tensor data structures for the SPADE reproduction
//! (HPCA 2024, "SPADE: Sparse Pillar-based 3D Object Detection Accelerator").
//!
//! Pillar-based 3D object detection aggregates LiDAR points into a 2D
//! bird's-eye-view (BEV) grid. Each *active* grid cell (a "pillar") carries a
//! dense vector of `C` channel elements; inactive cells are entirely zero.
//! This *vector sparsity* is the central object of the paper, and this crate
//! provides its canonical representations:
//!
//! * [`PillarCoord`] — a `(row, col)` coordinate on the BEV grid.
//! * [`CprTensor`] — the **compressed-pillar-row** (CPR) sparse tensor: a
//!   row-wise, column-sorted encoding of active pillars plus their channel
//!   data, analogous to CSR for matrices. CPR ordering is what SPADE's Rule
//!   Generation Unit exploits for `O(P)` input-output mapping.
//! * [`DenseTensor`] — a dense `C × H × W` pseudo-image, the densified form
//!   used by GPU-friendly PointPillars baselines.
//! * [`quant`] — symmetric int8 quantization helpers (the paper's models use
//!   8-bit multiplication with 32-bit accumulation).
//! * [`stats`] — sparsity statistics (occupancy, vector sparsity, per-row
//!   histograms) used throughout the evaluation.
//!
//! ## Example
//!
//! ```
//! use spade_tensor::{CprTensor, PillarCoord, GridShape};
//!
//! // A 4x4 BEV grid with 2 channels and three active pillars.
//! let grid = GridShape::new(4, 4);
//! let mut builder = CprTensor::builder(grid, 2);
//! builder.push(PillarCoord::new(0, 1), vec![1.0, 2.0]).unwrap();
//! builder.push(PillarCoord::new(2, 0), vec![3.0, 4.0]).unwrap();
//! builder.push(PillarCoord::new(2, 3), vec![5.0, 6.0]).unwrap();
//! let t = builder.build();
//!
//! assert_eq!(t.num_active(), 3);
//! assert!((t.occupancy() - 3.0 / 16.0).abs() < 1e-9);
//! let dense = t.to_dense();
//! assert_eq!(dense.get(1, 2, 3), 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod cpr;
pub mod dense;
pub mod error;
pub mod quant;
pub mod stats;

pub use coord::{GridShape, PillarCoord};
pub use cpr::{CprBuilder, CprTensor};
pub use dense::DenseTensor;
pub use error::TensorError;
pub use quant::{QuantParams, QuantizedCprTensor};
pub use stats::SparsityStats;
