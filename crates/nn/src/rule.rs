//! The rule book: explicit `(input, weight-tap, output)` index mappings.
//!
//! A *rule* records that active input pillar `p` contributes to active output
//! pillar `q` through kernel tap `i`; the rule book groups rules by tap so the
//! accelerator can run weight-stationary (all rules of one tap share a loaded
//! weight slice). Output coordinates are kept in CPR (row-major) order, which
//! is what the Gather-Scatter Unit's active-tile management relies on.

use serde::{Deserialize, Serialize};
use spade_tensor::{GridShape, PillarCoord};

/// One input-output mapping entry: input pillar index → output pillar index
/// through a specific kernel tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Index of the active input pillar (CPR order of the input tensor).
    pub input: usize,
    /// Index of the active output pillar (CPR order of the output tensor).
    pub output: usize,
}

/// The complete mapping for one sparse convolution layer.
///
/// # Example
///
/// ```
/// use spade_nn::rule::RuleBook;
/// use spade_tensor::{GridShape, PillarCoord};
///
/// let mut rb = RuleBook::new(9, GridShape::new(4, 4), vec![PillarCoord::new(1, 1)]);
/// rb.push(4, 0, 0);
/// assert_eq!(rb.num_rules(), 1);
/// assert_eq!(rb.rules_for_tap(4).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleBook {
    /// Rules grouped by kernel tap index.
    per_tap: Vec<Vec<Rule>>,
    /// Output grid shape.
    output_grid: GridShape,
    /// Active output coordinates in CPR (row-major) order.
    output_coords: Vec<PillarCoord>,
}

impl RuleBook {
    /// Creates an empty rule book for a kernel with `num_taps` taps and the
    /// given active output coordinates (must already be sorted row-major).
    ///
    /// # Panics
    ///
    /// Panics if the output coordinates are not strictly sorted row-major.
    #[must_use]
    pub fn new(num_taps: usize, output_grid: GridShape, output_coords: Vec<PillarCoord>) -> Self {
        assert!(
            output_coords.windows(2).all(|w| w[0] < w[1]),
            "output coordinates must be strictly sorted in CPR (row-major) order"
        );
        Self {
            per_tap: vec![Vec::new(); num_taps],
            output_grid,
            output_coords,
        }
    }

    /// Creates an empty rule book whose output coordinates are streamed in
    /// ascending CPR order via [`RuleBook::push_output`] *while* rules are
    /// pushed — the construction mode of the fused streaming generator, which
    /// discovers outputs and rules in the same pass.
    #[must_use]
    pub fn streamed(num_taps: usize, output_grid: GridShape) -> Self {
        Self {
            per_tap: vec![Vec::new(); num_taps],
            output_grid,
            output_coords: Vec::new(),
        }
    }

    /// Appends the next active output coordinate and returns its index.
    /// Coordinates must arrive in strictly ascending CPR order (checked with
    /// a debug assertion — streamed construction maintains it by design).
    pub fn push_output(&mut self, coord: PillarCoord) -> usize {
        debug_assert!(
            self.output_coords.last().is_none_or(|&last| last < coord),
            "streamed output coordinates must be strictly ascending"
        );
        self.output_coords.push(coord);
        self.output_coords.len() - 1
    }

    /// Adds a rule: input pillar `input` contributes to output pillar `output`
    /// through kernel tap `tap`.
    ///
    /// # Panics
    ///
    /// Panics if `tap` or `output` is out of range.
    pub fn push(&mut self, tap: usize, input: usize, output: usize) {
        assert!(tap < self.per_tap.len(), "tap {tap} out of range");
        assert!(
            output < self.output_coords.len(),
            "output index {output} out of range ({} outputs)",
            self.output_coords.len()
        );
        self.per_tap[tap].push(Rule { input, output });
    }

    /// Number of kernel taps.
    #[must_use]
    pub fn num_taps(&self) -> usize {
        self.per_tap.len()
    }

    /// Total number of rules across all taps. Each rule corresponds to
    /// `C_in × C_out` multiply-accumulates.
    #[must_use]
    pub fn num_rules(&self) -> usize {
        self.per_tap.iter().map(Vec::len).sum()
    }

    /// Rules associated with one kernel tap.
    ///
    /// # Panics
    ///
    /// Panics if `tap` is out of range.
    #[must_use]
    pub fn rules_for_tap(&self, tap: usize) -> &[Rule] {
        &self.per_tap[tap]
    }

    /// The output grid shape.
    #[must_use]
    pub const fn output_grid(&self) -> GridShape {
        self.output_grid
    }

    /// Number of active output pillars.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.output_coords.len()
    }

    /// Active output coordinates in CPR order.
    #[must_use]
    pub fn output_coords(&self) -> &[PillarCoord] {
        &self.output_coords
    }

    /// Number of rules whose input index falls in `[input_start, input_end)`
    /// for a given tap — used by active-tile scheduling.
    #[must_use]
    pub fn rules_in_input_range(&self, tap: usize, input_start: usize, input_end: usize) -> usize {
        self.per_tap[tap]
            .iter()
            .filter(|r| r.input >= input_start && r.input < input_end)
            .count()
    }

    /// Checks the monotonicity property the paper's hardware relies on: within
    /// each tap, rules generated from CPR-ordered inputs have non-decreasing
    /// input *and* output indices.
    #[must_use]
    pub fn check_monotone(&self) -> bool {
        self.per_tap.iter().all(|rules| {
            rules
                .windows(2)
                .all(|w| w[0].input <= w[1].input && w[0].output <= w[1].output)
        })
    }

    /// Largest output index minus smallest output index touched by any single
    /// input tile of `tile` consecutive inputs; a proxy for the output-buffer
    /// footprint required per input tile.
    #[must_use]
    pub fn max_output_span_for_input_tile(&self, tile: usize) -> usize {
        if self.num_rules() == 0 || tile == 0 {
            return 0;
        }
        let max_input = self
            .per_tap
            .iter()
            .flat_map(|r| r.iter().map(|x| x.input))
            .max()
            .unwrap_or(0);
        let mut span = 0usize;
        let mut start = 0usize;
        while start <= max_input {
            let end = start + tile;
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            for rules in &self.per_tap {
                for r in rules {
                    if r.input >= start && r.input < end {
                        lo = lo.min(r.output);
                        hi = hi.max(r.output);
                    }
                }
            }
            if lo != usize::MAX {
                span = span.max(hi - lo + 1);
            }
            start = end;
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(v: &[(u32, u32)]) -> Vec<PillarCoord> {
        v.iter().map(|&(r, c)| PillarCoord::new(r, c)).collect()
    }

    #[test]
    fn push_and_count_rules() {
        let mut rb = RuleBook::new(9, GridShape::new(4, 4), coords(&[(0, 0), (1, 1)]));
        rb.push(0, 0, 0);
        rb.push(0, 1, 1);
        rb.push(8, 0, 1);
        assert_eq!(rb.num_rules(), 3);
        assert_eq!(rb.rules_for_tap(0).len(), 2);
        assert_eq!(rb.rules_for_tap(4).len(), 0);
        assert_eq!(rb.num_outputs(), 2);
    }

    #[test]
    fn streamed_construction_matches_upfront_outputs() {
        let outs = coords(&[(0, 1), (1, 0), (2, 2)]);
        let mut up = RuleBook::new(2, GridShape::new(4, 4), outs.clone());
        up.push(0, 0, 0);
        up.push(1, 1, 2);
        let mut st = RuleBook::streamed(2, GridShape::new(4, 4));
        assert_eq!(st.push_output(outs[0]), 0);
        st.push(0, 0, 0);
        assert_eq!(st.push_output(outs[1]), 1);
        assert_eq!(st.push_output(outs[2]), 2);
        st.push(1, 1, 2);
        assert_eq!(up, st);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_outputs_are_rejected() {
        let _ = RuleBook::new(9, GridShape::new(4, 4), coords(&[(1, 1), (0, 0)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_output_is_rejected() {
        let mut rb = RuleBook::new(9, GridShape::new(4, 4), coords(&[(0, 0)]));
        rb.push(0, 0, 3);
    }

    #[test]
    fn monotonicity_check() {
        let mut rb = RuleBook::new(1, GridShape::new(4, 4), coords(&[(0, 0), (1, 1), (2, 2)]));
        rb.push(0, 0, 0);
        rb.push(0, 1, 1);
        rb.push(0, 2, 2);
        assert!(rb.check_monotone());
        let mut bad = RuleBook::new(1, GridShape::new(4, 4), coords(&[(0, 0), (1, 1)]));
        bad.push(0, 1, 1);
        bad.push(0, 0, 0);
        assert!(!bad.check_monotone());
    }

    #[test]
    fn rules_in_input_range_counts_correctly() {
        let mut rb = RuleBook::new(2, GridShape::new(4, 4), coords(&[(0, 0), (1, 1)]));
        rb.push(0, 0, 0);
        rb.push(0, 5, 1);
        rb.push(1, 2, 0);
        assert_eq!(rb.rules_in_input_range(0, 0, 3), 1);
        assert_eq!(rb.rules_in_input_range(0, 0, 10), 2);
        assert_eq!(rb.rules_in_input_range(1, 2, 3), 1);
    }

    #[test]
    fn output_span_for_tiles() {
        let mut rb = RuleBook::new(1, GridShape::new(8, 8), coords(&[(0, 0), (0, 1), (4, 4)]));
        rb.push(0, 0, 0);
        rb.push(0, 1, 1);
        rb.push(0, 2, 2);
        // With tile=1 each input touches one output.
        assert_eq!(rb.max_output_span_for_input_tile(1), 1);
        // With tile=3 inputs 0..3 touch outputs 0..=2.
        assert_eq!(rb.max_output_span_for_input_tile(3), 3);
        assert_eq!(rb.max_output_span_for_input_tile(0), 0);
    }
}
