//! Reusable scratch buffers for pattern-level network execution.
//!
//! The layer loop of [`crate::graph::execute_pattern`] used to pay per-layer
//! allocations for everything it touched: a `CprTensor` built from the input
//! coordinates, a `BTreeSet` for output dilation, and a third walk of the
//! inputs to count rules. [`ExecutionArena`] holds the scratch state those
//! passes need — a row index over the input slice, the merge streams of the
//! fused sweep, output-coordinate buffers, and a cache of dense all-cells
//! sets — so consecutive layers (and consecutive `execute_pattern` calls that
//! share one arena) reuse the same capacity instead of reallocating.

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rulegen::output_grid;
use crate::rulegen::streaming::{fused_sweep, CoordSink, NullSink, SliceRows, StreamState};
use spade_tensor::{GridShape, PillarCoord};
use std::sync::Arc;

/// Scratch buffers threaded through pattern-level execution. Create one and
/// reuse it across layers and frames; every buffer retains its capacity.
#[derive(Debug, Default)]
pub struct ExecutionArena {
    /// Row pointer array over the current input slice (`height + 1` entries).
    row_ptr: Vec<usize>,
    /// Column index of each input pillar, grouped by row.
    cols: Vec<u32>,
    /// Merge-stream state of the fused sweep (`kh·kw` entries at most).
    streams: Vec<StreamState>,
    /// Output coordinates of the current fused sweep.
    out_coords: Vec<PillarCoord>,
    /// General coordinate scratch (union merging, input normalisation).
    pub(crate) scratch: Vec<PillarCoord>,
    /// Cached all-cells coordinate sets, one per dense grid seen.
    dense_cells: Vec<(GridShape, Arc<[PillarCoord]>)>,
}

impl ExecutionArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the row index (`row_ptr` + `cols`) over a CPR-sorted slice.
    fn index_rows(&mut self, coords: &[PillarCoord], grid: GridShape) {
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "arena sweeps require strictly CPR-sorted coordinates"
        );
        self.row_ptr.clear();
        self.row_ptr.resize(grid.height as usize + 1, 0);
        for c in coords {
            self.row_ptr[c.row as usize + 1] += 1;
        }
        for i in 1..self.row_ptr.len() {
            self.row_ptr[i] += self.row_ptr[i - 1];
        }
        self.cols.clear();
        self.cols.extend(coords.iter().map(|c| c.col));
    }

    /// One fused `O(P·K)` sweep for a dilating layer: computes the active
    /// output coordinates (CPR order, in an internal buffer) *and* the rule
    /// count together. Valid for every kind except [`ConvKind::Dense`] and
    /// [`ConvKind::SpConvS`], whose output sets need no sweep.
    ///
    /// Returns the output slice (borrowed from the arena) and the rule count.
    pub fn dilate_and_count(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kind: ConvKind,
        kernel: KernelShape,
    ) -> (&[PillarCoord], u64) {
        let out_grid = output_grid(in_grid, kind);
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            out_coords,
            ..
        } = self;
        out_coords.clear();
        let rows = SliceRows { row_ptr, cols };
        let (_, rules) = fused_sweep(
            &rows,
            in_grid,
            out_grid,
            kind,
            kernel,
            streams,
            &mut CoordSink(out_coords),
        );
        (out_coords, rules)
    }

    /// Rule count of a submanifold ([`ConvKind::SpConvS`]) layer in one fused
    /// sweep (the output set is the input set, so nothing is materialised).
    pub fn count_submanifold_rules(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kernel: KernelShape,
    ) -> u64 {
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            ..
        } = self;
        let rows = SliceRows { row_ptr, cols };
        let (_, rules) = fused_sweep(
            &rows,
            in_grid,
            in_grid,
            ConvKind::SpConvS,
            kernel,
            streams,
            &mut NullSink,
        );
        rules
    }

    /// The all-cells coordinate set of a grid, cached per grid shape so the
    /// dense layers of a network share one allocation.
    pub fn dense_cells(&mut self, grid: GridShape) -> Arc<[PillarCoord]> {
        if let Some((_, cells)) = self.dense_cells.iter().find(|(g, _)| *g == grid) {
            return Arc::clone(cells);
        }
        let cells: Arc<[PillarCoord]> = Arc::from(grid.all_cells());
        self.dense_cells.push((grid, Arc::clone(&cells)));
        cells
    }

    /// Union of several CPR-sorted coordinate sets, cropped to `grid` —
    /// the concatenation semantics of [`crate::graph::LayerInput::Union`].
    pub(crate) fn union_coords<'a>(
        &mut self,
        sets: impl Iterator<Item = &'a [PillarCoord]>,
        grid: GridShape,
    ) -> Arc<[PillarCoord]> {
        self.scratch.clear();
        for s in sets {
            self.scratch
                .extend(s.iter().copied().filter(|c| c.in_bounds(grid)));
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        Arc::from(&self.scratch[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rulegen;
    use spade_tensor::CprTensor;

    fn coords() -> Vec<PillarCoord> {
        vec![
            PillarCoord::new(1, 1),
            PillarCoord::new(1, 2),
            PillarCoord::new(4, 6),
            PillarCoord::new(7, 0),
        ]
    }

    #[test]
    fn dilate_and_count_matches_reference_passes() {
        let grid = GridShape::new(8, 8);
        let cs = coords();
        let t = CprTensor::from_sorted_coords(grid, 1, &cs);
        let mut arena = ExecutionArena::new();
        for kind in [ConvKind::SpConv, ConvKind::SpConvP, ConvKind::SpStConv] {
            let (out, rules) = arena.dilate_and_count(&cs, grid, kind, KernelShape::k3x3());
            assert_eq!(
                out,
                &rulegen::output_coords(&t, kind, KernelShape::k3x3())[..],
                "outputs for {kind}"
            );
            let book = rulegen::generate_rules(&t, kind, KernelShape::k3x3());
            assert_eq!(rules, book.num_rules() as u64, "rules for {kind}");
        }
        let (out, rules) =
            arena.dilate_and_count(&cs, grid, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(
            out,
            &rulegen::output_coords(&t, ConvKind::SpDeconv, KernelShape::k2x2())[..]
        );
        let book = rulegen::generate_rules(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(rules, book.num_rules() as u64);
    }

    #[test]
    fn submanifold_count_matches_rulebook() {
        let grid = GridShape::new(8, 8);
        let cs = coords();
        let t = CprTensor::from_sorted_coords(grid, 1, &cs);
        let mut arena = ExecutionArena::new();
        let rules = arena.count_submanifold_rules(&cs, grid, KernelShape::k3x3());
        let book = rulegen::generate_rules(&t, ConvKind::SpConvS, KernelShape::k3x3());
        assert_eq!(rules, book.num_rules() as u64);
    }

    #[test]
    fn dense_cells_are_cached_and_row_major() {
        let mut arena = ExecutionArena::new();
        let a = arena.dense_cells(GridShape::new(3, 2));
        let b = arena.dense_cells(GridShape::new(3, 2));
        assert!(Arc::ptr_eq(&a, &b), "same grid must share one allocation");
        assert_eq!(a.len(), 6);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_crops_and_dedups() {
        let mut arena = ExecutionArena::new();
        let a = [PillarCoord::new(0, 0), PillarCoord::new(2, 2)];
        let b = [PillarCoord::new(0, 0), PillarCoord::new(5, 5)];
        let grid = GridShape::new(3, 3);
        let u = arena.union_coords([&a[..], &b[..]].into_iter(), grid);
        assert_eq!(&u[..], &[PillarCoord::new(0, 0), PillarCoord::new(2, 2)]);
    }
}
