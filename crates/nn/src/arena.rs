//! Reusable scratch buffers for pattern-level network execution.
//!
//! The layer loop of [`crate::graph::execute_pattern`] used to pay per-layer
//! allocations for everything it touched: a `CprTensor` built from the input
//! coordinates, a `BTreeSet` for output dilation, and a third walk of the
//! inputs to count rules. [`ExecutionArena`] holds the scratch state those
//! passes need — a row index over the input slice, the merge streams of the
//! fused sweep, output-coordinate buffers, and a cache of dense all-cells
//! sets — so consecutive layers (and consecutive `execute_pattern` calls that
//! share one arena) reuse the same capacity instead of reallocating.

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rulegen::delta::{FrameDeltaState, LayerDeltaCache};
use crate::rulegen::output_grid;
use crate::rulegen::streaming::{
    fused_sweep, input_row_band, sweep_output_row, CoordSink, NullSink, SliceRows, StreamState,
};
use spade_tensor::{GridShape, PillarCoord};
use std::sync::Arc;

/// Scratch buffers threaded through pattern-level execution. Create one and
/// reuse it across layers and frames; every buffer retains its capacity.
#[derive(Debug, Default)]
pub struct ExecutionArena {
    /// Row pointer array over the current input slice (`height + 1` entries).
    row_ptr: Vec<usize>,
    /// Column index of each input pillar, grouped by row.
    cols: Vec<u32>,
    /// Merge-stream state of the fused sweep (`kh·kw` entries at most).
    streams: Vec<StreamState>,
    /// Output coordinates of the current fused sweep.
    out_coords: Vec<PillarCoord>,
    /// General coordinate scratch (union merging, input normalisation).
    pub(crate) scratch: Vec<PillarCoord>,
    /// Cached all-cells coordinate sets, one per dense grid seen.
    dense_cells: Vec<(GridShape, Arc<[PillarCoord]>)>,
}

impl ExecutionArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the row index (`row_ptr` + `cols`) over a CPR-sorted slice.
    fn index_rows(&mut self, coords: &[PillarCoord], grid: GridShape) {
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "arena sweeps require strictly CPR-sorted coordinates"
        );
        self.row_ptr.clear();
        self.row_ptr.resize(grid.height as usize + 1, 0);
        for c in coords {
            self.row_ptr[c.row as usize + 1] += 1;
        }
        for i in 1..self.row_ptr.len() {
            self.row_ptr[i] += self.row_ptr[i - 1];
        }
        self.cols.clear();
        self.cols.extend(coords.iter().map(|c| c.col));
    }

    /// One fused `O(P·K)` sweep for a dilating layer: computes the active
    /// output coordinates (CPR order, in an internal buffer) *and* the rule
    /// count together. Valid for every kind except [`ConvKind::Dense`] and
    /// [`ConvKind::SpConvS`], whose output sets need no sweep.
    ///
    /// Returns the output slice (borrowed from the arena) and the rule count.
    pub fn dilate_and_count(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kind: ConvKind,
        kernel: KernelShape,
    ) -> (&[PillarCoord], u64) {
        let out_grid = output_grid(in_grid, kind);
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            out_coords,
            ..
        } = self;
        out_coords.clear();
        let rows = SliceRows { row_ptr, cols };
        let (_, rules) = fused_sweep(
            &rows,
            in_grid,
            out_grid,
            kind,
            kernel,
            streams,
            &mut CoordSink(out_coords),
        );
        (out_coords, rules)
    }

    /// Rule count of a submanifold ([`ConvKind::SpConvS`]) layer in one fused
    /// sweep (the output set is the input set, so nothing is materialised).
    pub fn count_submanifold_rules(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kernel: KernelShape,
    ) -> u64 {
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            ..
        } = self;
        let rows = SliceRows { row_ptr, cols };
        let (_, rules) = fused_sweep(
            &rows,
            in_grid,
            in_grid,
            ConvKind::SpConvS,
            kernel,
            streams,
            &mut NullSink,
        );
        rules
    }

    /// As [`ExecutionArena::dilate_and_count`], but additionally records the
    /// per-row structure (input row pointer, output row spans, per-row rule
    /// counts) into a layer's delta cache so the *next* frame can splice
    /// clean rows instead of re-sweeping them. Same sweeps, same outputs.
    pub(crate) fn dilate_count_and_record(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kind: ConvKind,
        kernel: KernelShape,
        cache: &mut LayerDeltaCache,
    ) -> (&[PillarCoord], u64) {
        let out_grid = output_grid(in_grid, kind);
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            out_coords,
            ..
        } = self;
        out_coords.clear();
        cache.out_row_ptr.clear();
        cache.out_row_ptr.push(0);
        cache.row_rules.clear();
        let rows = SliceRows { row_ptr, cols };
        let mut rules = 0u64;
        for o in 0..out_grid.height {
            let base = out_coords.len();
            let (_, row_rules) = sweep_output_row(
                &rows,
                in_grid,
                out_grid,
                kind,
                kernel,
                streams,
                &mut CoordSink(out_coords),
                o,
                base,
            );
            cache.out_row_ptr.push(out_coords.len());
            cache.row_rules.push(row_rules);
            rules += row_rules;
        }
        cache.in_row_ptr.clear();
        cache.in_row_ptr.extend_from_slice(row_ptr);
        cache.rules = rules;
        (out_coords, rules)
    }

    /// As [`ExecutionArena::count_submanifold_rules`], recording the per-row
    /// rule counts for the delta path (submanifold layers keep their input
    /// set, so only the counts need caching).
    pub(crate) fn count_submanifold_rules_and_record(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kernel: KernelShape,
        cache: &mut LayerDeltaCache,
    ) -> u64 {
        self.index_rows(coords, in_grid);
        let Self {
            row_ptr,
            cols,
            streams,
            ..
        } = self;
        cache.row_rules.clear();
        let rows = SliceRows { row_ptr, cols };
        let mut rules = 0u64;
        for o in 0..in_grid.height {
            let (_, row_rules) = sweep_output_row(
                &rows,
                in_grid,
                in_grid,
                ConvKind::SpConvS,
                kernel,
                streams,
                &mut NullSink,
                o,
                0,
            );
            cache.row_rules.push(row_rules);
            rules += row_rules;
        }
        cache.in_row_ptr.clear();
        cache.in_row_ptr.extend_from_slice(row_ptr);
        cache.rules = rules;
        rules
    }

    /// Marks the dirty input rows of a layer in `dirty_in`: rows whose column
    /// set differs between the cached previous input and the current one.
    fn mark_dirty_rows(
        &self,
        cache: &LayerDeltaCache,
        in_grid: GridShape,
        dirty_in: &mut Vec<bool>,
    ) {
        let prev_input = cache
            .input
            .as_ref()
            .expect("delta splice requires a populated layer cache");
        dirty_in.clear();
        dirty_in.resize(in_grid.height as usize, false);
        for (r, dirty) in dirty_in.iter_mut().enumerate() {
            let prev = &prev_input[cache.in_row_ptr[r]..cache.in_row_ptr[r + 1]];
            let next = &self.cols[self.row_ptr[r]..self.row_ptr[r + 1]];
            *dirty = prev.len() != next.len() || prev.iter().zip(next).any(|(p, &n)| p.col != n);
        }
    }

    /// Row-granular delta re-dilation: output rows whose receptive-field band
    /// saw no input change are copied from the previous frame's cache; dirty
    /// rows are re-swept with the same per-row sweep the full path uses, so
    /// the spliced result is byte-identical to a from-scratch
    /// [`ExecutionArena::dilate_and_count`]. The cache is updated to the new
    /// frame (except `input`, which the caller owns and re-points).
    ///
    /// Returns the new dilated set (the previous frame's `Arc` is reused when
    /// the value did not change, propagating pointer-equality downstream),
    /// the rule count, and the number of rows actually swept.
    pub(crate) fn delta_dilate_and_count(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kind: ConvKind,
        kernel: KernelShape,
        state: &mut FrameDeltaState,
        layer_idx: usize,
    ) -> (Arc<[PillarCoord]>, u64, u64) {
        let out_grid = output_grid(in_grid, kind);
        self.index_rows(coords, in_grid);
        let FrameDeltaState {
            layers,
            dirty_in,
            staged_coords,
            staged_row_ptr,
            staged_row_rules,
            ..
        } = state;
        let cache = &mut layers[layer_idx];
        self.mark_dirty_rows(cache, in_grid, dirty_in);
        let Self {
            row_ptr,
            cols,
            streams,
            ..
        } = self;
        let rows = SliceRows { row_ptr, cols };
        let prev_dilated = cache
            .dilated
            .as_ref()
            .expect("delta splice requires a recorded dilation");
        staged_coords.clear();
        staged_row_ptr.clear();
        staged_row_ptr.push(0);
        staged_row_rules.clear();
        let mut rules = 0u64;
        let mut rows_swept = 0u64;
        for o in 0..out_grid.height {
            let dirty = input_row_band(o, in_grid, kind, kernel)
                .is_some_and(|(lo, hi)| dirty_in[lo as usize..=hi as usize].contains(&true));
            let row_rules = if dirty {
                rows_swept += 1;
                let base = staged_coords.len();
                let (_, rr) = sweep_output_row(
                    &rows,
                    in_grid,
                    out_grid,
                    kind,
                    kernel,
                    streams,
                    &mut CoordSink(staged_coords),
                    o,
                    base,
                );
                rr
            } else {
                let span =
                    &prev_dilated[cache.out_row_ptr[o as usize]..cache.out_row_ptr[o as usize + 1]];
                staged_coords.extend_from_slice(span);
                cache.row_rules[o as usize]
            };
            staged_row_ptr.push(staged_coords.len());
            staged_row_rules.push(row_rules);
            rules += row_rules;
        }
        let dilated: Arc<[PillarCoord]> = if staged_coords[..] == prev_dilated[..] {
            Arc::clone(prev_dilated)
        } else {
            Arc::from(&staged_coords[..])
        };
        // Commit the new frame into the cache, swapping the staged row
        // structures in so the scratch capacity is reused next frame.
        std::mem::swap(&mut cache.out_row_ptr, staged_row_ptr);
        std::mem::swap(&mut cache.row_rules, staged_row_rules);
        cache.in_row_ptr.clear();
        cache.in_row_ptr.extend_from_slice(row_ptr);
        cache.dilated = Some(Arc::clone(&dilated));
        cache.rules = rules;
        (dilated, rules, rows_swept)
    }

    /// Row-granular delta rule recount for a submanifold layer (the output
    /// set is the input set; only per-row rule counts are spliced).
    ///
    /// Returns the rule count and the number of rows re-swept.
    pub(crate) fn delta_count_submanifold(
        &mut self,
        coords: &[PillarCoord],
        in_grid: GridShape,
        kernel: KernelShape,
        state: &mut FrameDeltaState,
        layer_idx: usize,
    ) -> (u64, u64) {
        self.index_rows(coords, in_grid);
        let FrameDeltaState {
            layers,
            dirty_in,
            staged_row_rules,
            ..
        } = state;
        let cache = &mut layers[layer_idx];
        self.mark_dirty_rows(cache, in_grid, dirty_in);
        let Self {
            row_ptr,
            cols,
            streams,
            ..
        } = self;
        let rows = SliceRows { row_ptr, cols };
        staged_row_rules.clear();
        let mut rules = 0u64;
        let mut rows_swept = 0u64;
        for o in 0..in_grid.height {
            let dirty = input_row_band(o, in_grid, ConvKind::SpConvS, kernel)
                .is_some_and(|(lo, hi)| dirty_in[lo as usize..=hi as usize].contains(&true));
            let row_rules = if dirty {
                rows_swept += 1;
                let (_, rr) = sweep_output_row(
                    &rows,
                    in_grid,
                    in_grid,
                    ConvKind::SpConvS,
                    kernel,
                    streams,
                    &mut NullSink,
                    o,
                    0,
                );
                rr
            } else {
                cache.row_rules[o as usize]
            };
            staged_row_rules.push(row_rules);
            rules += row_rules;
        }
        std::mem::swap(&mut cache.row_rules, staged_row_rules);
        cache.in_row_ptr.clear();
        cache.in_row_ptr.extend_from_slice(row_ptr);
        cache.rules = rules;
        (rules, rows_swept)
    }

    /// Capacities of the arena's scratch buffers — pinned by the test that
    /// asserts the steady-state delta path stops allocating.
    #[must_use]
    pub fn scratch_capacities(&self) -> [usize; 5] {
        [
            self.row_ptr.capacity(),
            self.cols.capacity(),
            self.streams.capacity(),
            self.out_coords.capacity(),
            self.scratch.capacity(),
        ]
    }

    /// The all-cells coordinate set of a grid, cached per grid shape so the
    /// dense layers of a network share one allocation.
    pub fn dense_cells(&mut self, grid: GridShape) -> Arc<[PillarCoord]> {
        if let Some((_, cells)) = self.dense_cells.iter().find(|(g, _)| *g == grid) {
            return Arc::clone(cells);
        }
        let cells: Arc<[PillarCoord]> = Arc::from(grid.all_cells());
        self.dense_cells.push((grid, Arc::clone(&cells)));
        cells
    }

    /// Union of several CPR-sorted coordinate sets, cropped to `grid` —
    /// the concatenation semantics of [`crate::graph::LayerInput::Union`].
    pub(crate) fn union_coords<'a>(
        &mut self,
        sets: impl Iterator<Item = &'a [PillarCoord]>,
        grid: GridShape,
    ) -> Arc<[PillarCoord]> {
        self.scratch.clear();
        for s in sets {
            self.scratch
                .extend(s.iter().copied().filter(|c| c.in_bounds(grid)));
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        Arc::from(&self.scratch[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rulegen;
    use spade_tensor::CprTensor;

    fn coords() -> Vec<PillarCoord> {
        vec![
            PillarCoord::new(1, 1),
            PillarCoord::new(1, 2),
            PillarCoord::new(4, 6),
            PillarCoord::new(7, 0),
        ]
    }

    #[test]
    fn dilate_and_count_matches_reference_passes() {
        let grid = GridShape::new(8, 8);
        let cs = coords();
        let t = CprTensor::from_sorted_coords(grid, 1, &cs);
        let mut arena = ExecutionArena::new();
        for kind in [ConvKind::SpConv, ConvKind::SpConvP, ConvKind::SpStConv] {
            let (out, rules) = arena.dilate_and_count(&cs, grid, kind, KernelShape::k3x3());
            assert_eq!(
                out,
                &rulegen::output_coords(&t, kind, KernelShape::k3x3())[..],
                "outputs for {kind}"
            );
            let book = rulegen::generate_rules(&t, kind, KernelShape::k3x3());
            assert_eq!(rules, book.num_rules() as u64, "rules for {kind}");
        }
        let (out, rules) =
            arena.dilate_and_count(&cs, grid, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(
            out,
            &rulegen::output_coords(&t, ConvKind::SpDeconv, KernelShape::k2x2())[..]
        );
        let book = rulegen::generate_rules(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(rules, book.num_rules() as u64);
    }

    #[test]
    fn submanifold_count_matches_rulebook() {
        let grid = GridShape::new(8, 8);
        let cs = coords();
        let t = CprTensor::from_sorted_coords(grid, 1, &cs);
        let mut arena = ExecutionArena::new();
        let rules = arena.count_submanifold_rules(&cs, grid, KernelShape::k3x3());
        let book = rulegen::generate_rules(&t, ConvKind::SpConvS, KernelShape::k3x3());
        assert_eq!(rules, book.num_rules() as u64);
    }

    #[test]
    fn dense_cells_are_cached_and_row_major() {
        let mut arena = ExecutionArena::new();
        let a = arena.dense_cells(GridShape::new(3, 2));
        let b = arena.dense_cells(GridShape::new(3, 2));
        assert!(Arc::ptr_eq(&a, &b), "same grid must share one allocation");
        assert_eq!(a.len(), 6);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn delta_splice_methods_match_full_sweeps() {
        let grid = GridShape::new(16, 16);
        let prev: Vec<PillarCoord> = vec![
            PillarCoord::new(1, 1),
            PillarCoord::new(1, 2),
            PillarCoord::new(4, 6),
            PillarCoord::new(7, 0),
            PillarCoord::new(12, 9),
        ];
        // Move one pillar: rows 4 and 5 become dirty, the rest splice.
        let next: Vec<PillarCoord> = vec![
            PillarCoord::new(1, 1),
            PillarCoord::new(1, 2),
            PillarCoord::new(5, 6),
            PillarCoord::new(7, 0),
            PillarCoord::new(12, 9),
        ];
        let prev_arc: Arc<[PillarCoord]> = Arc::from(&prev[..]);
        for (kind, kernel) in [
            (ConvKind::SpConv, KernelShape::k3x3()),
            (ConvKind::SpStConv, KernelShape::k3x3()),
            (ConvKind::SpDeconv, KernelShape::k2x2()),
        ] {
            let mut arena = ExecutionArena::new();
            let mut state = crate::rulegen::delta::FrameDeltaState::default();
            state.layers.push(Default::default());
            let (out, rules) =
                arena.dilate_count_and_record(&prev, grid, kind, kernel, &mut state.layers[0]);
            let recorded: Arc<[PillarCoord]> = Arc::from(out);
            state.layers[0].dilated = Some(Arc::clone(&recorded));
            state.layers[0].input = Some(Arc::clone(&prev_arc));
            let (full_out, full_rules) = {
                let mut fresh = ExecutionArena::new();
                let (o, r) = fresh.dilate_and_count(&prev, grid, kind, kernel);
                (o.to_vec(), r)
            };
            assert_eq!(&recorded[..], &full_out[..], "record diverged for {kind}");
            assert_eq!(rules, full_rules, "record rules diverged for {kind}");
            let (patched, rules, swept) =
                arena.delta_dilate_and_count(&next, grid, kind, kernel, &mut state, 0);
            let mut fresh = ExecutionArena::new();
            let (oracle, oracle_rules) = fresh.dilate_and_count(&next, grid, kind, kernel);
            assert_eq!(&patched[..], oracle, "splice diverged for {kind}");
            assert_eq!(rules, oracle_rules, "splice rules diverged for {kind}");
            let out_rows = u64::from(crate::rulegen::output_grid(grid, kind).height);
            assert!(swept > 0 && swept < out_rows, "kind {kind}: swept {swept}");
        }
        // Submanifold counts splice row-wise too.
        let mut arena = ExecutionArena::new();
        let mut state = crate::rulegen::delta::FrameDeltaState::default();
        state.layers.push(Default::default());
        let k = KernelShape::k3x3();
        arena.count_submanifold_rules_and_record(&prev, grid, k, &mut state.layers[0]);
        state.layers[0].input = Some(Arc::clone(&prev_arc));
        let (rules, swept) = arena.delta_count_submanifold(&next, grid, k, &mut state, 0);
        let mut fresh = ExecutionArena::new();
        assert_eq!(rules, fresh.count_submanifold_rules(&next, grid, k));
        assert!(swept > 0 && swept < u64::from(grid.height));
    }

    #[test]
    fn delta_path_stops_allocating_after_warm_up() {
        use crate::conv::LayerSpec;
        use crate::graph::{
            execute_pattern_delta, ExecutionContext, LayerInput, NetworkLayer, NetworkSpec,
        };
        let grid = GridShape::new(32, 32);
        let spec = NetworkSpec {
            name: "warm".into(),
            encoder_channels: 4,
            layers: vec![
                NetworkLayer {
                    spec: LayerSpec::new("sub", ConvKind::SpConvS, 4, 4),
                    input: LayerInput::Previous,
                    stage: 1,
                    densify_input: false,
                },
                NetworkLayer {
                    spec: LayerSpec::new("conv", ConvKind::SpConv, 4, 4),
                    input: LayerInput::Previous,
                    stage: 1,
                    densify_input: false,
                },
                NetworkLayer {
                    spec: LayerSpec::new("down", ConvKind::SpStConv, 4, 4),
                    input: LayerInput::Previous,
                    stage: 2,
                    densify_input: false,
                },
            ],
        };
        // Two alternating frames differing by one moved pillar: every frame
        // after the first takes the delta path.
        let a: Vec<PillarCoord> = (0..30)
            .map(|i| PillarCoord::new((i * 7) % 32, (i * 11) % 32))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut b = a.clone();
        b.retain(|c| *c != a[4]);
        b.push(PillarCoord::new(a[4].row, (a[4].col + 1) % 32));
        b.sort();
        b.dedup();
        let ctx = ExecutionContext::default();
        let mut arena = ExecutionArena::new();
        let mut state = crate::rulegen::delta::FrameDeltaState::default();
        // Warm-up: one full frame plus one delta frame of each flavour.
        for coords in [&a, &b, &a] {
            let _ = execute_pattern_delta(&spec, coords, grid, 0, &ctx, &mut arena, &mut state);
        }
        let arena_caps = arena.scratch_capacities();
        let state_caps = state.scratch_capacities();
        // Steady state: the coord-diff and halo-row scratch buffers must be
        // reused as-is — zero reallocation on the delta path.
        for coords in [&b, &a, &b, &a, &b] {
            let _ = execute_pattern_delta(&spec, coords, grid, 0, &ctx, &mut arena, &mut state);
            assert_eq!(arena.scratch_capacities(), arena_caps);
            assert_eq!(state.scratch_capacities(), state_caps);
        }
        assert_eq!(state.stats().frames_total, 8);
        assert_eq!(state.stats().frames_delta, 7);
    }

    #[test]
    fn union_crops_and_dedups() {
        let mut arena = ExecutionArena::new();
        let a = [PillarCoord::new(0, 0), PillarCoord::new(2, 2)];
        let b = [PillarCoord::new(0, 0), PillarCoord::new(5, 5)];
        let grid = GridShape::new(3, 3);
        let u = arena.union_coords([&a[..], &b[..]].into_iter(), grid);
        assert_eq!(&u[..], &[PillarCoord::new(0, 0), PillarCoord::new(2, 2)]);
    }
}
