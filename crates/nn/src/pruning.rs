//! Dynamic vector pruning (SpConv-P).
//!
//! The paper trains models with vector-sparsity regularisation so that the
//! channel magnitude of unimportant background pillars is driven towards zero,
//! then fine-tunes with Top-K pruning per layer so a fixed sparsity target can
//! be met at inference time. Here the *inference-time* mechanism is
//! reproduced exactly (Top-K selection on importance scores, never dropping
//! below a floor), and the *training-time* effect is modelled by an
//! importance function that scores foreground pillars (those inside or near a
//! ground-truth box) higher than background pillars — which is precisely what
//! the regularised training achieves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spade_pointcloud::pillarize::PillarizationConfig;
use spade_pointcloud::Scene;
use spade_tensor::{CprTensor, GridShape, PillarCoord};

/// Configuration of the dynamic vector pruner.
///
/// # Example
///
/// ```
/// use spade_nn::PruningConfig;
/// let cfg = PruningConfig::default();
/// assert!(cfg.keep_ratio > 0.0 && cfg.keep_ratio <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Fraction of the dilated output pillars to keep (Top-K ratio).
    pub keep_ratio: f64,
    /// Never prune below this many pillars.
    pub min_keep: usize,
    /// Whether the importance model reflects regularised fine-tuning
    /// (foreground-aware) or naive magnitude pruning.
    pub finetuned: bool,
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self {
            keep_ratio: 0.55,
            min_keep: 64,
            finetuned: true,
        }
    }
}

impl PruningConfig {
    /// A configuration with an explicit keep ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep_ratio <= 1`.
    #[must_use]
    pub fn with_keep_ratio(keep_ratio: f64) -> Self {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1], got {keep_ratio}"
        );
        Self {
            keep_ratio,
            ..Self::default()
        }
    }
}

/// The dynamic vector pruner: Top-K selection over importance scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorPruner {
    config: PruningConfig,
}

impl VectorPruner {
    /// Creates a pruner with the given configuration.
    #[must_use]
    pub const fn new(config: PruningConfig) -> Self {
        Self { config }
    }

    /// The pruner's configuration.
    #[must_use]
    pub const fn config(&self) -> PruningConfig {
        self.config
    }

    /// Selects the indices (into `scores`) of the pillars to keep.
    ///
    /// Keeps `max(min_keep, ceil(keep_ratio * n))` pillars with the highest
    /// scores; returned indices are sorted ascending so they can be fed to
    /// [`CprTensor::select`] without disturbing CPR order.
    #[must_use]
    pub fn keep_indices(&self, scores: &[f64]) -> Vec<usize> {
        let n = scores.len();
        if n == 0 {
            return Vec::new();
        }
        let keep = ((self.config.keep_ratio * n as f64).ceil() as usize)
            .max(self.config.min_keep)
            .min(n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept: Vec<usize> = order.into_iter().take(keep).collect();
        kept.sort_unstable();
        kept
    }

    /// Prunes a tensor using per-pillar feature magnitudes as importance.
    #[must_use]
    pub fn prune_by_magnitude(&self, tensor: &CprTensor) -> CprTensor {
        let scores: Vec<f64> = tensor
            .pillar_magnitudes()
            .into_iter()
            .map(f64::from)
            .collect();
        tensor.select(&self.keep_indices(&scores))
    }

    /// Prunes a coordinate set using externally supplied importance scores
    /// (pattern-level execution). Returns the kept coordinates in CPR order.
    #[must_use]
    pub fn prune_coords(&self, coords: &[PillarCoord], scores: &[f64]) -> Vec<PillarCoord> {
        assert_eq!(coords.len(), scores.len(), "one score per coordinate");
        self.keep_indices(scores)
            .into_iter()
            .map(|i| coords[i])
            .collect()
    }
}

/// An importance model for pattern-level pruning: scores each BEV coordinate
/// by its proximity to ground-truth objects, emulating the magnitude profile
/// a regularised, fine-tuned model produces.
#[derive(Debug, Clone)]
pub struct ImportanceModel {
    foreground: std::collections::HashSet<(u32, u32)>,
    near: std::collections::HashSet<(u32, u32)>,
    noise_seed: u64,
    finetuned: bool,
}

impl ImportanceModel {
    /// Builds the importance model for a scene at a given BEV resolution.
    ///
    /// `downsample` is the stride factor between the base pillarisation grid
    /// and the grid the scores are requested at (1 for stage 1, 2 for stage 2,
    /// and so on).
    ///
    /// Cells are rasterised object by object rather than by scanning the
    /// whole grid against every object: a cell can only be foreground (centre
    /// inside a box) or near (centre within `max(length, width)` of an object
    /// centre) if it lies within that radius of the object, so only the cells
    /// inside each object's reach are tested — the resulting sets are
    /// identical to a full-grid scan at a fraction of the cost.
    #[must_use]
    pub fn for_scene(
        scene: &Scene,
        pillar_cfg: &PillarizationConfig,
        grid: GridShape,
        downsample: u32,
        noise_seed: u64,
        finetuned: bool,
    ) -> Self {
        let mut foreground = std::collections::HashSet::new();
        let mut near = std::collections::HashSet::new();
        let sx = pillar_cfg.pillar_size_x * f64::from(downsample);
        let sy = pillar_cfg.pillar_size_y * f64::from(downsample);
        let x0 = pillar_cfg.x_range.0;
        let y0 = pillar_cfg.y_range.0;
        // Conservative cell range covering [centre - reach, centre + reach]
        // along one axis (cell centres sit at origin + (i + 0.5) * step).
        let cell_range = |centre: f64, reach: f64, origin: f64, step: f64, len: u32| {
            let lo = ((centre - reach - origin) / step - 1.5).floor().max(0.0) as u32;
            let hi = ((centre + reach - origin) / step + 0.5)
                .ceil()
                .min(f64::from(len) - 1.0);
            if hi < 0.0 {
                (1, 0) // empty range
            } else {
                (lo, hi as u32)
            }
        };
        for obj in scene.objects() {
            // A box-contained centre is within hypot(l, w)/2 of the object
            // centre, and a near centre is within max(l, w) — `reach` bounds
            // both predicates.
            let r = obj.bbox.length.max(obj.bbox.width);
            let (row_lo, row_hi) = cell_range(obj.bbox.cx, r, x0, sx, grid.height);
            let (col_lo, col_hi) = cell_range(obj.bbox.cy, r, y0, sy, grid.width);
            for row in row_lo..=row_hi.min(grid.height.saturating_sub(1)) {
                let x = x0 + (f64::from(row) + 0.5) * sx;
                for col in col_lo..=col_hi.min(grid.width.saturating_sub(1)) {
                    let y = y0 + (f64::from(col) + 0.5) * sy;
                    if obj.bbox.contains_bev(x, y) {
                        foreground.insert((row, col));
                    } else {
                        let dx = x - obj.bbox.cx;
                        let dy = y - obj.bbox.cy;
                        if (dx * dx + dy * dy).sqrt() < r {
                            near.insert((row, col));
                        }
                    }
                }
            }
        }
        // A cell inside one object's box but merely near another is
        // foreground, exactly as in the per-cell scan.
        near.retain(|c| !foreground.contains(c));
        Self {
            foreground,
            near,
            noise_seed,
            finetuned,
        }
    }

    /// Scores a list of coordinates: foreground ≫ near-object ≫ background,
    /// with deterministic per-coordinate noise. A model without fine-tuning
    /// has much noisier scores, so pruning removes foreground evidence sooner.
    #[must_use]
    pub fn scores(&self, coords: &[PillarCoord]) -> Vec<f64> {
        coords
            .iter()
            .map(|c| {
                let mut rng = StdRng::seed_from_u64(
                    self.noise_seed ^ (u64::from(c.row) << 32) ^ u64::from(c.col),
                );
                let noise_scale = if self.finetuned { 0.2 } else { 1.5 };
                let noise: f64 = rng.gen_range(0.0..noise_scale);
                if self.foreground.contains(&(c.row, c.col)) {
                    3.0 + noise
                } else if self.near.contains(&(c.row, c.col)) {
                    1.5 + noise
                } else {
                    0.2 + noise
                }
            })
            .collect()
    }

    /// Number of foreground (in-box) cells at this resolution.
    #[must_use]
    pub fn num_foreground_cells(&self) -> usize {
        self.foreground.len()
    }

    /// Returns `true` if the coordinate lies inside a ground-truth box.
    #[must_use]
    pub fn is_foreground(&self, coord: PillarCoord) -> bool {
        self.foreground.contains(&(coord.row, coord.col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_pointcloud::{ObjectClass, SceneConfig, SceneObject};

    #[test]
    fn keep_indices_respects_ratio_and_floor() {
        let pruner = VectorPruner::new(PruningConfig {
            keep_ratio: 0.5,
            min_keep: 2,
            finetuned: true,
        });
        let scores: Vec<f64> = (0..10).map(f64::from).collect();
        let kept = pruner.keep_indices(&scores);
        assert_eq!(kept.len(), 5);
        // Highest-scoring indices are 5..10.
        assert_eq!(kept, vec![5, 6, 7, 8, 9]);
        // Floor applies for tiny inputs.
        let kept = pruner.keep_indices(&[1.0, 2.0, 3.0]);
        assert_eq!(kept.len(), 2);
        assert!(pruner.keep_indices(&[]).is_empty());
    }

    #[test]
    fn keep_indices_are_sorted_for_cpr_select() {
        let pruner = VectorPruner::new(PruningConfig::with_keep_ratio(0.4));
        let scores = vec![0.1, 5.0, 0.2, 4.0, 3.0, 0.3, 2.0, 1.0, 0.5, 0.6];
        let kept = pruner.keep_indices(&scores);
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prune_by_magnitude_keeps_strong_pillars() {
        let t = CprTensor::from_entries(
            GridShape::new(4, 4),
            1,
            vec![
                (PillarCoord::new(0, 0), vec![0.01]),
                (PillarCoord::new(1, 1), vec![10.0]),
                (PillarCoord::new(2, 2), vec![0.02]),
                (PillarCoord::new(3, 3), vec![8.0]),
            ],
        )
        .unwrap();
        let pruner = VectorPruner::new(PruningConfig {
            keep_ratio: 0.5,
            min_keep: 1,
            finetuned: true,
        });
        let pruned = pruner.prune_by_magnitude(&t);
        assert_eq!(pruned.num_active(), 2);
        assert!(pruned.index_of(PillarCoord::new(1, 1)).is_some());
        assert!(pruned.index_of(PillarCoord::new(3, 3)).is_some());
    }

    #[test]
    #[should_panic(expected = "keep_ratio")]
    fn zero_keep_ratio_is_rejected() {
        let _ = PruningConfig::with_keep_ratio(0.0);
    }

    #[test]
    fn importance_prefers_foreground() {
        let cfg = PillarizationConfig::kitti_like();
        let scene = spade_pointcloud::Scene::from_objects(
            SceneConfig::kitti_like(),
            vec![SceneObject::at(ObjectClass::Car, 20.0, 0.0, 0.0)],
        );
        let grid = cfg.grid_shape();
        let model = ImportanceModel::for_scene(&scene, &cfg, grid, 1, 7, true);
        assert!(model.num_foreground_cells() > 0);
        // A pillar at the car centre scores higher than one far away.
        let car_coord = cfg
            .coord_of(&spade_pointcloud::Point3::new(20.0, 0.0, 0.0))
            .unwrap();
        let far_coord = cfg
            .coord_of(&spade_pointcloud::Point3::new(60.0, 30.0, 0.0))
            .unwrap();
        let scores = model.scores(&[car_coord, far_coord]);
        assert!(scores[0] > scores[1]);
        assert!(model.is_foreground(car_coord));
        assert!(!model.is_foreground(far_coord));
    }

    #[test]
    fn finetuned_importance_is_less_noisy() {
        let cfg = PillarizationConfig::kitti_like();
        let scene = spade_pointcloud::Scene::from_objects(
            SceneConfig::kitti_like(),
            vec![SceneObject::at(ObjectClass::Car, 20.0, 0.0, 0.0)],
        );
        let grid = cfg.grid_shape();
        let tuned = ImportanceModel::for_scene(&scene, &cfg, grid, 1, 7, true);
        let naive = ImportanceModel::for_scene(&scene, &cfg, grid, 1, 7, false);
        // Score a batch of background coordinates; the naive model's spread is larger.
        let coords: Vec<PillarCoord> = (0..50).map(|i| PillarCoord::new(400, i)).collect();
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(&naive.scores(&coords)) > spread(&tuned.scores(&coords)));
    }
}
