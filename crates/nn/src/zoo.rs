//! The paper's model zoo: PointPillars, CenterPoint, PillarNet, and their
//! sparse variants (Table I).
//!
//! | Model | Backbone | Head | Dataset |
//! |-------|----------|------|---------|
//! | PP    | Conv2D   | Conv2D | KITTI-like |
//! | SPP1  | SpConv   | Conv2D | KITTI-like |
//! | SPP2  | SpConv-P | Conv2D | KITTI-like |
//! | SPP3  | SpConv-S | Conv2D | KITTI-like |
//! | CP    | Conv2D   | Conv2D | nuScenes-like |
//! | SCP1  | SpConv   | Conv2D | nuScenes-like |
//! | SCP2  | SpConv-P | SpConv-P | nuScenes-like |
//! | SCP3  | SpConv-S | SpConv-P | nuScenes-like |
//! | PN (Dense) | Conv2D encoder + Conv2D | Conv2D | nuScenes-like |
//! | PN    | SpConv-S encoder + Conv2D | Conv2D | nuScenes-like |
//! | SPN   | SpConv-S encoder + SpConv-S | Conv2D | nuScenes-like |

use crate::conv::{ConvKind, LayerSpec};
use crate::graph::{LayerInput, NetworkLayer, NetworkSpec};
use crate::kernel::KernelShape;
use serde::{Deserialize, Serialize};
use spade_pointcloud::dataset::DatasetKind;

/// The eleven networks evaluated by the paper (dense baselines + sparse
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Dense PointPillars on KITTI.
    Pp,
    /// PointPillars with standard SpConv backbone.
    Spp1,
    /// PointPillars with SpConv-P (dynamic vector pruning) backbone.
    Spp2,
    /// PointPillars with submanifold SpConv-S backbone.
    Spp3,
    /// Dense CenterPoint-Pillar on nuScenes.
    Cp,
    /// CenterPoint with SpConv backbone.
    Scp1,
    /// CenterPoint with SpConv-P backbone and head.
    Scp2,
    /// CenterPoint with SpConv-S backbone and SpConv-P head.
    Scp3,
    /// Fully dense PillarNet.
    PnDense,
    /// PillarNet with its sparse (SpConv-S) encoder, dense backbone/head.
    Pn,
    /// PillarNet with SpConv-S encoder and backbone.
    Spn,
}

impl ModelKind {
    /// All model kinds in the paper's Table I order.
    pub const ALL: [ModelKind; 11] = [
        ModelKind::Pp,
        ModelKind::Spp1,
        ModelKind::Spp2,
        ModelKind::Spp3,
        ModelKind::Cp,
        ModelKind::Scp1,
        ModelKind::Scp2,
        ModelKind::Scp3,
        ModelKind::PnDense,
        ModelKind::Pn,
        ModelKind::Spn,
    ];

    /// The seven *sparse* models used in the speedup/energy evaluation
    /// (Fig. 9 onwards).
    pub const SPARSE: [ModelKind; 7] = [
        ModelKind::Spp1,
        ModelKind::Spp2,
        ModelKind::Spp3,
        ModelKind::Scp1,
        ModelKind::Scp2,
        ModelKind::Scp3,
        ModelKind::Spn,
    ];

    /// The dense baseline corresponding to a sparse model.
    #[must_use]
    pub const fn dense_baseline(self) -> ModelKind {
        match self {
            ModelKind::Pp | ModelKind::Spp1 | ModelKind::Spp2 | ModelKind::Spp3 => ModelKind::Pp,
            ModelKind::Cp | ModelKind::Scp1 | ModelKind::Scp2 | ModelKind::Scp3 => ModelKind::Cp,
            ModelKind::PnDense | ModelKind::Pn | ModelKind::Spn => ModelKind::PnDense,
        }
    }

    /// Which dataset preset this model is evaluated on.
    #[must_use]
    pub const fn dataset(self) -> DatasetKind {
        match self {
            ModelKind::Pp | ModelKind::Spp1 | ModelKind::Spp2 | ModelKind::Spp3 => {
                DatasetKind::KittiLike
            }
            _ => DatasetKind::NuscenesLike,
        }
    }

    /// The paper's reported accuracy of the *dense* baseline family:
    /// `(mAP BEV or mAP, secondary metric)` — (87.42, 77.31) for PP on KITTI
    /// (BEV / 3D), (50.79, 60.55) for CP (mAP / NDS), (59.58, 66.95) for PN.
    #[must_use]
    pub const fn baseline_accuracy(self) -> (f64, f64) {
        match self.dense_baseline() {
            ModelKind::Pp => (87.42, 77.31),
            ModelKind::Cp => (50.79, 60.55),
            _ => (59.58, 66.95),
        }
    }

    /// The paper's canonical name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ModelKind::Pp => "PP",
            ModelKind::Spp1 => "SPP1",
            ModelKind::Spp2 => "SPP2",
            ModelKind::Spp3 => "SPP3",
            ModelKind::Cp => "CP",
            ModelKind::Scp1 => "SCP1",
            ModelKind::Scp2 => "SCP2",
            ModelKind::Scp3 => "SCP3",
            ModelKind::PnDense => "PN (Dense)",
            ModelKind::Pn => "PN",
            ModelKind::Spn => "SPN",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete model: its kind and the layer graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    kind: ModelKind,
    spec: NetworkSpec,
}

impl Model {
    /// Builds the layer graph for a model kind.
    #[must_use]
    pub fn build(kind: ModelKind) -> Self {
        let spec = match kind {
            ModelKind::Pp => pillars_family("PP", ConvKind::Dense, ConvKind::Dense, 64, true, None),
            ModelKind::Spp1 => {
                pillars_family("SPP1", ConvKind::SpConv, ConvKind::Dense, 64, false, None)
            }
            ModelKind::Spp2 => {
                pillars_family("SPP2", ConvKind::SpConvP, ConvKind::Dense, 64, false, None)
            }
            ModelKind::Spp3 => {
                pillars_family("SPP3", ConvKind::SpConvS, ConvKind::Dense, 64, false, None)
            }
            ModelKind::Cp => pillars_family("CP", ConvKind::Dense, ConvKind::Dense, 64, true, None),
            ModelKind::Scp1 => {
                pillars_family("SCP1", ConvKind::SpConv, ConvKind::Dense, 64, false, None)
            }
            ModelKind::Scp2 => pillars_family(
                "SCP2",
                ConvKind::SpConvP,
                ConvKind::SpConvP,
                64,
                false,
                None,
            ),
            ModelKind::Scp3 => pillars_family(
                "SCP3",
                ConvKind::SpConvS,
                ConvKind::SpConvP,
                64,
                false,
                None,
            ),
            ModelKind::PnDense => pillars_family(
                "PN (Dense)",
                ConvKind::Dense,
                ConvKind::Dense,
                32,
                true,
                Some(ConvKind::Dense),
            ),
            ModelKind::Pn => pillars_family(
                "PN",
                ConvKind::Dense,
                ConvKind::Dense,
                32,
                true,
                Some(ConvKind::SpConvS),
            ),
            ModelKind::Spn => pillars_family(
                "SPN",
                ConvKind::SpConvS,
                ConvKind::Dense,
                32,
                false,
                Some(ConvKind::SpConvS),
            ),
        };
        Self { kind, spec }
    }

    /// The model kind.
    #[must_use]
    pub const fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The layer graph.
    #[must_use]
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }
}

/// Builds the PointPillars-family layer graph shared by all models.
///
/// * `backbone_kind` — the convolution used for the stride-1 backbone layers.
/// * `head_kind` — the convolution used for the detection-head layers.
/// * `encoder_channels` — channels coming out of the pillar feature encoder.
/// * `densify` — whether the first backbone layer receives a densified
///   pseudo-image (the dense-baseline path).
/// * `pillarnet_encoder` — `Some(kind)` adds PillarNet's extra encoder stage
///   at the base resolution before the backbone.
fn pillars_family(
    name: &str,
    backbone_kind: ConvKind,
    head_kind: ConvKind,
    encoder_channels: usize,
    densify: bool,
    pillarnet_encoder: Option<ConvKind>,
) -> NetworkSpec {
    let mut layers: Vec<NetworkLayer> = Vec::new();
    let mut prev_channels = encoder_channels;
    let mut first = true;

    // PillarNet's additional sparse-conv encoder at the base resolution.
    if let Some(kind) = pillarnet_encoder {
        for i in 0..2 {
            layers.push(NetworkLayer {
                spec: LayerSpec::new(&format!("E0C{}", i + 1), kind, prev_channels, 64),
                input: LayerInput::Previous,
                stage: 0,
                densify_input: first && densify && kind == ConvKind::Dense,
            });
            prev_channels = 64;
            first = false;
        }
    }

    // Backbone: three stages, each a strided downsampling conv followed by
    // stride-1 convolutions (layer_nums = [3, 5, 5] as in PointPillars).
    let stage_channels = [64usize, 128, 256];
    let stage_layers = [3usize, 5, 5];
    let mut stage_last_idx = [0usize; 3];
    for (s, (&ch, &n)) in stage_channels.iter().zip(stage_layers.iter()).enumerate() {
        // Downsampling layer.
        layers.push(NetworkLayer {
            spec: LayerSpec::new(
                &format!("B{}C0", s + 1),
                ConvKind::SpStConv,
                prev_channels,
                ch,
            ),
            input: LayerInput::Previous,
            stage: s + 1,
            densify_input: first && densify,
        });
        first = false;
        prev_channels = ch;
        for i in 0..n {
            layers.push(NetworkLayer {
                spec: LayerSpec::new(
                    &format!("B{}C{}", s + 1, i + 1),
                    backbone_kind,
                    prev_channels,
                    ch,
                ),
                input: LayerInput::Previous,
                stage: s + 1,
                densify_input: false,
            });
        }
        stage_last_idx[s] = layers.len() - 1;
    }

    // Neck: bring each stage to the stage-1 resolution with 128 channels.
    // Stage 1 uses a 1x1 projection; stage 2 one deconv; stage 3 two deconvs.
    let neck1 = layers.len();
    layers.push(NetworkLayer {
        spec: LayerSpec::with_kernel("N1", head_kind, stage_channels[0], 128, KernelShape::k1x1()),
        input: LayerInput::Layer(stage_last_idx[0]),
        stage: 4,
        densify_input: false,
    });
    let neck2 = layers.len();
    layers.push(NetworkLayer {
        spec: LayerSpec::new("N2", ConvKind::SpDeconv, stage_channels[1], 128),
        input: LayerInput::Layer(stage_last_idx[1]),
        stage: 4,
        densify_input: false,
    });
    layers.push(NetworkLayer {
        spec: LayerSpec::new("N3a", ConvKind::SpDeconv, stage_channels[2], 128),
        input: LayerInput::Layer(stage_last_idx[2]),
        stage: 4,
        densify_input: false,
    });
    let neck3 = layers.len();
    layers.push(NetworkLayer {
        spec: LayerSpec::new("N3b", ConvKind::SpDeconv, 128, 128),
        input: LayerInput::Previous,
        stage: 4,
        densify_input: false,
    });

    // Head: three 1x1 prediction convolutions over the concatenated neck
    // features (class, box, direction branches), as in the SSD-style head of
    // PointPillars.
    for (i, branch) in ["cls", "box", "dir"].iter().enumerate() {
        layers.push(NetworkLayer {
            spec: LayerSpec::with_kernel(
                &format!("H{}_{branch}", i + 1),
                head_kind,
                384,
                64,
                KernelShape::k1x1(),
            ),
            input: LayerInput::Union(vec![neck1, neck2, neck3]),
            stage: 5,
            densify_input: false,
        });
    }

    NetworkSpec {
        name: name.to_owned(),
        encoder_channels,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build() {
        for kind in ModelKind::ALL {
            let m = Model::build(kind);
            assert_eq!(m.kind(), kind);
            assert!(m.spec().num_layers() >= 17, "{kind} too small");
        }
    }

    #[test]
    fn sparse_models_map_to_their_dense_baselines() {
        assert_eq!(ModelKind::Spp2.dense_baseline(), ModelKind::Pp);
        assert_eq!(ModelKind::Scp3.dense_baseline(), ModelKind::Cp);
        assert_eq!(ModelKind::Spn.dense_baseline(), ModelKind::PnDense);
        assert_eq!(ModelKind::Pp.dense_baseline(), ModelKind::Pp);
    }

    #[test]
    fn datasets_match_table_one() {
        assert_eq!(ModelKind::Spp1.dataset(), DatasetKind::KittiLike);
        assert_eq!(ModelKind::Scp2.dataset(), DatasetKind::NuscenesLike);
        assert_eq!(ModelKind::Spn.dataset(), DatasetKind::NuscenesLike);
    }

    #[test]
    fn dense_baselines_densify_and_sparse_do_not() {
        let pp = Model::build(ModelKind::Pp);
        assert!(pp.spec().layers.iter().any(|l| l.densify_input));
        let spp2 = Model::build(ModelKind::Spp2);
        assert!(spp2.spec().layers.iter().all(|l| !l.densify_input));
    }

    #[test]
    fn backbone_kinds_follow_table_one() {
        let find_kind = |m: &Model, name: &str| {
            m.spec()
                .layers
                .iter()
                .find(|l| l.spec.name == name)
                .map(|l| l.spec.kind)
                .unwrap()
        };
        assert_eq!(
            find_kind(&Model::build(ModelKind::Spp1), "B1C1"),
            ConvKind::SpConv
        );
        assert_eq!(
            find_kind(&Model::build(ModelKind::Spp2), "B1C1"),
            ConvKind::SpConvP
        );
        assert_eq!(
            find_kind(&Model::build(ModelKind::Spp3), "B1C1"),
            ConvKind::SpConvS
        );
        assert_eq!(
            find_kind(&Model::build(ModelKind::Pp), "B1C1"),
            ConvKind::Dense
        );
        assert_eq!(
            find_kind(&Model::build(ModelKind::Scp2), "H1_cls"),
            ConvKind::SpConvP
        );
        assert_eq!(
            find_kind(&Model::build(ModelKind::Spp2), "H1_cls"),
            ConvKind::Dense
        );
    }

    #[test]
    fn pillarnet_models_have_extra_encoder_stage() {
        let pn = Model::build(ModelKind::Pn);
        assert!(pn.spec().layers.iter().any(|l| l.stage == 0));
        let pp = Model::build(ModelKind::Pp);
        assert!(pp.spec().layers.iter().all(|l| l.stage != 0));
    }

    #[test]
    fn names_and_accuracy_constants() {
        assert_eq!(ModelKind::Spp2.to_string(), "SPP2");
        assert_eq!(ModelKind::PnDense.to_string(), "PN (Dense)");
        let (bev, three_d) = ModelKind::Spp1.baseline_accuracy();
        assert!((bev - 87.42).abs() < 1e-9);
        assert!((three_d - 77.31).abs() < 1e-9);
    }

    #[test]
    fn sparse_list_excludes_dense_baselines() {
        for k in ModelKind::SPARSE {
            assert_ne!(k, k.dense_baseline());
        }
    }
}
