//! Hash-table rule generation (SpConv GPU library style).
//!
//! The SpConv library builds the input-output mapping by hashing output
//! coordinates: every `(input, tap)` candidate output is inserted into a hash
//! table to discover the unique active outputs, and each insertion may need
//! to traverse a collision chain because many inputs contribute to the same
//! output. This module reimplements that algorithm (so its result can be
//! checked against the streaming reference) and exposes a collision-counting
//! probe useful for the cost analysis of Fig. 5(b).

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use crate::rulegen::{output_grid, streaming};
use spade_tensor::{CprTensor, PillarCoord};
use std::collections::HashMap;

/// Statistics of the hash-table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashStats {
    /// Number of insert/probe operations performed (= number of candidate
    /// rules).
    pub probes: usize,
    /// Number of probes that hit an already-occupied slot (collisions with
    /// the chained layout the SpConv library uses).
    pub collisions: usize,
    /// Number of unique output coordinates discovered.
    pub unique_outputs: usize,
}

/// Generates a rule book via the hash-table algorithm and reports probe
/// statistics.
///
/// The resulting rule book is *identical* (same outputs, same rules per tap,
/// though discovered in hash order and then re-sorted) to the streaming
/// reference; only the construction cost differs.
#[must_use]
pub fn generate_with_stats(
    input: &CprTensor,
    kind: ConvKind,
    kernel: KernelShape,
) -> (RuleBook, HashStats) {
    let out_grid = output_grid(input.grid(), kind);
    // First pass: discover unique outputs by hashing candidate coordinates.
    let mut table: HashMap<PillarCoord, usize> = HashMap::new();
    let mut probes = 0usize;
    let mut collisions = 0usize;
    let mut candidates: Vec<(usize, usize, PillarCoord)> = Vec::new();
    for (p_idx, p) in input.iter_coords().enumerate() {
        for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
            let q = match kind {
                ConvKind::SpDeconv => {
                    let q = PillarCoord::new(p.row * 2 + dr as u32, p.col * 2 + dc as u32);
                    q.in_bounds(out_grid).then_some(q)
                }
                ConvKind::SpStConv => {
                    let qr2 = i64::from(p.row) - i64::from(dr);
                    let qc2 = i64::from(p.col) - i64::from(dc);
                    if qr2 < 0 || qc2 < 0 || qr2 % 2 != 0 || qc2 % 2 != 0 {
                        None
                    } else {
                        let q = PillarCoord::new((qr2 / 2) as u32, (qc2 / 2) as u32);
                        q.in_bounds(out_grid).then_some(q)
                    }
                }
                _ => p.offset(-dr, -dc, out_grid),
            };
            let Some(q) = q else { continue };
            probes += 1;
            let next_id = table.len();
            match table.entry(q) {
                std::collections::hash_map::Entry::Occupied(_) => collisions += 1,
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(next_id);
                }
            }
            candidates.push((p_idx, tap, q));
        }
    }
    // For submanifold convolution, outputs are restricted to active inputs.
    let restrict_to_input = matches!(kind, ConvKind::SpConvS);
    let input_coords: std::collections::BTreeSet<PillarCoord> = if restrict_to_input {
        input.iter_coords().collect()
    } else {
        std::collections::BTreeSet::new()
    };

    let mut output_coords: Vec<PillarCoord> = if restrict_to_input {
        input.coords()
    } else if matches!(kind, ConvKind::Dense) {
        out_grid.all_cells()
    } else {
        // lint:allow(hash-iter): the collected keys are sorted immediately
        // below, so the hash iteration order never reaches the rule book.
        table.keys().copied().collect()
    };
    output_coords.sort();

    let stats = HashStats {
        probes,
        collisions,
        unique_outputs: output_coords.len(),
    };

    let mut book = RuleBook::new(kernel.num_taps(), out_grid, output_coords);
    let out_sorted = book.output_coords().to_vec();
    for (p_idx, tap, q) in candidates {
        if restrict_to_input && !input_coords.contains(&q) {
            continue;
        }
        if let Ok(q_idx) = out_sorted.binary_search(&q) {
            book.push(tap, p_idx, q_idx);
        }
    }
    (book, stats)
}

/// Generates a rule book via the hash-table algorithm (statistics dropped).
#[must_use]
pub fn generate(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> RuleBook {
    generate_with_stats(input, kind, kernel).0
}

/// Checks that the hash-based and streaming rule books agree (same outputs and
/// the same multiset of rules per tap).
#[must_use]
pub fn equivalent_to_streaming(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> bool {
    let a = generate(input, kind, kernel);
    let b = streaming::generate(input, kind, kernel);
    if a.output_coords() != b.output_coords() {
        return false;
    }
    for tap in 0..kernel.num_taps() {
        let mut ra: Vec<_> = a.rules_for_tap(tap).to_vec();
        let mut rb: Vec<_> = b.rules_for_tap(tap).to_vec();
        ra.sort_by_key(|r| (r.input, r.output));
        rb.sort_by_key(|r| (r.input, r.output));
        if ra != rb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::GridShape;

    fn sample() -> CprTensor {
        CprTensor::from_coords(
            GridShape::new(10, 10),
            1,
            &[
                PillarCoord::new(1, 1),
                PillarCoord::new(1, 2),
                PillarCoord::new(2, 1),
                PillarCoord::new(7, 8),
            ],
        )
    }

    #[test]
    fn hash_matches_streaming_for_all_kinds() {
        let t = sample();
        for kind in [
            ConvKind::SpConv,
            ConvKind::SpConvS,
            ConvKind::SpConvP,
            ConvKind::SpStConv,
        ] {
            assert!(
                equivalent_to_streaming(&t, kind, KernelShape::k3x3()),
                "mismatch for {kind}"
            );
        }
        assert!(equivalent_to_streaming(
            &t,
            ConvKind::SpDeconv,
            KernelShape::k2x2()
        ));
    }

    #[test]
    fn clustered_inputs_cause_collisions() {
        let t = sample();
        let (_, stats) = generate_with_stats(&t, ConvKind::SpConv, KernelShape::k3x3());
        assert!(stats.collisions > 0, "clustered pillars share outputs");
        assert!(stats.probes >= stats.unique_outputs);
    }

    #[test]
    fn isolated_input_has_no_collisions() {
        let t = CprTensor::from_coords(GridShape::new(10, 10), 1, &[PillarCoord::new(5, 5)]);
        let (_, stats) = generate_with_stats(&t, ConvKind::SpConv, KernelShape::k3x3());
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.unique_outputs, 9);
    }
}
