//! Merge-sort rule generation (PointAcc style).
//!
//! PointAcc maps sparse convolutions by sorting all candidate output
//! coordinates (one per input × kernel offset) with a bitonic merge sorter and
//! then intersecting adjacent runs to find unique outputs. This module
//! reimplements that algorithm so its rule book can be checked against the
//! streaming reference, and exposes the number of sort passes a 64-element
//! bitonic merger would need (used by the PointAcc baseline model).

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use crate::rulegen::{output_grid, streaming};
use spade_tensor::{CprTensor, PillarCoord};

/// Statistics of the sort-based construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortStats {
    /// Number of candidate entries that were sorted.
    pub sorted_entries: usize,
    /// Number of 64-element bitonic merge passes modelled.
    pub merge_passes: usize,
    /// Number of unique outputs after intersection.
    pub unique_outputs: usize,
}

/// Generates a rule book via coordinate sorting and reports sort statistics.
#[must_use]
pub fn generate_with_stats(
    input: &CprTensor,
    kind: ConvKind,
    kernel: KernelShape,
) -> (RuleBook, SortStats) {
    let out_grid = output_grid(input.grid(), kind);
    // Enumerate candidates, then sort them by output coordinate — this is the
    // work the bitonic merge network performs in hardware.
    let mut candidates: Vec<(PillarCoord, usize, usize)> = Vec::new();
    for (p_idx, p) in input.iter_coords().enumerate() {
        for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
            let q = match kind {
                ConvKind::SpDeconv => {
                    let q = PillarCoord::new(p.row * 2 + dr as u32, p.col * 2 + dc as u32);
                    q.in_bounds(out_grid).then_some(q)
                }
                ConvKind::SpStConv => {
                    let qr2 = i64::from(p.row) - i64::from(dr);
                    let qc2 = i64::from(p.col) - i64::from(dc);
                    if qr2 < 0 || qc2 < 0 || qr2 % 2 != 0 || qc2 % 2 != 0 {
                        None
                    } else {
                        let q = PillarCoord::new((qr2 / 2) as u32, (qc2 / 2) as u32);
                        q.in_bounds(out_grid).then_some(q)
                    }
                }
                _ => p.offset(-dr, -dc, out_grid),
            };
            if let Some(q) = q {
                candidates.push((q, tap, p_idx));
            }
        }
    }
    candidates.sort_by_key(|&(q, tap, p)| (q, tap, p));

    let restrict_to_input = matches!(kind, ConvKind::SpConvS);
    let input_set: std::collections::BTreeSet<PillarCoord> = if restrict_to_input {
        input.iter_coords().collect()
    } else {
        std::collections::BTreeSet::new()
    };

    let mut output_coords: Vec<PillarCoord> = if restrict_to_input {
        input.coords()
    } else if matches!(kind, ConvKind::Dense) {
        out_grid.all_cells()
    } else {
        let mut v: Vec<PillarCoord> = candidates.iter().map(|&(q, _, _)| q).collect();
        v.dedup();
        v
    };
    output_coords.sort();
    output_coords.dedup();

    let n = 64usize;
    let blocks = candidates.len().div_ceil(n).max(1);
    let merge_passes = blocks * (usize::BITS - (blocks.max(1)).leading_zeros()).max(1) as usize;
    let stats = SortStats {
        sorted_entries: candidates.len(),
        merge_passes,
        unique_outputs: output_coords.len(),
    };

    let mut book = RuleBook::new(kernel.num_taps(), out_grid, output_coords);
    let sorted_outputs = book.output_coords().to_vec();
    // Re-emit rules in (input, tap) order so monotonicity matches streaming.
    candidates.sort_by_key(|&(q, tap, p)| (p, tap, q));
    for (q, tap, p_idx) in candidates {
        if restrict_to_input && !input_set.contains(&q) {
            continue;
        }
        if let Ok(q_idx) = sorted_outputs.binary_search(&q) {
            book.push(tap, p_idx, q_idx);
        }
    }
    (book, stats)
}

/// Generates a rule book via coordinate sorting (statistics dropped).
#[must_use]
pub fn generate(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> RuleBook {
    generate_with_stats(input, kind, kernel).0
}

/// Checks agreement with the streaming reference.
#[must_use]
pub fn equivalent_to_streaming(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> bool {
    let a = generate(input, kind, kernel);
    let b = streaming::generate(input, kind, kernel);
    if a.output_coords() != b.output_coords() {
        return false;
    }
    for tap in 0..kernel.num_taps() {
        let mut ra: Vec<_> = a.rules_for_tap(tap).to_vec();
        let mut rb: Vec<_> = b.rules_for_tap(tap).to_vec();
        ra.sort_by_key(|r| (r.input, r.output));
        rb.sort_by_key(|r| (r.input, r.output));
        if ra != rb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::GridShape;

    fn sample() -> CprTensor {
        CprTensor::from_coords(
            GridShape::new(12, 12),
            1,
            &[
                PillarCoord::new(0, 0),
                PillarCoord::new(3, 3),
                PillarCoord::new(3, 4),
                PillarCoord::new(10, 11),
            ],
        )
    }

    #[test]
    fn sort_matches_streaming_for_all_kinds() {
        let t = sample();
        for kind in [
            ConvKind::SpConv,
            ConvKind::SpConvS,
            ConvKind::SpConvP,
            ConvKind::SpStConv,
        ] {
            assert!(
                equivalent_to_streaming(&t, kind, KernelShape::k3x3()),
                "mismatch for {kind}"
            );
        }
        assert!(equivalent_to_streaming(
            &t,
            ConvKind::SpDeconv,
            KernelShape::k2x2()
        ));
    }

    #[test]
    fn stats_scale_with_candidates() {
        let t = sample();
        let (_, stats) = generate_with_stats(&t, ConvKind::SpConv, KernelShape::k3x3());
        assert!(stats.sorted_entries > 0);
        assert!(stats.merge_passes >= 1);
        assert!(stats.unique_outputs > t.num_active());
    }
}
