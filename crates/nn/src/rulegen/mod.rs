//! Rule generation: mapping active inputs to active outputs.
//!
//! Three algorithms produce the *same* rule book but at very different cost,
//! which is the comparison of Fig. 5(b):
//!
//! * [`streaming`] — the paper's CPR-streaming algorithm (alignment → row
//!   merge → column-wise dilation), `O(P)`; this is the algorithmic reference
//!   implemented by SPADE's Rule Generation Unit.
//! * [`hash`] — hash-table rule generation as used by the SpConv GPU library.
//! * [`sort`] — merge-sort rule generation as used by the PointAcc
//!   accelerator (64-element bitonic merge sorter).
//!
//! [`generate_rules`] is the shared entry point used by the functional
//! convolution kernels; it delegates to the streaming algorithm. The other
//! algorithms are exposed to verify equivalence and to model their cycle
//! costs.

pub mod delta;
pub mod hash;
pub mod sort;
pub mod streaming;

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use serde::{Deserialize, Serialize};
use spade_tensor::{CprTensor, GridShape, PillarCoord};

/// Which rule-generation algorithm (and therefore cost model) to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleGenMethod {
    /// SPADE's streaming RGU algorithm (`O(P)`).
    StreamingRgu,
    /// Hash-table mapping (SpConv library style).
    HashTable,
    /// Bitonic merge-sort mapping (PointAcc style).
    MergeSort,
}

impl std::fmt::Display for RuleGenMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleGenMethod::StreamingRgu => f.write_str("RGU"),
            RuleGenMethod::HashTable => f.write_str("hash table"),
            RuleGenMethod::MergeSort => f.write_str("merge sorter"),
        }
    }
}

/// The modelled cost of generating a rule book with a particular method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleGenCost {
    /// Modelled mapping cycles.
    pub cycles: u64,
    /// Number of active input pillars.
    pub inputs: usize,
    /// Number of active output pillars.
    pub outputs: usize,
    /// Number of rules (input-output pairs across taps).
    pub rules: usize,
}

impl RuleGenMethod {
    /// Models the mapping cycles needed to produce a rule book with
    /// `inputs` active input pillars, `outputs` active outputs, and `rules`
    /// total input-output pairs.
    ///
    /// The constants are calibrated so that, on SpConv-like workloads, the
    /// streaming RGU is roughly 5.9× faster than the hash table and 3.7×
    /// faster than the merge sorter, matching the paper's Fig. 5(b).
    #[must_use]
    pub fn cost(self, inputs: usize, outputs: usize, rules: usize) -> RuleGenCost {
        let p = inputs as f64;
        let q = outputs as f64;
        let r = rules as f64;
        let cycles = match self {
            // The streaming pipeline consumes one input coordinate per cycle
            // and emits output mappings in the same pass; a short pipeline
            // fill/drain is added.
            RuleGenMethod::StreamingRgu => p.max(q) + 16.0,
            // Each candidate mapping performs a hash probe plus (on average)
            // a short chain traversal to resolve collisions between the many
            // inputs that contribute to a common output; limited insertion
            // parallelism makes this effectively serial per rule.
            RuleGenMethod::HashTable => r * 1.30 + 64.0,
            // A 64-lane bitonic merge sorter processes rules in blocks of 64:
            // cycles ≈ (R/N) · log2(N) · log2(R/N) plus the intersection pass.
            RuleGenMethod::MergeSort => {
                let n = 64.0f64;
                let blocks = (r / n).max(1.0);
                blocks * n.log2() * blocks.log2().max(1.0) + r / 8.0 + 64.0
            }
        };
        RuleGenCost {
            cycles: cycles.round() as u64,
            inputs,
            outputs,
            rules,
        }
    }

    /// Convenience: models the cost for an existing rule book.
    #[must_use]
    pub fn cost_for(self, rules: &RuleBook, inputs: usize) -> RuleGenCost {
        self.cost(inputs, rules.num_outputs(), rules.num_rules())
    }
}

/// Computes the active output coordinates of a sparse convolution, in CPR
/// order.
///
/// Dilating kinds run the fused streaming sweep (no `BTreeSet`, no sort):
/// the merged candidate streams already emit outputs in CPR order.
#[must_use]
pub fn output_coords(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> Vec<PillarCoord> {
    let grid = input.grid();
    let out_grid = output_grid(grid, kind);
    match kind {
        ConvKind::Dense => out_grid.all_cells(),
        ConvKind::SpConvS => input.coords(),
        _ => {
            let mut out = Vec::new();
            let mut streams = Vec::with_capacity(kernel.num_taps());
            streaming::fused_sweep(
                &input,
                grid,
                out_grid,
                kind,
                kernel,
                &mut streams,
                &mut streaming::CoordSink(&mut out),
            );
            out
        }
    }
}

/// The output grid shape induced by a convolution kind.
#[must_use]
pub fn output_grid(input: GridShape, kind: ConvKind) -> GridShape {
    match kind {
        ConvKind::SpStConv => input.downsample(2),
        ConvKind::SpDeconv => input.upsample(2),
        _ => input,
    }
}

/// Generates the rule book for a sparse convolution using the streaming
/// (reference) algorithm.
#[must_use]
pub fn generate_rules(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> RuleBook {
    streaming::generate(input, kind, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::GridShape;

    fn sample() -> CprTensor {
        CprTensor::from_coords(
            GridShape::new(8, 8),
            1,
            &[
                PillarCoord::new(1, 1),
                PillarCoord::new(1, 2),
                PillarCoord::new(4, 6),
                PillarCoord::new(7, 0),
            ],
        )
    }

    #[test]
    fn spconv_output_superset_of_input() {
        let t = sample();
        let out = output_coords(&t, ConvKind::SpConv, KernelShape::k3x3());
        for c in t.coords() {
            assert!(out.contains(&c));
        }
        assert!(out.len() > t.num_active());
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "output must be CPR sorted"
        );
    }

    #[test]
    fn submanifold_output_equals_input() {
        let t = sample();
        let out = output_coords(&t, ConvKind::SpConvS, KernelShape::k3x3());
        assert_eq!(out, t.coords());
    }

    #[test]
    fn strided_output_lands_on_half_grid() {
        let t = sample();
        let out = output_coords(&t, ConvKind::SpStConv, KernelShape::k3x3());
        let g = output_grid(t.grid(), ConvKind::SpStConv);
        assert_eq!(g, GridShape::new(4, 4));
        assert!(out.iter().all(|c| c.in_bounds(g)));
        assert!(!out.is_empty());
    }

    #[test]
    fn deconv_output_is_4x_input_count() {
        let t = sample();
        let out = output_coords(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(out.len(), t.num_active() * 4);
    }

    #[test]
    fn dense_output_covers_grid() {
        let t = sample();
        let out = output_coords(&t, ConvKind::Dense, KernelShape::k3x3());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn cost_ordering_matches_paper() {
        // On an SpConv-like workload (rules ≈ 9 × inputs) the RGU must be the
        // fastest, the hash table the slowest, and the merge sorter between.
        let inputs = 10_000;
        let outputs = 18_000;
        let rules = 9 * inputs;
        let rgu = RuleGenMethod::StreamingRgu
            .cost(inputs, outputs, rules)
            .cycles;
        let hashc = RuleGenMethod::HashTable.cost(inputs, outputs, rules).cycles;
        let sortc = RuleGenMethod::MergeSort.cost(inputs, outputs, rules).cycles;
        assert!(
            rgu < sortc && sortc < hashc,
            "rgu={rgu} sort={sortc} hash={hashc}"
        );
        let hash_ratio = hashc as f64 / rgu as f64;
        let sort_ratio = sortc as f64 / rgu as f64;
        assert!(
            hash_ratio > 3.0 && hash_ratio < 10.0,
            "hash ratio {hash_ratio}"
        );
        assert!(
            sort_ratio > 2.0 && sort_ratio < 7.0,
            "sort ratio {sort_ratio}"
        );
    }

    #[test]
    fn method_display() {
        assert_eq!(RuleGenMethod::StreamingRgu.to_string(), "RGU");
        assert_eq!(RuleGenMethod::HashTable.to_string(), "hash table");
        assert_eq!(RuleGenMethod::MergeSort.to_string(), "merge sorter");
    }
}
