//! The paper's streaming rule-generation algorithm (Sec. III-B), implemented
//! as a single fused sweep.
//!
//! Because the input is CPR-encoded (rows in order, columns sorted within a
//! row), every output row can be produced by looking only at the `kh` input
//! rows that overlap its receptive field:
//!
//! 1. **Alignment** — the `kh` relevant input rows are walked simultaneously.
//! 2. **Row merge** — each (input row, kernel column) pair forms one sorted
//!    stream of candidate output columns; the `kh·kw` streams are merged with
//!    a k-way comparator scan.
//! 3. **Column-wise dilation** — the merged stream yields the active output
//!    columns in ascending order, so the output coordinate set, the rule
//!    book, and the rule count all fall out of the *same* pass: a monotone
//!    output counter assigns output indices exactly as the RGU hardware does,
//!    with no hash table, no sort, and no binary search.
//!
//! Each active pillar is touched a constant number of times (once per kernel
//! tap), giving the `O(P·K)` complexity the RGU exploits; the k-way head
//! comparison is a fixed `K ≤ 9`-wide scan that hardware evaluates in
//! parallel. The crate-internal `fused_sweep` is the shared core:
//! [`generate`] drives it to build a full [`RuleBook`], while the
//! pattern-level executor ([`crate::arena::ExecutionArena`]) drives it to
//! produce output coordinates and rule counts without materialising rules.

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use crate::rulegen::output_grid;
use spade_tensor::{CprTensor, GridShape, PillarCoord};

/// Sentinel head value for a drained merge stream.
const EXHAUSTED: u32 = u32::MAX;

/// Row-indexed access to a CPR-ordered coordinate set: the global index of a
/// row's first pillar plus the row's sorted column indices.
pub(crate) trait RowSource {
    /// Returns `(global index of the first pillar in row r, columns of row r)`.
    fn row(&self, r: u32) -> (usize, &[u32]);
}

impl RowSource for &CprTensor {
    fn row(&self, r: u32) -> (usize, &[u32]) {
        (self.row_range(r).0, self.pillars_in_row(r))
    }
}

/// A [`RowSource`] over scratch `row_ptr`/`cols` buffers built from a sorted
/// coordinate slice (see [`crate::arena::ExecutionArena`]).
pub(crate) struct SliceRows<'a> {
    /// Row pointer array, `height + 1` entries.
    pub row_ptr: &'a [usize],
    /// Column index of every pillar, grouped by row.
    pub cols: &'a [u32],
}

impl RowSource for SliceRows<'_> {
    fn row(&self, r: u32) -> (usize, &[u32]) {
        let start = self.row_ptr[r as usize];
        let end = self.row_ptr[r as usize + 1];
        (start, &self.cols[start..end])
    }
}

/// One merge stream: a single (input row, kernel tap) pair emitting candidate
/// output columns in ascending order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamState {
    /// Input row this stream reads.
    row: u32,
    /// Cursor within the row's column slice.
    cursor: usize,
    /// Global CPR index of the row's first pillar.
    base: usize,
    /// Column offset (`dc`) of the tap.
    dc: i32,
    /// Kernel tap index this stream feeds.
    tap: u32,
    /// Current candidate output column ([`EXHAUSTED`] when drained).
    head: u32,
}

/// Advances `s` to its next valid candidate output column. All three column
/// maps are monotone in the input column, so candidates past the right grid
/// edge drain the stream outright.
fn settle<R: RowSource>(rows: &R, s: &mut StreamState, kind: ConvKind, out_w: u32) {
    let (_, cols) = rows.row(s.row);
    while s.cursor < cols.len() {
        let col = i64::from(cols[s.cursor]);
        let cand = match kind {
            ConvKind::SpStConv => {
                // q.col = (p.col - dc) / 2, parity permitting.
                let v = col - i64::from(s.dc);
                if v < 0 || v % 2 != 0 {
                    s.cursor += 1;
                    continue;
                }
                v / 2
            }
            ConvKind::SpDeconv => 2 * col + i64::from(s.dc),
            // Stride-1: q.col = p.col - dc.
            _ => col - i64::from(s.dc),
        };
        if cand < 0 {
            s.cursor += 1;
            continue;
        }
        if cand >= i64::from(out_w) {
            break;
        }
        s.head = cand as u32;
        return;
    }
    s.head = EXHAUSTED;
}

/// Receiver of the fused sweep's two interleaved emission feeds. All rules
/// targeting an output arrive immediately after that output's
/// [`SweepSink::output`] call (candidate streams are strictly increasing, so
/// an output column is never revisited).
pub(crate) trait SweepSink {
    /// A new active output coordinate, in ascending CPR order.
    fn output(&mut self, coord: PillarCoord);
    /// A rule `(tap, input index, output index)`.
    fn rule(&mut self, tap: usize, input: usize, output: usize);
}

/// A sink that only collects output coordinates (pattern-level execution).
pub(crate) struct CoordSink<'a>(pub &'a mut Vec<PillarCoord>);

impl SweepSink for CoordSink<'_> {
    fn output(&mut self, coord: PillarCoord) {
        self.0.push(coord);
    }
    fn rule(&mut self, _tap: usize, _input: usize, _output: usize) {}
}

/// A sink that discards everything (rule counting only).
pub(crate) struct NullSink;

impl SweepSink for NullSink {
    fn output(&mut self, _coord: PillarCoord) {}
    fn rule(&mut self, _tap: usize, _input: usize, _output: usize) {}
}

/// Streams both feeds into a [`RuleBook`].
pub(crate) struct BookSink<'a>(pub(crate) &'a mut RuleBook);

impl SweepSink for BookSink<'_> {
    fn output(&mut self, coord: PillarCoord) {
        self.0.push_output(coord);
    }
    fn rule(&mut self, tap: usize, input: usize, output: usize) {
        self.0.push(tap, input, output);
    }
}

/// The fused streaming sweep: walks every output row once, k-way-merging the
/// overlapping input rows, and emits output coordinates (in CPR order),
/// rules (`(tap, input index, output index)`), and the rule count together
/// through a single [`SweepSink`].
///
/// For [`ConvKind::SpConvS`] the output set is the input set, so
/// [`SweepSink::output`] is never called and emitted output indices refer to
/// the *input* ordering. [`ConvKind::Dense`] has no sparse structure to
/// stream and is handled by the callers directly.
///
/// Returns `(number of outputs emitted, number of rules)`.
pub(crate) fn fused_sweep<R: RowSource>(
    rows: &R,
    in_grid: GridShape,
    out_grid: GridShape,
    kind: ConvKind,
    kernel: KernelShape,
    streams: &mut Vec<StreamState>,
    sink: &mut impl SweepSink,
) -> (usize, u64) {
    let mut num_outputs = 0usize;
    let mut num_rules = 0u64;
    for o in 0..out_grid.height {
        let (row_outputs, row_rules) = sweep_output_row(
            rows,
            in_grid,
            out_grid,
            kind,
            kernel,
            streams,
            sink,
            o,
            num_outputs,
        );
        num_outputs += row_outputs;
        num_rules += row_rules;
    }
    (num_outputs, num_rules)
}

/// Sweeps a single output row `o`, emitting its outputs and rules through the
/// sink with output indices starting at `out_index_base`. Because the fused
/// sweep is row-independent (each output row only reads its own overlapping
/// input rows and emits a contiguous run of output indices), a full frame is
/// just this function applied to every row in order — and the delta path
/// ([`crate::rulegen::delta`]) applies it to *dirty* rows only, splicing the
/// results between untouched spans of the previous frame.
///
/// Returns `(outputs emitted for this row, rules emitted for this row)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_output_row<R: RowSource>(
    rows: &R,
    in_grid: GridShape,
    out_grid: GridShape,
    kind: ConvKind,
    kernel: KernelShape,
    streams: &mut Vec<StreamState>,
    sink: &mut impl SweepSink,
    o: u32,
    out_index_base: usize,
) -> (usize, u64) {
    debug_assert!(kind != ConvKind::Dense, "dense layers bypass the sweep");
    let (kh, kw) = (i64::from(kernel.kh), i64::from(kernel.kw));
    // Same centring convention as `KernelShape::offsets`.
    let centre_r = if kernel.kh % 2 == 1 {
        i64::from(kernel.kh / 2)
    } else {
        0
    };
    let centre_c = if kernel.kw % 2 == 1 {
        i64::from(kernel.kw / 2)
    } else {
        0
    };
    let submanifold = kind == ConvKind::SpConvS;
    let mut num_outputs = 0usize;
    let mut num_rules = 0u64;

    // Alignment: one stream per (overlapping input row, kernel column).
    streams.clear();
    for kr in 0..kh {
        let dr = kr - centre_r;
        let p_row: i64 = match kind {
            ConvKind::SpStConv => 2 * i64::from(o) + dr,
            ConvKind::SpDeconv => {
                // q.row = 2·p.row + dr ⇒ p.row = (o − dr) / 2.
                let v = i64::from(o) - dr;
                if v < 0 || v % 2 != 0 {
                    continue;
                }
                v / 2
            }
            _ => i64::from(o) + dr,
        };
        if p_row < 0 || p_row >= i64::from(in_grid.height) {
            continue;
        }
        let (base, cols) = rows.row(p_row as u32);
        if cols.is_empty() {
            continue;
        }
        for kc in 0..kw {
            let mut s = StreamState {
                row: p_row as u32,
                cursor: 0,
                base,
                dc: (kc - centre_c) as i32,
                tap: (kr * kw + kc) as u32,
                head: EXHAUSTED,
            };
            settle(rows, &mut s, kind, out_grid.width);
            if s.head != EXHAUSTED {
                streams.push(s);
            }
        }
    }
    if streams.is_empty() {
        return (0, 0);
    }
    // For submanifold convolution the active outputs of this row are the
    // active inputs of the same row; a forward cursor intersects the
    // merged candidate stream with them in the same pass.
    let (out_base, out_cols) = if submanifold {
        rows.row(o)
    } else {
        (0, &[][..])
    };
    let mut oc = 0usize;
    let mut last_emitted = EXHAUSTED;

    // Row merge + column-wise dilation.
    loop {
        let mut best = EXHAUSTED;
        for s in streams.iter() {
            if s.head < best {
                best = s.head;
            }
        }
        if best == EXHAUSTED {
            break;
        }
        let q_idx = if submanifold {
            while oc < out_cols.len() && out_cols[oc] < best {
                oc += 1;
            }
            (oc < out_cols.len() && out_cols[oc] == best).then(|| out_base + oc)
        } else {
            if last_emitted != best {
                sink.output(PillarCoord::new(o, best));
                num_outputs += 1;
            }
            Some(out_index_base + num_outputs - 1)
        };
        last_emitted = best;
        for s in streams.iter_mut() {
            if s.head == best {
                if let Some(q) = q_idx {
                    sink.rule(s.tap as usize, s.base + s.cursor, q);
                    num_rules += 1;
                }
                s.cursor += 1;
                settle(rows, s, kind, out_grid.width);
            }
        }
    }
    (num_outputs, num_rules)
}

/// The input rows the sweep of output row `o` reads, as an inclusive range
/// clipped to the input grid — the receptive-field ("halo") row band. Any
/// change confined to input rows outside this band cannot affect output row
/// `o`, which is the row-granular invariant the delta patcher relies on.
pub(crate) fn input_row_band(
    o: u32,
    in_grid: GridShape,
    kind: ConvKind,
    kernel: KernelShape,
) -> Option<(u32, u32)> {
    let centre_r = if kernel.kh % 2 == 1 {
        i64::from(kernel.kh / 2)
    } else {
        0
    };
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for kr in 0..i64::from(kernel.kh) {
        let dr = kr - centre_r;
        let p_row: i64 = match kind {
            ConvKind::SpStConv => 2 * i64::from(o) + dr,
            ConvKind::SpDeconv => {
                let v = i64::from(o) - dr;
                if v < 0 || v % 2 != 0 {
                    continue;
                }
                v / 2
            }
            _ => i64::from(o) + dr,
        };
        if p_row < 0 || p_row >= i64::from(in_grid.height) {
            continue;
        }
        lo = lo.min(p_row);
        hi = hi.max(p_row);
    }
    // Submanifold sweeps additionally intersect with the *output* row's own
    // input set, which sits at input row `o` — inside [lo, hi] already for
    // odd kernels, but include it defensively.
    if kind == ConvKind::SpConvS && (o as usize) < in_grid.height as usize {
        lo = lo.min(i64::from(o));
        hi = hi.max(i64::from(o));
    }
    (lo <= hi).then_some((lo as u32, hi as u32))
}

/// Generates a rule book with the fused streaming sweep: output coordinates,
/// per-tap rules, and the rule count are produced in one `O(P·K)` pass.
#[must_use]
pub fn generate(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> RuleBook {
    let out_grid = output_grid(input.grid(), kind);
    let mut streams: Vec<StreamState> = Vec::with_capacity(kernel.num_taps());
    match kind {
        ConvKind::Dense => {
            // Every grid cell is an active output, so the output index is the
            // linear cell index — no lookup of any kind.
            let mut book = RuleBook::new(kernel.num_taps(), out_grid, out_grid.all_cells());
            for (p_idx, p) in input.iter_coords().enumerate() {
                for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
                    if let Some(q) = p.offset(-dr, -dc, out_grid) {
                        book.push(tap, p_idx, q.linear_index(out_grid));
                    }
                }
            }
            book
        }
        ConvKind::SpConvS => {
            // Submanifold outputs are the inputs; indices coincide.
            let mut book = RuleBook::new(kernel.num_taps(), out_grid, input.coords());
            fused_sweep(
                &input,
                input.grid(),
                out_grid,
                kind,
                kernel,
                &mut streams,
                &mut BookSink(&mut book),
            );
            book
        }
        _ => {
            let mut book = RuleBook::streamed(kernel.num_taps(), out_grid);
            fused_sweep(
                &input,
                input.grid(),
                out_grid,
                kind,
                kernel,
                &mut streams,
                &mut BookSink(&mut book),
            );
            book
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::GridShape;

    fn sample() -> CprTensor {
        CprTensor::from_coords(
            GridShape::new(6, 6),
            1,
            &[
                PillarCoord::new(1, 1),
                PillarCoord::new(1, 4),
                PillarCoord::new(3, 3),
            ],
        )
    }

    #[test]
    fn spconv_rules_cover_all_input_tap_pairs_in_bounds() {
        let t = sample();
        let book = generate(&t, ConvKind::SpConv, KernelShape::k3x3());
        // Every (input, tap) pair whose output is in bounds yields a rule.
        // Input (1,1): all 9 in bounds. (1,4): all 9. (3,3): all 9.
        assert_eq!(book.num_rules(), 27);
        assert!(book.check_monotone());
    }

    #[test]
    fn edge_inputs_lose_out_of_bounds_rules() {
        let t = CprTensor::from_coords(GridShape::new(6, 6), 1, &[PillarCoord::new(0, 0)]);
        let book = generate(&t, ConvKind::SpConv, KernelShape::k3x3());
        // The corner input can only produce the 4 in-bounds outputs.
        assert_eq!(book.num_rules(), 4);
        assert_eq!(book.num_outputs(), 4);
    }

    #[test]
    fn submanifold_rules_only_target_active_outputs() {
        let t = sample();
        let book = generate(&t, ConvKind::SpConvS, KernelShape::k3x3());
        assert_eq!(book.num_outputs(), 3);
        // (1,1) and (1,4) are not neighbours, (3,3) is diagonal to neither
        // within a 3x3 window, so each output only sees its own centre tap.
        assert_eq!(book.num_rules(), 3);
        for tap in 0..9 {
            if tap == 4 {
                assert_eq!(book.rules_for_tap(tap).len(), 3);
            } else {
                assert_eq!(book.rules_for_tap(tap).len(), 0);
            }
        }
    }

    #[test]
    fn deconv_rules_have_no_output_overlap() {
        let t = sample();
        let book = generate(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        let mut seen = std::collections::HashSet::new();
        for tap in 0..book.num_taps() {
            for r in book.rules_for_tap(tap) {
                assert!(seen.insert(r.output), "deconv outputs must not overlap");
            }
        }
        assert_eq!(book.num_rules(), 12);
    }

    #[test]
    fn strided_rules_match_parity() {
        let t = sample();
        let book = generate(&t, ConvKind::SpStConv, KernelShape::k3x3());
        assert!(book.num_rules() > 0);
        assert_eq!(book.output_grid(), GridShape::new(3, 3));
        assert!(book.check_monotone());
    }

    #[test]
    fn fused_outputs_match_output_coords_helper() {
        let t = sample();
        for kind in [ConvKind::SpConv, ConvKind::SpStConv] {
            let book = generate(&t, kind, KernelShape::k3x3());
            let outs = crate::rulegen::output_coords(&t, kind, KernelShape::k3x3());
            assert_eq!(book.output_coords(), &outs[..], "kind {kind}");
        }
        let book = generate(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        let outs = crate::rulegen::output_coords(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        assert_eq!(book.output_coords(), &outs[..]);
    }

    #[test]
    fn one_by_one_kernels_stream_correctly() {
        let t = sample();
        let book = generate(&t, ConvKind::SpConv, KernelShape::k1x1());
        // A 1x1 SpConv maps each input onto itself.
        assert_eq!(book.num_rules(), t.num_active());
        assert_eq!(book.num_outputs(), t.num_active());
        assert_eq!(book.output_coords(), &t.coords()[..]);
        assert!(book.check_monotone());
    }

    #[test]
    fn empty_input_yields_empty_book() {
        let t = CprTensor::empty(GridShape::new(8, 8), 1);
        for kind in [ConvKind::SpConv, ConvKind::SpConvS, ConvKind::SpStConv] {
            let book = generate(&t, kind, KernelShape::k3x3());
            assert_eq!(book.num_rules(), 0, "kind {kind}");
            assert_eq!(book.num_outputs(), 0, "kind {kind}");
        }
    }
}
