//! The paper's streaming rule-generation algorithm (Sec. III-B).
//!
//! Because the input is CPR-encoded (rows in order, columns sorted within a
//! row), the rule for every output row can be produced by looking only at the
//! `kh` input rows that overlap its receptive field:
//!
//! 1. **Alignment** — the `kh` relevant input rows are walked simultaneously.
//! 2. **Row merge** — their column indices are merged into one sorted stream.
//! 3. **Column-wise dilation** — each merged column is dilated by the kernel
//!    width to enumerate the active output columns, and the (input, tap,
//!    output) triples are emitted in ascending output order.
//!
//! The whole process touches every active pillar a constant number of times,
//! giving the `O(P)` complexity that the RGU hardware exploits.

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use crate::rulegen::{output_coords, output_grid};
use spade_tensor::{CprTensor, PillarCoord};

/// Generates a rule book by streaming the CPR structure row by row.
#[must_use]
pub fn generate(input: &CprTensor, kind: ConvKind, kernel: KernelShape) -> RuleBook {
    let out_grid = output_grid(input.grid(), kind);
    let outputs = output_coords(input, kind, kernel);
    let mut book = RuleBook::new(kernel.num_taps(), out_grid, outputs);
    // Index from output coordinate to output index; because outputs are in CPR
    // order this is a sorted slice, so lookups are binary searches (the
    // hardware instead exploits monotonicity to track indices with counters).
    let out_coords = book.output_coords().to_vec();
    let find_output =
        |coord: PillarCoord| -> Option<usize> { out_coords.binary_search(&coord).ok() };

    match kind {
        ConvKind::SpDeconv => {
            for (p_idx, p) in input.iter_coords().enumerate() {
                for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
                    let q = PillarCoord::new(p.row * 2 + dr as u32, p.col * 2 + dc as u32);
                    if !q.in_bounds(out_grid) {
                        continue;
                    }
                    if let Some(q_idx) = find_output(q) {
                        book.push(tap, p_idx, q_idx);
                    }
                }
            }
        }
        ConvKind::SpStConv => {
            for (p_idx, p) in input.iter_coords().enumerate() {
                for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
                    let qr2 = i64::from(p.row) - i64::from(dr);
                    let qc2 = i64::from(p.col) - i64::from(dc);
                    if qr2 < 0 || qc2 < 0 || qr2 % 2 != 0 || qc2 % 2 != 0 {
                        continue;
                    }
                    let q = PillarCoord::new((qr2 / 2) as u32, (qc2 / 2) as u32);
                    if !q.in_bounds(out_grid) {
                        continue;
                    }
                    if let Some(q_idx) = find_output(q) {
                        book.push(tap, p_idx, q_idx);
                    }
                }
            }
        }
        _ => {
            // Stride-1 convolutions (dense, SpConv, SpConv-S, SpConv-P): an
            // input at p contributes to output q = p - offset through the tap
            // with that offset.
            for (p_idx, p) in input.iter_coords().enumerate() {
                for (tap, (dr, dc)) in kernel.offsets().into_iter().enumerate() {
                    if let Some(q) = p.offset(-dr, -dc, out_grid) {
                        if let Some(q_idx) = find_output(q) {
                            book.push(tap, p_idx, q_idx);
                        }
                    }
                }
            }
        }
    }
    book
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::GridShape;

    fn sample() -> CprTensor {
        CprTensor::from_coords(
            GridShape::new(6, 6),
            1,
            &[
                PillarCoord::new(1, 1),
                PillarCoord::new(1, 4),
                PillarCoord::new(3, 3),
            ],
        )
    }

    #[test]
    fn spconv_rules_cover_all_input_tap_pairs_in_bounds() {
        let t = sample();
        let book = generate(&t, ConvKind::SpConv, KernelShape::k3x3());
        // Every (input, tap) pair whose output is in bounds yields a rule.
        // Input (1,1): all 9 in bounds. (1,4): all 9. (3,3): all 9.
        assert_eq!(book.num_rules(), 27);
        assert!(book.check_monotone());
    }

    #[test]
    fn edge_inputs_lose_out_of_bounds_rules() {
        let t = CprTensor::from_coords(GridShape::new(6, 6), 1, &[PillarCoord::new(0, 0)]);
        let book = generate(&t, ConvKind::SpConv, KernelShape::k3x3());
        // The corner input can only produce the 4 in-bounds outputs.
        assert_eq!(book.num_rules(), 4);
        assert_eq!(book.num_outputs(), 4);
    }

    #[test]
    fn submanifold_rules_only_target_active_outputs() {
        let t = sample();
        let book = generate(&t, ConvKind::SpConvS, KernelShape::k3x3());
        assert_eq!(book.num_outputs(), 3);
        // (1,1) and (1,4) are not neighbours, (3,3) is diagonal to neither
        // within a 3x3 window, so each output only sees its own centre tap.
        assert_eq!(book.num_rules(), 3);
        for tap in 0..9 {
            if tap == 4 {
                assert_eq!(book.rules_for_tap(tap).len(), 3);
            } else {
                assert_eq!(book.rules_for_tap(tap).len(), 0);
            }
        }
    }

    #[test]
    fn deconv_rules_have_no_output_overlap() {
        let t = sample();
        let book = generate(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        let mut seen = std::collections::HashSet::new();
        for tap in 0..book.num_taps() {
            for r in book.rules_for_tap(tap) {
                assert!(seen.insert(r.output), "deconv outputs must not overlap");
            }
        }
        assert_eq!(book.num_rules(), 12);
    }

    #[test]
    fn strided_rules_match_parity() {
        let t = sample();
        let book = generate(&t, ConvKind::SpStConv, KernelShape::k3x3());
        assert!(book.num_rules() > 0);
        assert_eq!(book.output_grid(), GridShape::new(3, 3));
        assert!(book.check_monotone());
    }
}
