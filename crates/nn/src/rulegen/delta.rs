//! Delta rule generation: incrementally patch the previous frame's rule
//! structures instead of regenerating them from scratch.
//!
//! Consecutive frames of a persistent drive share most of their active
//! pillars (PR 5 measures ~0.88 consecutive-frame overlap on scripted
//! scenarios), yet the fused sweep ([`crate::rulegen::streaming`]) rebuilds
//! every output row of every layer each frame. The fused sweep is
//! row-independent — output row `o` reads only the input rows inside its
//! receptive-field band (`input_row_band`) and emits a contiguous run of
//! output indices — so a
//! frame-to-frame change confined to a few input rows can only affect the
//! output rows whose halo band touches them. The delta path exploits
//! exactly that:
//!
//! 1. **Coord diff** — consecutive frames' CPR coord sets are compared with
//!    a merge walk (both sides already sorted, the same shape as
//!    `PillarizedCloud::pillar_overlap`); a *dirty* input row is one whose
//!    column set changed.
//! 2. **Halo rows** — an output row is dirty iff any input row in its
//!    receptive-field band is dirty.
//! 3. **Patch** — dirty output rows are re-swept with the streaming
//!    module's `sweep_output_row`; clean rows are spliced from the previous
//!    frame's book with two uniform index shifts (outputs shift by the
//!    insertions/removals in earlier output rows, inputs by the shift of
//!    the one input row feeding that `(tap, output row)` pair).
//! 4. **Fallback** — when the changed fraction exceeds the
//!    [`DeltaPolicy`] threshold (always for frame 0 and i.i.d. drives,
//!    where overlap is near zero), the full sweep runs instead; the delta
//!    path never pays more than one extra merge walk.
//!
//! Byte-identity with the full sweep is structural, not approximate: the
//! sweep emits exactly one rule per `(tap, output)` pair, per-tap rules in
//! ascending output order, and each output row as one contiguous index
//! run — so splicing clean rows between freshly swept dirty rows
//! reproduces the full sweep's emission order *exactly*. The property
//! tests pin [`patch_rule_book`] against the [`generate`] oracle on every
//! frame of every named drive scenario.
//!
//! [`FrameDeltaState`] carries the cross-frame caches for the
//! pattern-level executor ([`crate::graph::execute_pattern_delta`]): the
//! previous frame's per-layer inputs, dilated outputs, per-row rule
//! counts, and row spans, plus the scratch buffers the splice reuses so
//! the steady-state delta path allocates nothing per frame.

use crate::conv::ConvKind;
use crate::kernel::KernelShape;
use crate::rule::RuleBook;
use crate::rulegen::output_grid;
use crate::rulegen::streaming::{
    generate, input_row_band, sweep_output_row, BookSink, StreamState,
};
use serde::{Deserialize, Serialize};
use spade_tensor::{CprTensor, GridShape, PillarCoord};
use std::sync::Arc;

/// When to take the delta path instead of a full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaPolicy {
    /// Maximum changed fraction (see [`changed_fraction`]) at which the
    /// delta path still runs; above it the full sweep is cheaper than
    /// patching. Frames *at* the threshold take the delta path.
    pub threshold: f64,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        // Persistent scripted drives measure ~0.1 changed fraction between
        // consecutive frames; i.i.d. drives measure ~1.0. Anything near the
        // middle means most rows are dirty and the splice saves little.
        Self { threshold: 0.35 }
    }
}

impl DeltaPolicy {
    /// Whether a frame with the given changed fraction takes the delta path.
    #[must_use]
    pub fn accepts(&self, fraction: f64) -> bool {
        fraction <= self.threshold
    }
}

/// The fraction of active pillars that changed between two sorted coord
/// sets: `|symmetric difference| / max(|prev|, |next|, 1)`, a single merge
/// walk over the two CPR-ordered slices. Ranges over `[0, 2]` (a fully
/// disjoint pair counts both its additions and removals).
#[must_use]
pub fn changed_fraction(prev: &[PillarCoord], next: &[PillarCoord]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < prev.len() && j < next.len() {
        match prev[i].cmp(&next[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let changed = (prev.len() - inter) + (next.len() - inter);
    changed as f64 / prev.len().max(next.len()).max(1) as f64
}

/// [`changed_fraction`] over two CPR tensors on the same grid, walking the
/// per-row column slices instead of materialising coordinate vectors.
#[must_use]
pub fn changed_fraction_cpr(prev: &CprTensor, next: &CprTensor) -> f64 {
    debug_assert_eq!(prev.grid(), next.grid());
    let mut inter = 0usize;
    for r in 0..prev.grid().height {
        let a = prev.pillars_in_row(r);
        let b = next.pillars_in_row(r);
        let mut i = 0;
        let mut j = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    let (p, n) = (prev.num_active(), next.num_active());
    let changed = (p - inter) + (n - inter);
    changed as f64 / p.max(n).max(1) as f64
}

/// Incrementally patches `prev_book` (the rule book `generate` produced for
/// `prev_in`) into the rule book for `next_in`, re-sweeping only the output
/// rows whose receptive-field band contains a changed input row.
///
/// The result is byte-identical to `generate(next_in, kind, kernel)`
/// regardless of how much changed; the *cost* scales with the number of
/// dirty output rows. [`ConvKind::Dense`] has no sparse structure to patch
/// and falls through to the full generator.
///
/// # Panics
///
/// Panics if the two frames' grids differ (a drive's BEV grid is fixed).
#[must_use]
pub fn patch_rule_book(
    prev_in: &CprTensor,
    prev_book: &RuleBook,
    next_in: &CprTensor,
    kind: ConvKind,
    kernel: KernelShape,
) -> RuleBook {
    assert_eq!(
        prev_in.grid(),
        next_in.grid(),
        "delta patching requires a stable grid across frames"
    );
    if kind == ConvKind::Dense {
        return generate(next_in, kind, kernel);
    }
    let in_grid = next_in.grid();
    let out_grid = output_grid(in_grid, kind);
    let taps = kernel.num_taps();
    debug_assert_eq!(prev_book.output_grid(), out_grid);
    debug_assert_eq!(prev_book.num_taps(), taps);
    let submanifold = kind == ConvKind::SpConvS;

    // Coord diff: a dirty input row is one whose column set changed.
    let dirty_in: Vec<bool> = (0..in_grid.height)
        .map(|r| prev_in.pillars_in_row(r) != next_in.pillars_in_row(r))
        .collect();

    // Row spans over the previous book's outputs (they are CPR-ordered).
    let mut prev_out_ptr = vec![0usize; out_grid.height as usize + 1];
    for c in prev_book.output_coords() {
        prev_out_ptr[c.row as usize + 1] += 1;
    }
    for r in 0..out_grid.height as usize {
        prev_out_ptr[r + 1] += prev_out_ptr[r];
    }

    let mut book = if submanifold {
        // Submanifold outputs are the inputs; indices coincide.
        RuleBook::new(taps, out_grid, next_in.coords())
    } else {
        RuleBook::streamed(taps, out_grid)
    };
    let mut streams: Vec<StreamState> = Vec::with_capacity(taps);
    // One forward cursor per tap over the previous book's rules: per-tap
    // rules are in ascending output order, so each row's rules form the
    // next contiguous run.
    let mut cursors = vec![0usize; taps];
    let kw = i64::from(kernel.kw);
    let centre_r = if kernel.kh % 2 == 1 {
        i64::from(kernel.kh / 2)
    } else {
        0
    };

    for o in 0..out_grid.height {
        let span = (prev_out_ptr[o as usize], prev_out_ptr[o as usize + 1]);
        let dirty = input_row_band(o, in_grid, kind, kernel)
            .is_some_and(|(lo, hi)| (lo..=hi).any(|r| dirty_in[r as usize]));
        if dirty {
            // Halo hit: re-sweep the row against the new frame and discard
            // the previous book's superseded rules for it.
            let base = book.num_outputs();
            sweep_output_row(
                &next_in,
                in_grid,
                out_grid,
                kind,
                kernel,
                &mut streams,
                &mut BookSink(&mut book),
                o,
                base,
            );
            for (tap, cursor) in cursors.iter_mut().enumerate() {
                let rules = prev_book.rules_for_tap(tap);
                while *cursor < rules.len() && rules[*cursor].output < span.1 {
                    *cursor += 1;
                }
            }
        } else {
            // Clean row: splice the previous frame's outputs and rules in.
            // Within one (tap, output row) all rules read the same input
            // row and target this output row, so a single pair of index
            // shifts re-bases them onto the new frame's CPR orderings.
            let out_base = book.num_outputs();
            if !submanifold {
                for &c in &prev_book.output_coords()[span.0..span.1] {
                    book.push_output(c);
                }
            }
            for (tap, cursor) in cursors.iter_mut().enumerate() {
                let rules = prev_book.rules_for_tap(tap);
                if *cursor >= rules.len() || rules[*cursor].output >= span.1 {
                    continue;
                }
                let dr = tap as i64 / kw - centre_r;
                let p_row = match kind {
                    ConvKind::SpStConv => 2 * i64::from(o) + dr,
                    ConvKind::SpDeconv => (i64::from(o) - dr) / 2,
                    _ => i64::from(o) + dr,
                };
                debug_assert!(
                    p_row >= 0 && p_row < i64::from(in_grid.height),
                    "a clean row with rules has its feeding input row in bounds"
                );
                let p = p_row as u32;
                let in_shift = next_in.row_range(p).0 as i64 - prev_in.row_range(p).0 as i64;
                let out_shift = if submanifold {
                    next_in.row_range(o).0 as i64 - prev_in.row_range(o).0 as i64
                } else {
                    out_base as i64 - span.0 as i64
                };
                while *cursor < rules.len() && rules[*cursor].output < span.1 {
                    let r = rules[*cursor];
                    book.push(
                        tap,
                        (r.input as i64 + in_shift) as usize,
                        (r.output as i64 + out_shift) as usize,
                    );
                    *cursor += 1;
                }
            }
        }
    }
    book
}

/// Patches when the policy accepts the frame-to-frame change, otherwise
/// regenerates. Returns the book and whether the delta path ran — the
/// boundary cases (fraction exactly at threshold, empty frame, fully
/// changed frame) are pinned through this wrapper.
#[must_use]
pub fn generate_or_patch(
    policy: DeltaPolicy,
    prev: Option<(&CprTensor, &RuleBook)>,
    next: &CprTensor,
    kind: ConvKind,
    kernel: KernelShape,
) -> (RuleBook, bool) {
    if kind != ConvKind::Dense {
        if let Some((prev_in, prev_book)) = prev {
            if prev_in.grid() == next.grid() && policy.accepts(changed_fraction_cpr(prev_in, next))
            {
                return (
                    patch_rule_book(prev_in, prev_book, next, kind, kernel),
                    true,
                );
            }
        }
    }
    (generate(next, kind, kernel), false)
}

/// Deterministic counters of what the delta path did over a drive.
///
/// `modelled_speedup` is the rulegen-row ratio (rows a full per-frame sweep
/// would walk over rows actually swept) — a pure function of the frame
/// stream, so it is identical across `--jobs` settings, unlike wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Frames executed through a delta-capable entry point.
    pub frames_total: usize,
    /// Frames that took the delta path (vs full-sweep fallback).
    pub frames_delta: usize,
    /// Layer executions served wholesale from the previous frame (input
    /// unchanged).
    pub layers_reused: usize,
    /// Layer executions row-spliced (some rows re-swept, the rest copied).
    pub layers_patched: usize,
    /// Layer executions that ran the full sweep (fallback or first frame).
    pub layers_full: usize,
    /// Output rows a from-scratch sweep of every frame would have walked.
    pub rows_full_equivalent: u64,
    /// Output rows actually re-swept.
    pub rows_swept: u64,
}

impl DeltaStats {
    /// Rulegen work ratio: rows a full sweep would walk over rows swept.
    /// `1.0` when nothing ran.
    #[must_use]
    pub fn modelled_speedup(&self) -> f64 {
        if self.rows_full_equivalent == 0 {
            return 1.0;
        }
        self.rows_full_equivalent as f64 / self.rows_swept.max(1) as f64
    }

    /// Folds another drive's counters into this one (per-model aggregation
    /// in the DSE sweep).
    pub fn merge(&mut self, other: &DeltaStats) {
        self.frames_total += other.frames_total;
        self.frames_delta += other.frames_delta;
        self.layers_reused += other.layers_reused;
        self.layers_patched += other.layers_patched;
        self.layers_full += other.layers_full;
        self.rows_full_equivalent += other.rows_full_equivalent;
        self.rows_swept += other.rows_swept;
    }
}

/// Per-layer cross-frame cache: the previous frame's inputs and outputs of
/// one layer, with the row structure needed to splice rows.
#[derive(Debug, Default)]
pub(crate) struct LayerDeltaCache {
    /// The layer's input coords last frame.
    pub(crate) input: Option<Arc<[PillarCoord]>>,
    /// Row pointer over `input` (`height + 1` entries).
    pub(crate) in_row_ptr: Vec<usize>,
    /// The dilated (pre-pruning) output coords last frame.
    pub(crate) dilated: Option<Arc<[PillarCoord]>>,
    /// Row pointer over `dilated` (`out height + 1` entries).
    pub(crate) out_row_ptr: Vec<usize>,
    /// Rule count of each output row last frame.
    pub(crate) row_rules: Vec<u64>,
    /// Total rule count last frame.
    pub(crate) rules: u64,
    /// The post-pruning output coords last frame (equals `dilated` for
    /// non-pruning kinds) — kept so an unchanged pruned output reuses the
    /// same `Arc` and downstream layers see pointer-equal inputs.
    pub(crate) output: Option<Arc<[PillarCoord]>>,
}

impl LayerDeltaCache {
    /// Whether the cache holds a complete previous-frame snapshot.
    pub(crate) fn is_populated(&self) -> bool {
        self.input.is_some()
    }
}

/// Cross-frame state for [`crate::graph::execute_pattern_delta`]: one
/// drive's rolling cache of the previous frame plus the scratch buffers the
/// row splice reuses. Feed frames of **one** drive in order through a single
/// state; the executor resets the caches automatically if the network or
/// grid changes underneath it.
#[derive(Debug)]
pub struct FrameDeltaState {
    /// Fallback policy.
    pub(crate) policy: DeltaPolicy,
    /// Running counters (never reset by cache invalidation).
    pub(crate) stats: DeltaStats,
    /// The previous frame's normalised initial coords.
    pub(crate) prev_initial: Option<Arc<[PillarCoord]>>,
    /// Grid the caches were recorded on.
    pub(crate) grid: Option<GridShape>,
    /// Fingerprint of the network the caches were recorded for (layer
    /// count; specs are static per model).
    pub(crate) num_layers: Option<usize>,
    /// Per-layer caches, indexed like the pattern's layer list.
    pub(crate) layers: Vec<LayerDeltaCache>,
    /// Scratch: dirty flag per input row of the current layer.
    pub(crate) dirty_in: Vec<bool>,
    /// Scratch: the spliced output coords being staged.
    pub(crate) staged_coords: Vec<PillarCoord>,
    /// Scratch: row pointer being staged alongside `staged_coords`.
    pub(crate) staged_row_ptr: Vec<usize>,
    /// Scratch: per-row rule counts being staged.
    pub(crate) staged_row_rules: Vec<u64>,
}

impl FrameDeltaState {
    /// A fresh state with the given fallback policy.
    #[must_use]
    pub fn new(policy: DeltaPolicy) -> Self {
        Self {
            policy,
            stats: DeltaStats::default(),
            prev_initial: None,
            grid: None,
            num_layers: None,
            layers: Vec::new(),
            dirty_in: Vec::new(),
            staged_coords: Vec::new(),
            staged_row_ptr: Vec::new(),
            staged_row_rules: Vec::new(),
        }
    }

    /// The fallback policy.
    #[must_use]
    pub fn policy(&self) -> DeltaPolicy {
        self.policy
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Returns the counters accumulated since the last take and resets
    /// them (the frame caches are untouched). This is the hand-off a
    /// long-lived owner uses to fold one state's recent activity into an
    /// aggregate — e.g. `spade-serve` keeps one state per (drive, model)
    /// stream and drains each state's counters into its service-wide
    /// [`DeltaStats`] after every frame, without double counting and
    /// without giving up the state's warm caches.
    pub fn take_stats(&mut self) -> DeltaStats {
        std::mem::take(&mut self.stats)
    }

    /// Drops the cached previous frame (the counters survive). The next
    /// frame runs the full path and re-records.
    pub fn invalidate(&mut self) {
        self.prev_initial = None;
        self.grid = None;
        self.num_layers = None;
        for layer in &mut self.layers {
            *layer = LayerDeltaCache::default();
        }
    }

    /// Capacities of the reusable scratch buffers — pinned by the arena
    /// test that asserts the steady-state delta path stops allocating.
    #[must_use]
    pub fn scratch_capacities(&self) -> [usize; 4] {
        [
            self.dirty_in.capacity(),
            self.staged_coords.capacity(),
            self.staged_row_ptr.capacity(),
            self.staged_row_rules.capacity(),
        ]
    }
}

impl Default for FrameDeltaState {
    fn default() -> Self {
        Self::new(DeltaPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_stats_drains_counters_but_keeps_the_frame_cache() {
        let mut state = FrameDeltaState::default();
        state.stats.frames_total = 3;
        state.stats.frames_delta = 2;
        state.prev_initial = Some(Arc::from(&[PillarCoord::new(1, 1)][..]));
        let taken = state.take_stats();
        assert_eq!(taken.frames_total, 3);
        assert_eq!(taken.frames_delta, 2);
        // Counters reset; the cached previous frame survives, so the next
        // frame can still take the delta path.
        assert_eq!(state.stats(), DeltaStats::default());
        assert!(state.prev_initial.is_some());
    }

    fn tensor(grid: GridShape, coords: &[(u32, u32)]) -> CprTensor {
        let coords: Vec<PillarCoord> = coords
            .iter()
            .map(|&(r, c)| PillarCoord::new(r, c))
            .collect();
        CprTensor::from_coords(grid, 1, &coords)
    }

    /// Deterministic pseudo-random coord set: dense enough to exercise
    /// multi-pillar rows, sparse enough to leave empty rows.
    fn seeded_coords(grid: GridShape, seed: u64, target: usize) -> Vec<PillarCoord> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut out = Vec::with_capacity(target);
        for _ in 0..target {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let r = (s >> 16) as u32 % grid.height;
            let c = (s >> 40) as u32 % grid.width;
            out.push(PillarCoord::new(r, c));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Moves a handful of pillars between frames, mimicking a coherent drive.
    fn perturb(
        grid: GridShape,
        coords: &[PillarCoord],
        seed: u64,
        moves: usize,
    ) -> Vec<PillarCoord> {
        let mut out = coords.to_vec();
        let extra = seeded_coords(grid, seed, moves);
        for (i, e) in extra.into_iter().enumerate() {
            if i % 2 == 0 {
                out.push(e);
            } else if !out.is_empty() {
                let idx = (seed as usize).wrapping_add(i * 7) % out.len();
                out.remove(idx);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn all_kinds() -> [(ConvKind, KernelShape); 9] {
        [
            (ConvKind::SpConv, KernelShape::k3x3()),
            (ConvKind::SpConvS, KernelShape::k3x3()),
            (ConvKind::SpConvP, KernelShape::k3x3()),
            (ConvKind::SpStConv, KernelShape::k3x3()),
            (ConvKind::SpDeconv, KernelShape::k2x2()),
            (ConvKind::Dense, KernelShape::k3x3()),
            (ConvKind::SpConv, KernelShape::k1x1()),
            (ConvKind::SpConvS, KernelShape::k1x1()),
            (ConvKind::SpStConv, KernelShape::k1x1()),
        ]
    }

    #[test]
    fn patched_books_match_the_full_sweep_oracle() {
        let grid = GridShape::new(32, 32);
        for seed in 0..8u64 {
            let prev_coords = seeded_coords(grid, seed + 1, 90);
            let next_coords = perturb(grid, &prev_coords, seed + 100, 12);
            let prev = CprTensor::from_coords(grid, 1, &prev_coords);
            let next = CprTensor::from_coords(grid, 1, &next_coords);
            for (kind, kernel) in all_kinds() {
                let prev_book = generate(&prev, kind, kernel);
                let patched = patch_rule_book(&prev, &prev_book, &next, kind, kernel);
                let oracle = generate(&next, kind, kernel);
                assert_eq!(patched, oracle, "seed {seed} kind {kind} kernel {kernel:?}");
            }
        }
    }

    #[test]
    fn patching_handles_total_change_and_emptiness() {
        let grid = GridShape::new(16, 16);
        let a = tensor(grid, &[(1, 1), (1, 5), (7, 7), (12, 3)]);
        let b = tensor(grid, &[(2, 2), (9, 9), (14, 14)]); // fully disjoint
        let empty = CprTensor::empty(grid, 1);
        for (kind, kernel) in all_kinds() {
            for (prev, next) in [(&a, &b), (&a, &empty), (&empty, &a), (&empty, &empty)] {
                let prev_book = generate(prev, kind, kernel);
                let patched = patch_rule_book(prev, &prev_book, next, kind, kernel);
                assert_eq!(patched, generate(next, kind, kernel), "kind {kind}");
            }
        }
    }

    #[test]
    fn identical_frames_patch_to_an_identical_book() {
        let grid = GridShape::new(24, 24);
        let coords = seeded_coords(grid, 5, 60);
        let t = CprTensor::from_coords(grid, 1, &coords);
        for (kind, kernel) in all_kinds() {
            let book = generate(&t, kind, kernel);
            assert_eq!(patch_rule_book(&t, &book, &t, kind, kernel), book);
        }
    }

    #[test]
    fn changed_fraction_is_a_merge_walk_symdiff() {
        let a = [
            PillarCoord::new(0, 0),
            PillarCoord::new(1, 1),
            PillarCoord::new(2, 2),
        ];
        let b = [
            PillarCoord::new(0, 0),
            PillarCoord::new(1, 2),
            PillarCoord::new(2, 2),
        ];
        // One removed + one added over max size 3.
        assert!((changed_fraction(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(changed_fraction(&a, &a), 0.0);
        assert_eq!(changed_fraction(&[], &[]), 0.0);
        assert_eq!(changed_fraction(&a, &[]), 1.0);
        // Fully disjoint sets count both sides of the symmetric difference.
        let c = [PillarCoord::new(5, 5)];
        assert!((changed_fraction(&a, &c) - 4.0 / 3.0).abs() < 1e-12);
        // The CPR walk agrees with the slice walk.
        let grid = GridShape::new(8, 8);
        let ta = CprTensor::from_coords(grid, 1, &a);
        let tb = CprTensor::from_coords(grid, 1, &b);
        assert!((changed_fraction_cpr(&ta, &tb) - changed_fraction(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn policy_boundary_is_inclusive() {
        let policy = DeltaPolicy { threshold: 0.25 };
        assert!(policy.accepts(0.25), "exactly at threshold takes delta");
        assert!(!policy.accepts(0.25 + 1e-9));
        let grid = GridShape::new(8, 8);
        // prev has 4 coords, next removes exactly one: fraction 1/4.
        let prev = tensor(grid, &[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let next = tensor(grid, &[(1, 1), (2, 2), (3, 3)]);
        let kind = ConvKind::SpConv;
        let kernel = KernelShape::k3x3();
        let prev_book = generate(&prev, kind, kernel);
        let (book, used_delta) =
            generate_or_patch(policy, Some((&prev, &prev_book)), &next, kind, kernel);
        assert!(used_delta, "fraction exactly at threshold must patch");
        assert_eq!(book, generate(&next, kind, kernel));
        // A fully-changed frame falls back.
        let far = tensor(grid, &[(6, 6), (7, 7)]);
        let (book, used_delta) =
            generate_or_patch(policy, Some((&prev, &prev_book)), &far, kind, kernel);
        assert!(!used_delta, "fully changed frame must fall back");
        assert_eq!(book, generate(&far, kind, kernel));
        // No previous frame falls back.
        let (_, used_delta) = generate_or_patch(policy, None, &next, kind, kernel);
        assert!(!used_delta);
    }

    #[test]
    fn stats_speedup_is_the_row_ratio() {
        let mut s = DeltaStats::default();
        assert_eq!(s.modelled_speedup(), 1.0);
        s.rows_full_equivalent = 100;
        s.rows_swept = 10;
        assert!((s.modelled_speedup() - 10.0).abs() < 1e-12);
        let mut t = DeltaStats {
            frames_total: 2,
            frames_delta: 1,
            ..DeltaStats::default()
        };
        t.merge(&s);
        assert_eq!(t.rows_full_equivalent, 100);
        assert_eq!(t.frames_total, 2);
    }

    #[test]
    fn delta_state_invalidation_keeps_counters() {
        let mut state = FrameDeltaState::default();
        state.stats.frames_total = 3;
        state.layers.push(LayerDeltaCache {
            input: Some(Arc::from(&[PillarCoord::new(0, 0)][..])),
            ..LayerDeltaCache::default()
        });
        assert!(state.layers[0].is_populated());
        state.invalidate();
        assert!(!state.layers[0].is_populated());
        assert_eq!(state.stats().frames_total, 3);
        assert!(state.scratch_capacities().iter().all(|&c| c == 0));
    }
}
