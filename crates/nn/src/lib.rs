//! # spade-nn
//!
//! Sparse-convolution algorithms, rule generation, dynamic vector pruning, and
//! the pillar-based 3D-object-detection model zoo for the SPADE reproduction
//! (HPCA 2024).
//!
//! This crate is the *algorithm* half of the paper:
//!
//! * [`kernel`] — convolution kernel geometry, seeded int8 weights, and the
//!   stride-pattern weight groups used by the weight-grouping dataflow
//!   optimisation.
//! * [`rule`] — the *rule book*: the explicit `(input, weight, output)` index
//!   mapping that sparse convolution executes from.
//! * [`rulegen`] — three rule-generation algorithms: the paper's streaming
//!   CPR-based algorithm (the RGU's algorithmic reference, `O(P)`), a
//!   hash-table algorithm (as used by the SpConv GPU library), and a
//!   merge-sort algorithm (as used by the PointAcc accelerator), each with a
//!   cycle-cost model for Fig. 5(b) — plus [`rulegen::delta`], which patches
//!   the previous frame's rule structures instead of regenerating them when
//!   consecutive frames of a drive overlap (temporal delta execution).
//! * [`conv`] — sparse convolution variants (SpConv, SpConv-S, SpConv-P,
//!   strided SpConv, SpDeconv) and a dense reference, executed functionally on
//!   CPR tensors.
//! * [`encoder`] — the PointNet-lite pillar feature encoder.
//! * [`pruning`] — dynamic vector pruning (Top-K per layer) and its
//!   importance model.
//! * [`graph`] — layer graphs, network execution traces (active pillars,
//!   operation counts, IOPR per layer).
//! * [`arena`] — reusable scratch buffers for the pattern-level executor's
//!   fused streaming sweeps (zero per-layer reallocation).
//! * [`zoo`] — the paper's model zoo: PP, SPP1–3, CP, SCP1–3, PN, SPN.
//! * [`stats`] — GOPs/sparsity accounting helpers (Table I).
//!
//! ## Example
//!
//! ```
//! use spade_nn::zoo::{Model, ModelKind};
//!
//! let spp2 = Model::build(ModelKind::Spp2);
//! assert_eq!(spp2.kind(), ModelKind::Spp2);
//! assert!(spp2.spec().num_layers() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod conv;
pub mod encoder;
pub mod graph;
pub mod kernel;
pub mod pruning;
pub mod rule;
pub mod rulegen;
pub mod stats;
pub mod zoo;

pub use arena::ExecutionArena;
pub use conv::{ConvKind, LayerSpec};
pub use graph::{LayerTrace, NetworkSpec, NetworkTrace};
pub use kernel::{KernelShape, WeightGroup, Weights};
pub use pruning::{PruningConfig, VectorPruner};
pub use rule::{Rule, RuleBook};
pub use rulegen::delta::{DeltaPolicy, DeltaStats, FrameDeltaState};
pub use rulegen::{RuleGenCost, RuleGenMethod};
pub use zoo::{Model, ModelKind};
