//! Table-level accounting helpers (GOPs, sparsity, IOPR series).

use crate::graph::NetworkTrace;
use serde::{Deserialize, Serialize};

/// One row of the paper's Table I, produced from a measured network trace and
/// the accuracy proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Model name (e.g. "SPP2").
    pub model: String,
    /// Backbone convolution description.
    pub backbone: String,
    /// Head convolution description.
    pub head: String,
    /// Average GOPs per frame.
    pub avg_gops: f64,
    /// Computation savings vs. the dense baseline (the paper's "Sparsity").
    pub sparsity: f64,
    /// Primary accuracy metric (mAP BEV for KITTI-like, mAP for nuScenes-like).
    pub accuracy_primary: f64,
    /// Secondary accuracy metric (mAP 3D for KITTI-like, NDS for
    /// nuScenes-like).
    pub accuracy_secondary: f64,
}

/// Averages computation statistics over several per-frame traces of the same
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragedStats {
    /// Mean GOPs per frame.
    pub mean_gops: f64,
    /// Mean dense-equivalent GOPs per frame.
    pub mean_dense_gops: f64,
    /// Mean computation savings.
    pub mean_savings: f64,
    /// Mean foreground coverage (if traced).
    pub mean_foreground_coverage: Option<f64>,
    /// Number of frames averaged.
    pub frames: usize,
}

impl AveragedStats {
    /// Averages a set of traces.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn from_traces(traces: &[NetworkTrace]) -> Self {
        assert!(!traces.is_empty(), "at least one trace is required");
        let n = traces.len() as f64;
        let mean_gops = traces.iter().map(NetworkTrace::total_gops).sum::<f64>() / n;
        let mean_dense_gops = traces.iter().map(NetworkTrace::dense_gops).sum::<f64>() / n;
        let mean_savings = traces
            .iter()
            .map(NetworkTrace::computation_savings)
            .sum::<f64>()
            / n;
        let coverages: Vec<f64> = traces
            .iter()
            .filter_map(|t| t.foreground_coverage)
            .collect();
        let mean_foreground_coverage = if coverages.is_empty() {
            None
        } else {
            Some(coverages.iter().sum::<f64>() / coverages.len() as f64)
        };
        Self {
            mean_gops,
            mean_dense_gops,
            mean_savings,
            mean_foreground_coverage,
            frames: traces.len(),
        }
    }
}

/// Extracts the per-layer IOPR series of a trace, restricted to the backbone
/// convolution layers (the Fig. 2(d–f) curves).
#[must_use]
pub fn iopr_series(trace: &NetworkTrace) -> Vec<(String, f64)> {
    trace
        .layers
        .iter()
        .filter(|l| l.stage >= 1 && l.stage <= 3)
        .map(|l| (l.name.clone(), l.iopr))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvKind;
    use crate::graph::{execute_pattern, ExecutionContext, LayerInput, NetworkLayer, NetworkSpec};
    use crate::LayerSpec;
    use spade_tensor::{GridShape, PillarCoord};

    fn tiny_trace(kind: ConvKind) -> NetworkTrace {
        let spec = NetworkSpec {
            name: "t".into(),
            encoder_channels: 2,
            layers: vec![NetworkLayer {
                spec: LayerSpec::new("B1C1", kind, 2, 2),
                input: LayerInput::Previous,
                stage: 1,
                densify_input: false,
            }],
        };
        let coords = vec![PillarCoord::new(1, 1), PillarCoord::new(5, 5)];
        execute_pattern(
            &spec,
            &coords,
            GridShape::new(16, 16),
            0,
            &ExecutionContext::default(),
        )
        .0
    }

    #[test]
    fn averaged_stats_over_identical_traces() {
        let t = tiny_trace(ConvKind::SpConvS);
        let stats = AveragedStats::from_traces(&[t.clone(), t.clone()]);
        assert_eq!(stats.frames, 2);
        assert!((stats.mean_gops - t.total_gops()).abs() < 1e-12);
        assert!(stats.mean_savings > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn averaged_stats_requires_traces() {
        let _ = AveragedStats::from_traces(&[]);
    }

    #[test]
    fn iopr_series_covers_backbone_layers() {
        let t = tiny_trace(ConvKind::SpConv);
        let series = iopr_series(&t);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].0, "B1C1");
        assert!(series[0].1 > 1.0);
    }
}
