//! Convolution kernel geometry, weights, and stride-pattern weight groups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The spatial shape of a convolution kernel (square, odd-sized for standard
/// convs; 2×2 for the deconvolutions used by the detection necks).
///
/// # Example
///
/// ```
/// use spade_nn::KernelShape;
/// let k = KernelShape::k3x3();
/// assert_eq!(k.num_taps(), 9);
/// assert_eq!(k.offsets().len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelShape {
    /// Kernel height (rows).
    pub kh: u32,
    /// Kernel width (columns).
    pub kw: u32,
}

impl KernelShape {
    /// A 3×3 kernel (the backbone convolutions).
    #[must_use]
    pub const fn k3x3() -> Self {
        Self { kh: 3, kw: 3 }
    }

    /// A 2×2 kernel (stride-2 deconvolutions).
    #[must_use]
    pub const fn k2x2() -> Self {
        Self { kh: 2, kw: 2 }
    }

    /// A 1×1 kernel (head projections).
    #[must_use]
    pub const fn k1x1() -> Self {
        Self { kh: 1, kw: 1 }
    }

    /// Number of kernel taps (`kh * kw`).
    #[must_use]
    pub const fn num_taps(self) -> usize {
        (self.kh * self.kw) as usize
    }

    /// Spatial offsets `(d_row, d_col)` of each tap relative to the output
    /// position, in row-major tap order. Odd kernels are centred; even kernels
    /// (deconv) use offsets `0..k`.
    #[must_use]
    pub fn offsets(self) -> Vec<(i32, i32)> {
        let centre_r = if self.kh % 2 == 1 {
            (self.kh / 2) as i32
        } else {
            0
        };
        let centre_c = if self.kw % 2 == 1 {
            (self.kw / 2) as i32
        } else {
            0
        };
        let mut out = Vec::with_capacity(self.num_taps());
        for r in 0..self.kh as i32 {
            for c in 0..self.kw as i32 {
                out.push((r - centre_r, c - centre_c));
            }
        }
        out
    }

    /// Tap index of the offset `(d_row, d_col)`, if it belongs to the kernel.
    #[must_use]
    pub fn tap_index(self, d_row: i32, d_col: i32) -> Option<usize> {
        self.offsets()
            .iter()
            .position(|&(r, c)| r == d_row && c == d_col)
    }
}

/// Weight-grouping of kernel taps for strided sparse convolution.
///
/// With stride 2 on a 3×3 kernel, an input pillar at parity `(pr, pc)` only
/// ever meets the taps whose offsets share that parity, so taps fall into four
/// groups `{0,2,6,8}`, `{1,7}`, `{3,5}`, `{4}` (row-major tap indices), which
/// the paper's weight-grouping optimisation schedules together to maximise
/// input reuse (Fig. 8(a)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightGroup {
    /// Tap indices belonging to this group (row-major order).
    pub taps: Vec<usize>,
    /// The row/column parity `(row_parity, col_parity)` of the input pillars
    /// that use this group under stride 2.
    pub parity: (u32, u32),
}

impl WeightGroup {
    /// Computes the stride-pattern groups of a kernel for the given stride.
    ///
    /// For stride 1 there is a single group holding every tap.
    #[must_use]
    pub fn for_stride(kernel: KernelShape, stride: u32) -> Vec<WeightGroup> {
        if stride <= 1 {
            return vec![WeightGroup {
                taps: (0..kernel.num_taps()).collect(),
                parity: (0, 0),
            }];
        }
        let offsets = kernel.offsets();
        let mut groups: Vec<WeightGroup> = Vec::new();
        for (tap, &(dr, dc)) in offsets.iter().enumerate() {
            let parity = (
                dr.rem_euclid(stride as i32) as u32,
                dc.rem_euclid(stride as i32) as u32,
            );
            if let Some(g) = groups.iter_mut().find(|g| g.parity == parity) {
                g.taps.push(tap);
            } else {
                groups.push(WeightGroup {
                    taps: vec![tap],
                    parity,
                });
            }
        }
        groups
    }
}

/// Int8 convolution weights in `[out_channel][in_channel][tap]` layout,
/// generated from a seed (the reproduction uses structurally faithful but
/// untrained weights; see DESIGN.md).
///
/// # Example
///
/// ```
/// use spade_nn::{KernelShape, Weights};
/// let w = Weights::seeded(4, 8, KernelShape::k3x3(), 1);
/// assert_eq!(w.out_channels(), 4);
/// assert_eq!(w.get(3, 7, 8), w.get(3, 7, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    out_channels: usize,
    in_channels: usize,
    kernel: KernelShape,
    data: Vec<i8>,
}

impl Weights {
    /// Generates seeded pseudo-random int8 weights.
    #[must_use]
    pub fn seeded(out_channels: usize, in_channels: usize, kernel: KernelShape, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = out_channels * in_channels * kernel.num_taps();
        let data = (0..n).map(|_| rng.gen_range(-64i32..=64) as i8).collect();
        Self {
            out_channels,
            in_channels,
            kernel,
            data,
        }
    }

    /// Number of output channels.
    #[must_use]
    pub const fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    #[must_use]
    pub const fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel shape.
    #[must_use]
    pub const fn kernel(&self) -> KernelShape {
        self.kernel
    }

    /// Weight value for `(out_channel, in_channel, tap)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn get(&self, out_ch: usize, in_ch: usize, tap: usize) -> i8 {
        assert!(
            out_ch < self.out_channels && in_ch < self.in_channels && tap < self.kernel.num_taps(),
            "weight index ({out_ch}, {in_ch}, {tap}) out of range"
        );
        self.data[(out_ch * self.in_channels + in_ch) * self.kernel.num_taps() + tap]
    }

    /// Total number of weight values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the weight tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the weight payload in bytes (one byte per int8 value).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_of_3x3_are_centred() {
        let offs = KernelShape::k3x3().offsets();
        assert_eq!(offs.len(), 9);
        assert_eq!(offs[0], (-1, -1));
        assert_eq!(offs[4], (0, 0));
        assert_eq!(offs[8], (1, 1));
    }

    #[test]
    fn offsets_of_2x2_are_non_negative() {
        let offs = KernelShape::k2x2().offsets();
        assert_eq!(offs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn tap_index_round_trip() {
        let k = KernelShape::k3x3();
        for (i, (dr, dc)) in k.offsets().into_iter().enumerate() {
            assert_eq!(k.tap_index(dr, dc), Some(i));
        }
        assert_eq!(k.tap_index(2, 2), None);
    }

    #[test]
    fn stride2_groups_match_paper() {
        // The paper's weight grouping for stride 2 on 3x3: {0,2,6,8}, {1,7},
        // {3,5}, {4} (Fig. 8(a)).
        let groups = WeightGroup::for_stride(KernelShape::k3x3(), 2);
        assert_eq!(groups.len(), 4);
        let mut sets: Vec<Vec<usize>> = groups.iter().map(|g| g.taps.clone()).collect();
        sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
        assert_eq!(sets[0], vec![0, 2, 6, 8]);
        assert!(sets.contains(&vec![1, 7]));
        assert!(sets.contains(&vec![3, 5]));
        assert!(sets.contains(&vec![4]));
    }

    #[test]
    fn stride1_is_a_single_group() {
        let groups = WeightGroup::for_stride(KernelShape::k3x3(), 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].taps.len(), 9);
    }

    #[test]
    fn groups_partition_all_taps() {
        for stride in [1u32, 2, 3] {
            let k = KernelShape::k3x3();
            let groups = WeightGroup::for_stride(k, stride);
            let mut all: Vec<usize> = groups.iter().flat_map(|g| g.taps.clone()).collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..k.num_taps()).collect::<Vec<_>>(),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let a = Weights::seeded(8, 16, KernelShape::k3x3(), 7);
        let b = Weights::seeded(8, 16, KernelShape::k3x3(), 7);
        let c = Weights::seeded(8, 16, KernelShape::k3x3(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 8 * 16 * 9);
        assert_eq!(a.payload_bytes(), a.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weight_get_panics_out_of_range() {
        let w = Weights::seeded(2, 2, KernelShape::k1x1(), 0);
        let _ = w.get(2, 0, 0);
    }
}
