//! Sparse convolution variants and their functional execution.

use crate::kernel::{KernelShape, Weights};
use crate::rule::RuleBook;
use crate::rulegen;
use serde::{Deserialize, Serialize};
use spade_tensor::{CprBuilder, CprTensor, DenseTensor, GridShape};
use std::fmt;

/// The sparse-convolution variants studied by the paper (Fig. 1(c–e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvKind {
    /// Dense Conv2D over the full grid (the PointPillars baseline).
    Dense,
    /// Standard sparse convolution: outputs dilate around active inputs.
    SpConv,
    /// Submanifold sparse convolution: outputs restricted to active inputs.
    SpConvS,
    /// Sparse convolution with dynamic vector pruning of the dilated outputs.
    SpConvP,
    /// Strided (stride-2) sparse convolution for downsampling.
    SpStConv,
    /// Stride-2 sparse deconvolution (transposed convolution) for upsampling.
    SpDeconv,
}

impl ConvKind {
    /// Whether the output active set can grow beyond the input active set.
    #[must_use]
    pub const fn dilates(self) -> bool {
        matches!(self, ConvKind::SpConv | ConvKind::SpConvP | ConvKind::Dense)
    }

    /// The stride this variant applies to the spatial grid.
    #[must_use]
    pub const fn stride(self) -> u32 {
        match self {
            ConvKind::SpStConv => 2,
            _ => 1,
        }
    }

    /// The upsampling factor this variant applies (1 for everything except
    /// deconvolution).
    #[must_use]
    pub const fn upsample(self) -> u32 {
        match self {
            ConvKind::SpDeconv => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for ConvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConvKind::Dense => "Conv2D",
            ConvKind::SpConv => "SpConv",
            ConvKind::SpConvS => "SpConv-S",
            ConvKind::SpConvP => "SpConv-P",
            ConvKind::SpStConv => "SpStConv",
            ConvKind::SpDeconv => "SpDeconv",
        };
        f.write_str(s)
    }
}

/// Specification of a single convolution layer.
///
/// # Example
///
/// ```
/// use spade_nn::{ConvKind, LayerSpec};
/// let l = LayerSpec::new("B1C1", ConvKind::SpStConv, 64, 64);
/// assert_eq!(l.stride(), 2);
/// assert_eq!(l.macs_per_rule(), 64 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer label, following the paper's `BxCy` convention where possible.
    pub name: String,
    /// Convolution variant.
    pub kind: ConvKind,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel shape.
    pub kernel: KernelShape,
}

impl LayerSpec {
    /// Creates a 3×3 layer (2×2 for deconvolution) of the given kind.
    #[must_use]
    pub fn new(name: &str, kind: ConvKind, in_channels: usize, out_channels: usize) -> Self {
        let kernel = match kind {
            ConvKind::SpDeconv => KernelShape::k2x2(),
            _ => KernelShape::k3x3(),
        };
        Self {
            name: name.to_owned(),
            kind,
            in_channels,
            out_channels,
            kernel,
        }
    }

    /// Creates a layer with an explicit kernel shape (e.g. 1×1 head layers).
    #[must_use]
    pub fn with_kernel(
        name: &str,
        kind: ConvKind,
        in_channels: usize,
        out_channels: usize,
        kernel: KernelShape,
    ) -> Self {
        Self {
            name: name.to_owned(),
            kind,
            in_channels,
            out_channels,
            kernel,
        }
    }

    /// Spatial stride of the layer.
    #[must_use]
    pub fn stride(&self) -> u32 {
        self.kind.stride()
    }

    /// Multiply-accumulates performed per rule (per input-output pair per
    /// kernel tap): `C_in × C_out`.
    #[must_use]
    pub fn macs_per_rule(&self) -> usize {
        self.in_channels * self.out_channels
    }

    /// The output grid shape for a given input grid.
    #[must_use]
    pub fn output_grid(&self, input: GridShape) -> GridShape {
        match self.kind {
            ConvKind::SpStConv => input.downsample(2),
            ConvKind::SpDeconv => input.upsample(2),
            _ => input,
        }
    }

    /// Generates seeded weights with the layer's shape.
    #[must_use]
    pub fn seeded_weights(&self, seed: u64) -> Weights {
        Weights::seeded(self.out_channels, self.in_channels, self.kernel, seed)
    }

    /// Generates the rule book mapping active inputs to active outputs for
    /// this layer. For [`ConvKind::SpConvP`] the dilated (un-pruned) outputs
    /// are produced; pruning is applied afterwards by the network executor.
    #[must_use]
    pub fn generate_rules(&self, input: &CprTensor) -> RuleBook {
        rulegen::generate_rules(input, self.kind, self.kernel)
    }

    /// Functionally executes the layer on a CPR tensor, returning the output
    /// CPR tensor. Accumulation is in f32; an optional ReLU is applied.
    ///
    /// This path is used for correctness tests and the feature-map study
    /// (Fig. 13(b)); network-scale evaluation uses pattern-level execution in
    /// [`crate::graph`].
    #[must_use]
    pub fn execute(&self, input: &CprTensor, weights: &Weights, relu: bool) -> CprTensor {
        assert_eq!(
            input.channels(),
            self.in_channels,
            "layer {} expects {} input channels, tensor has {}",
            self.name,
            self.in_channels,
            input.channels()
        );
        assert_eq!(weights.in_channels(), self.in_channels);
        assert_eq!(weights.out_channels(), self.out_channels);
        let rules = self.generate_rules(input);
        let num_out = rules.num_outputs();
        let mut acc = vec![0.0f32; num_out * self.out_channels];
        for tap in 0..rules.num_taps() {
            for r in rules.rules_for_tap(tap) {
                let in_feat = input.features(r.input);
                let base = r.output * self.out_channels;
                for oc in 0..self.out_channels {
                    let mut sum = 0.0f32;
                    for (ic, &x) in in_feat.iter().enumerate() {
                        sum += x * f32::from(weights.get(oc, ic, tap));
                    }
                    acc[base + oc] += sum;
                }
            }
        }
        let mut builder = CprBuilder::new(rules.output_grid(), self.out_channels);
        for (q, &coord) in rules.output_coords().iter().enumerate() {
            let mut feat = acc[q * self.out_channels..(q + 1) * self.out_channels].to_vec();
            if relu {
                for v in &mut feat {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            builder
                .push(coord, feat)
                .expect("rule book outputs are in CPR order");
        }
        builder.build()
    }
}

/// Dense reference Conv2D (stride 1, zero padding) used to validate the
/// sparse kernels: on an all-active input the sparse and dense paths must
/// agree, and on a sparse input SpConv must agree with the dense result at
/// every grid position.
#[must_use]
pub fn dense_conv2d_reference(input: &DenseTensor, weights: &Weights, relu: bool) -> DenseTensor {
    let grid = input.grid();
    let out_ch = weights.out_channels();
    let offsets = weights.kernel().offsets();
    let mut out = DenseTensor::zeros(out_ch, grid);
    for row in 0..grid.height {
        for col in 0..grid.width {
            for oc in 0..out_ch {
                let mut sum = 0.0f32;
                for (tap, &(dr, dc)) in offsets.iter().enumerate() {
                    let r = i64::from(row) + i64::from(dr);
                    let c = i64::from(col) + i64::from(dc);
                    if r < 0 || c < 0 || r >= i64::from(grid.height) || c >= i64::from(grid.width) {
                        continue;
                    }
                    for ic in 0..weights.in_channels() {
                        sum +=
                            input.get(ic, r as u32, c as u32) * f32::from(weights.get(oc, ic, tap));
                    }
                }
                out.set(oc, row, col, if relu && sum < 0.0 { 0.0 } else { sum });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_tensor::PillarCoord;

    fn small_input() -> CprTensor {
        CprTensor::from_entries(
            GridShape::new(6, 6),
            2,
            vec![
                (PillarCoord::new(1, 1), vec![1.0, -2.0]),
                (PillarCoord::new(1, 2), vec![0.5, 3.0]),
                (PillarCoord::new(4, 4), vec![-1.0, 1.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn conv_kind_properties() {
        assert!(ConvKind::SpConv.dilates());
        assert!(!ConvKind::SpConvS.dilates());
        assert_eq!(ConvKind::SpStConv.stride(), 2);
        assert_eq!(ConvKind::SpDeconv.upsample(), 2);
        assert_eq!(ConvKind::SpConv.to_string(), "SpConv");
        assert_eq!(ConvKind::SpConvS.to_string(), "SpConv-S");
    }

    #[test]
    fn submanifold_preserves_active_set() {
        let input = small_input();
        let layer = LayerSpec::new("test", ConvKind::SpConvS, 2, 3);
        let w = layer.seeded_weights(0);
        let out = layer.execute(&input, &w, false);
        assert_eq!(out.coords(), input.coords());
        assert_eq!(out.channels(), 3);
    }

    #[test]
    fn spconv_dilates_active_set() {
        let input = small_input();
        let layer = LayerSpec::new("test", ConvKind::SpConv, 2, 2);
        let w = layer.seeded_weights(0);
        let out = layer.execute(&input, &w, false);
        assert!(out.num_active() > input.num_active());
        // All original coordinates remain active positions.
        for c in input.coords() {
            assert!(out.index_of(c).is_some());
        }
    }

    #[test]
    fn spconv_matches_dense_reference_everywhere() {
        let input = small_input();
        let layer = LayerSpec::new("test", ConvKind::SpConv, 2, 3);
        let w = layer.seeded_weights(3);
        let sparse_out = layer.execute(&input, &w, false).to_dense();
        let dense_out = dense_conv2d_reference(&input.to_dense(), &w, false);
        let grid = input.grid();
        for ch in 0..3 {
            for r in 0..grid.height {
                for c in 0..grid.width {
                    let a = sparse_out.get(ch, r, c);
                    let b = dense_out.get(ch, r, c);
                    assert!(
                        (a - b).abs() < 1e-3,
                        "mismatch at ({ch}, {r}, {c}): sparse={a} dense={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn submanifold_matches_dense_reference_at_active_inputs() {
        let input = small_input();
        let layer = LayerSpec::new("test", ConvKind::SpConvS, 2, 2);
        let w = layer.seeded_weights(11);
        let out = layer.execute(&input, &w, false);
        let dense_out = dense_conv2d_reference(&input.to_dense(), &w, false);
        for (i, coord) in out.coords().into_iter().enumerate() {
            for ch in 0..2 {
                let a = out.features(i)[ch];
                let b = dense_out.get(ch, coord.row, coord.col);
                assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn strided_conv_halves_grid() {
        let input = small_input();
        let layer = LayerSpec::new("down", ConvKind::SpStConv, 2, 4);
        let w = layer.seeded_weights(1);
        let out = layer.execute(&input, &w, false);
        assert_eq!(out.grid(), GridShape::new(3, 3));
        assert!(out.num_active() >= 1);
        assert!(out.check_invariants());
    }

    #[test]
    fn deconv_doubles_grid() {
        let input = small_input();
        let layer = LayerSpec::new("up", ConvKind::SpDeconv, 2, 2);
        let w = layer.seeded_weights(1);
        let out = layer.execute(&input, &w, false);
        assert_eq!(out.grid(), GridShape::new(12, 12));
        // Each input produces 4 distinct outputs with a 2x2 stride-2 kernel.
        assert_eq!(out.num_active(), input.num_active() * 4);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let input = small_input();
        let layer = LayerSpec::new("relu", ConvKind::SpConvS, 2, 4);
        let w = layer.seeded_weights(5);
        let out = layer.execute(&input, &w, true);
        assert!(out.feature_data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dense_kind_activates_whole_grid() {
        let input = small_input();
        let layer = LayerSpec::new("dense", ConvKind::Dense, 2, 1);
        let w = layer.seeded_weights(2);
        let out = layer.execute(&input, &w, false);
        assert_eq!(out.num_active(), input.grid().num_cells());
    }

    #[test]
    fn output_grid_follows_kind() {
        let g = GridShape::new(10, 10);
        assert_eq!(
            LayerSpec::new("a", ConvKind::SpConv, 1, 1).output_grid(g),
            g
        );
        assert_eq!(
            LayerSpec::new("b", ConvKind::SpStConv, 1, 1).output_grid(g),
            GridShape::new(5, 5)
        );
        assert_eq!(
            LayerSpec::new("c", ConvKind::SpDeconv, 1, 1).output_grid(g),
            GridShape::new(20, 20)
        );
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn execute_checks_channel_count() {
        let input = small_input();
        let layer = LayerSpec::new("bad", ConvKind::SpConv, 3, 2);
        let w = layer.seeded_weights(0);
        let _ = layer.execute(&input, &w, false);
    }
}
