//! PointNet-lite pillar feature encoder.
//!
//! PointPillars encodes each pillar's points with a small per-point MLP
//! followed by max pooling (a simplified PointNet). The encoder here keeps
//! that structure — 9 augmented per-point features, one linear layer, ReLU,
//! max pool — with seeded weights, and reports its operation count so the
//! encoder contributes to whole-network GOPs like in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spade_pointcloud::pillarize::{PillarizationConfig, PillarizedCloud};
use spade_tensor::{CprBuilder, CprTensor};

/// Number of augmented per-point input features:
/// `x, y, z, intensity, dx_mean, dy_mean, dz_mean, dx_centre, dy_centre`.
pub const POINT_FEATURES: usize = 9;

/// The pillar feature encoder.
///
/// # Example
///
/// ```
/// use spade_nn::encoder::PillarEncoder;
/// let enc = PillarEncoder::new(64, 0);
/// assert_eq!(enc.out_channels(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct PillarEncoder {
    out_channels: usize,
    /// Linear layer weights, `[out_channels][POINT_FEATURES]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl PillarEncoder {
    /// Creates an encoder with seeded weights.
    #[must_use]
    pub fn new(out_channels: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00e_c0de);
        let weights = (0..out_channels * POINT_FEATURES)
            .map(|_| rng.gen_range(-0.5f32..0.5))
            .collect();
        let bias = (0..out_channels)
            .map(|_| rng.gen_range(-0.1f32..0.1))
            .collect();
        Self {
            out_channels,
            weights,
            bias,
        }
    }

    /// Number of output channels per pillar.
    #[must_use]
    pub const fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Encodes a pillarised cloud into a CPR feature tensor.
    #[must_use]
    pub fn encode(&self, cloud: &PillarizedCloud, config: &PillarizationConfig) -> CprTensor {
        let mut builder = CprBuilder::new(cloud.grid, self.out_channels);
        for (coord, points) in cloud.active_coords.iter().zip(&cloud.points_per_pillar) {
            // Pillar centre in world coordinates.
            let cx = config.x_range.0 + (f64::from(coord.row) + 0.5) * config.pillar_size_x;
            let cy = config.y_range.0 + (f64::from(coord.col) + 0.5) * config.pillar_size_y;
            let mean_x: f64 = points.iter().map(|p| p.x).sum::<f64>() / points.len() as f64;
            let mean_y: f64 = points.iter().map(|p| p.y).sum::<f64>() / points.len() as f64;
            let mean_z: f64 = points.iter().map(|p| p.z).sum::<f64>() / points.len() as f64;
            let mut pooled = vec![f32::NEG_INFINITY; self.out_channels];
            for p in points {
                let feat: [f32; POINT_FEATURES] = [
                    p.x as f32,
                    p.y as f32,
                    p.z as f32,
                    p.intensity as f32,
                    (p.x - mean_x) as f32,
                    (p.y - mean_y) as f32,
                    (p.z - mean_z) as f32,
                    (p.x - cx) as f32,
                    (p.y - cy) as f32,
                ];
                for (oc, pool) in pooled.iter_mut().enumerate() {
                    let mut sum = self.bias[oc];
                    for (i, f) in feat.iter().enumerate() {
                        sum += f * self.weights[oc * POINT_FEATURES + i];
                    }
                    let activated = sum.max(0.0); // ReLU
                    if activated > *pool {
                        *pool = activated;
                    }
                }
            }
            builder
                .push(*coord, pooled)
                .expect("pillarised coordinates are already in CPR order");
        }
        builder.build()
    }

    /// Multiply-accumulate count for encoding a cloud (one MAC per weight per
    /// point).
    #[must_use]
    pub fn macs(&self, cloud: &PillarizedCloud) -> u64 {
        let points: usize = cloud.points_per_pillar.iter().map(Vec::len).sum();
        (points * POINT_FEATURES * self.out_channels) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_pointcloud::pillarize::pillarize;
    use spade_pointcloud::Point3;

    fn sample_cloud() -> (PillarizedCloud, PillarizationConfig) {
        let cfg = PillarizationConfig::kitti_like();
        let pts = vec![
            Point3::with_intensity(5.0, 5.0, 0.0, 0.5),
            Point3::with_intensity(5.02, 5.01, 0.2, 0.4),
            Point3::with_intensity(30.0, -10.0, -1.0, 0.7),
        ];
        (pillarize(&pts, &cfg), cfg)
    }

    #[test]
    fn encode_produces_one_vector_per_active_pillar() {
        let (cloud, cfg) = sample_cloud();
        let enc = PillarEncoder::new(16, 3);
        let t = enc.encode(&cloud, &cfg);
        assert_eq!(t.num_active(), cloud.num_active());
        assert_eq!(t.channels(), 16);
        assert!(t.check_invariants());
    }

    #[test]
    fn encoding_is_deterministic() {
        let (cloud, cfg) = sample_cloud();
        let a = PillarEncoder::new(8, 5).encode(&cloud, &cfg);
        let b = PillarEncoder::new(8, 5).encode(&cloud, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn relu_makes_features_non_negative() {
        let (cloud, cfg) = sample_cloud();
        let t = PillarEncoder::new(8, 1).encode(&cloud, &cfg);
        assert!(t.feature_data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn macs_scale_with_points_and_channels() {
        let (cloud, _) = sample_cloud();
        let small = PillarEncoder::new(8, 0).macs(&cloud);
        let large = PillarEncoder::new(16, 0).macs(&cloud);
        assert_eq!(large, small * 2);
        assert_eq!(small, 3 * 9 * 8);
    }
}
