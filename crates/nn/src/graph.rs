//! Layer graphs and pattern-level network execution.
//!
//! Network-scale evaluation (Table I, Fig. 2, Fig. 9–12) does not need actual
//! feature values — it needs, per layer, the set of active pillars, the number
//! of input-output rules, and the operation counts. The executor in this
//! module propagates active-coordinate sets through the layer graph (including
//! dynamic pruning for SpConv-P layers), producing a [`NetworkTrace`] with
//! per-layer statistics and a list of [`LayerWorkload`]s that the accelerator
//! models consume.
//!
//! This is the repository's hottest path (every bench and DSE cell funnels
//! through it), so each layer runs the *fused* streaming sweep of
//! [`crate::rulegen::streaming`] — output dilation and rule counting in one
//! `O(P·K)` pass over [`ExecutionArena`] scratch — and coordinate sets are
//! shared (`Arc`) between a layer's output, the next layer's input, and the
//! emitted workloads rather than cloned.

use crate::arena::ExecutionArena;
use crate::conv::{ConvKind, LayerSpec};
use crate::pruning::{ImportanceModel, PruningConfig, VectorPruner};
use crate::rulegen::delta::{changed_fraction, FrameDeltaState, LayerDeltaCache};
use serde::{Deserialize, Serialize};
use spade_pointcloud::pillarize::PillarizationConfig;
use spade_pointcloud::Scene;
use spade_tensor::stats::iopr;
use spade_tensor::{GridShape, PillarCoord};
use std::collections::HashMap;
use std::sync::Arc;

/// Where a layer's input activations come from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerInput {
    /// The previous layer's output (or the encoder output for the first layer).
    Previous,
    /// The output of an earlier layer, by index.
    Layer(usize),
    /// The channel-wise concatenation of several earlier layers' outputs
    /// (active set = union of their active sets; all must share a grid).
    Union(Vec<usize>),
}

/// One layer in a network: its convolution spec, where its input comes from,
/// which backbone stage it belongs to, and whether its input is densified
/// first (the PointPillars pseudo-image path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkLayer {
    /// The convolution specification.
    pub spec: LayerSpec,
    /// The input source.
    pub input: LayerInput,
    /// Backbone stage index (1-based; 0 for encoder-level layers).
    pub stage: usize,
    /// If `true`, the input active set is replaced by the full grid before the
    /// layer executes (dense pseudo-image processing).
    pub densify_input: bool,
}

/// A complete network specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name (e.g. "SPP2").
    pub name: String,
    /// Number of channels produced by the pillar feature encoder.
    pub encoder_channels: usize,
    /// The layers in execution order.
    pub layers: Vec<NetworkLayer>,
}

impl NetworkSpec {
    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Per-layer execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Convolution kind.
    pub kind: ConvKind,
    /// Backbone stage.
    pub stage: usize,
    /// Input grid shape.
    pub in_grid: GridShape,
    /// Output grid shape.
    pub out_grid: GridShape,
    /// Active input pillars.
    pub in_active: usize,
    /// Active output pillars before pruning.
    pub dilated_active: usize,
    /// Active output pillars after pruning (equals `dilated_active` for
    /// non-pruning layers).
    pub out_active: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Number of input-output rules (kernel-tap pairs).
    pub rules: u64,
    /// Multiply-accumulates executed by this layer.
    pub macs: u64,
    /// Multiply-accumulates of the dense equivalent of this layer.
    pub dense_macs: u64,
    /// Input-output pillar ratio (Fig. 2(d–f)).
    pub iopr: f64,
}

/// Whole-network execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    /// Network name.
    pub name: String,
    /// Per-layer traces.
    pub layers: Vec<LayerTrace>,
    /// Encoder MACs (pillar feature encoder).
    pub encoder_macs: u64,
    /// Fraction of foreground (in-box) pillars retained after all pruning, if
    /// a scene was supplied (drives the accuracy proxy).
    pub foreground_coverage: Option<f64>,
}

impl NetworkTrace {
    /// Total MACs including the encoder.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.encoder_macs + self.layers.iter().map(|l| l.macs).sum::<u64>()
    }

    /// Dense-equivalent MACs including the encoder.
    #[must_use]
    pub fn dense_macs(&self) -> u64 {
        self.encoder_macs + self.layers.iter().map(|l| l.dense_macs).sum::<u64>()
    }

    /// Total giga-operations (2 ops per MAC), the paper's GOPs metric.
    #[must_use]
    pub fn total_gops(&self) -> f64 {
        self.total_macs() as f64 * 2.0 / 1e9
    }

    /// Dense-equivalent giga-operations.
    #[must_use]
    pub fn dense_gops(&self) -> f64 {
        self.dense_macs() as f64 * 2.0 / 1e9
    }

    /// Computation savings relative to the dense equivalent (Table I's
    /// "Sparsity" column): `1 − ops / dense_ops`.
    #[must_use]
    pub fn computation_savings(&self) -> f64 {
        1.0 - self.total_macs() as f64 / self.dense_macs().max(1) as f64
    }
}

/// One layer's workload handed to the accelerator models: the concrete active
/// input and output coordinate sets plus the layer spec.
///
/// Coordinate sets are shared slices (`Arc<[PillarCoord]>`): a layer's output
/// set *is* the next layer's input set, so chaining layers and fanning
/// workloads across accelerator models never copies coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// The layer specification.
    pub spec: LayerSpec,
    /// Backbone stage index.
    pub stage: usize,
    /// Input grid shape.
    pub input_grid: GridShape,
    /// Active input coordinates (CPR order).
    pub input_coords: Arc<[PillarCoord]>,
    /// Output grid shape.
    pub output_grid: GridShape,
    /// Active output coordinates (CPR order, after pruning).
    pub output_coords: Arc<[PillarCoord]>,
    /// Number of input-output rules.
    pub rules: u64,
}

/// Execution context: pruning configuration and (optionally) the scene that
/// drives the importance model and foreground-coverage accounting.
#[derive(Debug, Clone, Default)]
pub struct ExecutionContext<'a> {
    /// Pruning configuration for SpConv-P layers.
    pub pruning: PruningConfig,
    /// The scene providing ground-truth boxes for the importance model.
    pub scene: Option<&'a Scene>,
    /// The pillarisation configuration of the base grid.
    pub pillar_config: Option<&'a PillarizationConfig>,
    /// Seed for the deterministic importance noise.
    pub seed: u64,
}

/// Executes a network at pattern level.
///
/// `initial_coords` are the active pillars produced by the pillar encoder on
/// the base grid `grid`. Allocates a fresh [`ExecutionArena`]; loops that
/// execute many networks or frames should hold one arena and call
/// [`execute_pattern_with_arena`] so scratch capacity carries over.
#[must_use]
pub fn execute_pattern(
    spec: &NetworkSpec,
    initial_coords: &[PillarCoord],
    grid: GridShape,
    encoder_macs: u64,
    ctx: &ExecutionContext<'_>,
) -> (NetworkTrace, Vec<LayerWorkload>) {
    execute_pattern_with_arena(
        spec,
        initial_coords,
        grid,
        encoder_macs,
        ctx,
        &mut ExecutionArena::new(),
    )
}

/// [`execute_pattern`] with caller-owned scratch: every layer's dilation,
/// rule count, and output set come from one fused streaming sweep over the
/// arena's reusable buffers, so the layer loop performs no per-layer
/// `BTreeSet`/`CprTensor` construction and no repeated input walks.
#[must_use]
pub fn execute_pattern_with_arena(
    spec: &NetworkSpec,
    initial_coords: &[PillarCoord],
    grid: GridShape,
    encoder_macs: u64,
    ctx: &ExecutionContext<'_>,
    arena: &mut ExecutionArena,
) -> (NetworkTrace, Vec<LayerWorkload>) {
    execute_pattern_inner(spec, initial_coords, grid, encoder_macs, ctx, arena, None)
}

/// [`execute_pattern_with_arena`] with temporal delta execution: feed
/// consecutive frames of **one** drive, in order, through the same
/// [`FrameDeltaState`] and layers whose inputs barely changed are served by
/// row-splicing the previous frame's outputs ([`crate::rulegen::delta`])
/// instead of re-sweeping every output row.
///
/// The result is byte-identical to [`execute_pattern_with_arena`] on every
/// frame: the delta path shares this single executor body with the full
/// path, differing only in *how* each layer's dilated set and rule count
/// are produced (row splice vs full sweep — pinned equal by the delta
/// property tests), never in what is derived from them. Frames that changed
/// too much (per [`crate::rulegen::delta::DeltaPolicy`]), the first frame,
/// and network/grid switches automatically fall back to full sweeps while
/// still recording the caches for the next frame. [`FrameDeltaState::stats`]
/// reports what the delta path did.
#[must_use]
pub fn execute_pattern_delta(
    spec: &NetworkSpec,
    initial_coords: &[PillarCoord],
    grid: GridShape,
    encoder_macs: u64,
    ctx: &ExecutionContext<'_>,
    arena: &mut ExecutionArena,
    state: &mut FrameDeltaState,
) -> (NetworkTrace, Vec<LayerWorkload>) {
    execute_pattern_inner(
        spec,
        initial_coords,
        grid,
        encoder_macs,
        ctx,
        arena,
        Some(state),
    )
}

/// The one executor body behind both the full and delta entry points.
fn execute_pattern_inner(
    spec: &NetworkSpec,
    initial_coords: &[PillarCoord],
    grid: GridShape,
    encoder_macs: u64,
    ctx: &ExecutionContext<'_>,
    arena: &mut ExecutionArena,
    mut delta: Option<&mut FrameDeltaState>,
) -> (NetworkTrace, Vec<LayerWorkload>) {
    let pruner = VectorPruner::new(ctx.pruning);
    // Layers always produce CPR-ordered in-bounds sets, but the encoder
    // output arrives from the caller: normalise it once up front (the common
    // case — already sorted, unique, in bounds — is a zero-copy check).
    let initial: Arc<[PillarCoord]> = if initial_coords.windows(2).all(|w| w[0] < w[1])
        && initial_coords.iter().all(|c| c.in_bounds(grid))
    {
        Arc::from(initial_coords)
    } else {
        arena.scratch.clear();
        arena
            .scratch
            .extend(initial_coords.iter().copied().filter(|c| c.in_bounds(grid)));
        arena.scratch.sort_unstable();
        arena.scratch.dedup();
        Arc::from(&arena.scratch[..])
    };
    // Frame-level delta gate: the delta path runs only when the caches hold
    // the same network on the same grid and the frame-to-frame change stays
    // within the policy threshold. Anything else (first frame, i.i.d. drive,
    // scene cut, model switch) falls back to full sweeps — which still
    // *record* the caches so the next frame can go incremental.
    let mut frame_delta = false;
    if let Some(state) = delta.as_deref_mut() {
        state.stats.frames_total += 1;
        let compatible = state.grid == Some(grid) && state.num_layers == Some(spec.layers.len());
        if !compatible {
            state.invalidate();
            state.grid = Some(grid);
            state.num_layers = Some(spec.layers.len());
            state
                .layers
                .resize_with(spec.layers.len(), LayerDeltaCache::default);
        }
        if let Some(prev) = &state.prev_initial {
            if compatible
                && state.policy.accepts(changed_fraction(prev, &initial))
                && state
                    .layers
                    .iter()
                    .zip(&spec.layers)
                    .all(|(c, l)| l.spec.kind == ConvKind::Dense || c.is_populated())
            {
                frame_delta = true;
                state.stats.frames_delta += 1;
            }
        }
    }
    let mut outputs: Vec<(GridShape, Arc<[PillarCoord]>)> = Vec::with_capacity(spec.layers.len());
    let mut traces = Vec::with_capacity(spec.layers.len());
    let mut workloads = Vec::with_capacity(spec.layers.len());
    let mut importance_cache: HashMap<u32, ImportanceModel> = HashMap::new();
    // Foreground accounting at the base resolution.
    let base_importance = match (ctx.scene, ctx.pillar_config) {
        (Some(scene), Some(cfg)) => Some(ImportanceModel::for_scene(
            scene,
            cfg,
            grid,
            1,
            ctx.seed,
            ctx.pruning.finetuned,
        )),
        _ => None,
    };
    let initial_foreground = base_importance
        .as_ref()
        .map(|m| initial.iter().filter(|c| m.is_foreground(**c)).count());
    let mut pruned_foreground_ratio: Vec<f64> = Vec::new();

    for (li, layer) in spec.layers.iter().enumerate() {
        let (in_grid, mut in_coords): (GridShape, Arc<[PillarCoord]>) = match &layer.input {
            LayerInput::Previous => outputs
                .last()
                .map(|(g, c)| (*g, Arc::clone(c)))
                .unwrap_or_else(|| (grid, Arc::clone(&initial))),
            LayerInput::Layer(i) => (outputs[*i].0, Arc::clone(&outputs[*i].1)),
            LayerInput::Union(indices) => {
                // Concatenated branches may differ by a row/column when odd
                // grid sizes round up through stride-2 / deconv chains; crop
                // to the smallest grid, as real detection necks do.
                let g = indices
                    .iter()
                    .map(|&i| outputs[i].0)
                    .min_by_key(|g| (g.height, g.width))
                    .expect("union must reference at least one layer");
                let merged = arena.union_coords(indices.iter().map(|&i| &*outputs[i].1), g);
                (g, merged)
            }
        };
        if layer.densify_input {
            in_coords = arena.dense_cells(in_grid);
        }
        let sp = &layer.spec;
        let out_grid = sp.output_grid(in_grid);
        // One fused sweep per layer produces the dilated output set and the
        // rule count together (dense layers need neither sweep: their output
        // set is the whole grid and their rule count is closed-form;
        // submanifold layers keep their input set as the output set). With a
        // delta state, the sweep is served incrementally: a layer whose
        // input is unchanged reuses last frame's result wholesale, a changed
        // input re-sweeps only the output rows whose halo band is dirty, and
        // full (fallback) frames record the row structure for the next one.
        let (dilated, rules): (Arc<[PillarCoord]>, u64) = match sp.kind {
            ConvKind::Dense => (
                arena.dense_cells(out_grid),
                out_grid.num_cells() as u64 * sp.kernel.num_taps() as u64,
            ),
            ConvKind::SpConvS => {
                let rules = match delta.as_deref_mut() {
                    Some(state) => {
                        let out_rows = u64::from(in_grid.height);
                        state.stats.rows_full_equivalent += out_rows;
                        let reusable = frame_delta
                            && state.layers[li]
                                .input
                                .as_ref()
                                .is_some_and(|p| Arc::ptr_eq(p, &in_coords) || **p == *in_coords);
                        if reusable {
                            state.stats.layers_reused += 1;
                            state.layers[li].rules
                        } else if frame_delta {
                            let (rules, swept) = arena
                                .delta_count_submanifold(&in_coords, in_grid, sp.kernel, state, li);
                            state.stats.layers_patched += 1;
                            state.stats.rows_swept += swept;
                            state.layers[li].input = Some(Arc::clone(&in_coords));
                            rules
                        } else {
                            let rules = arena.count_submanifold_rules_and_record(
                                &in_coords,
                                in_grid,
                                sp.kernel,
                                &mut state.layers[li],
                            );
                            state.stats.layers_full += 1;
                            state.stats.rows_swept += out_rows;
                            state.layers[li].input = Some(Arc::clone(&in_coords));
                            rules
                        }
                    }
                    None => arena.count_submanifold_rules(&in_coords, in_grid, sp.kernel),
                };
                (Arc::clone(&in_coords), rules)
            }
            _ => match delta.as_deref_mut() {
                Some(state) => {
                    let out_rows = u64::from(out_grid.height);
                    state.stats.rows_full_equivalent += out_rows;
                    let reusable = frame_delta
                        && state.layers[li]
                            .input
                            .as_ref()
                            .is_some_and(|p| Arc::ptr_eq(p, &in_coords) || **p == *in_coords);
                    if reusable {
                        state.stats.layers_reused += 1;
                        let cache = &state.layers[li];
                        (
                            Arc::clone(cache.dilated.as_ref().expect("populated cache")),
                            cache.rules,
                        )
                    } else if frame_delta {
                        let (out, rules, swept) = arena.delta_dilate_and_count(
                            &in_coords, in_grid, sp.kind, sp.kernel, state, li,
                        );
                        state.stats.layers_patched += 1;
                        state.stats.rows_swept += swept;
                        state.layers[li].input = Some(Arc::clone(&in_coords));
                        (out, rules)
                    } else {
                        let cache = &mut state.layers[li];
                        let (out, rules) = arena.dilate_count_and_record(
                            &in_coords, in_grid, sp.kind, sp.kernel, cache,
                        );
                        let out: Arc<[PillarCoord]> = Arc::from(out);
                        cache.dilated = Some(Arc::clone(&out));
                        cache.input = Some(Arc::clone(&in_coords));
                        state.stats.layers_full += 1;
                        state.stats.rows_swept += out_rows;
                        (out, rules)
                    }
                }
                None => {
                    let (out, rules) =
                        arena.dilate_and_count(&in_coords, in_grid, sp.kind, sp.kernel);
                    (Arc::from(out), rules)
                }
            },
        };
        // Dynamic pruning for SpConv-P layers.
        let out_coords: Arc<[PillarCoord]> = if sp.kind == ConvKind::SpConvP {
            let downsample = (grid.height / out_grid.height).max(1);
            let scores = match (ctx.scene, ctx.pillar_config) {
                (Some(scene), Some(cfg)) => {
                    let model = importance_cache.entry(downsample).or_insert_with(|| {
                        ImportanceModel::for_scene(
                            scene,
                            cfg,
                            out_grid,
                            downsample,
                            ctx.seed,
                            ctx.pruning.finetuned,
                        )
                    });
                    model.scores(&dilated)
                }
                _ => dilated
                    .iter()
                    .map(|c| {
                        // Deterministic pseudo-importance when no scene is given.
                        let h = (u64::from(c.row) << 32) ^ u64::from(c.col) ^ ctx.seed;
                        (h.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64
                    })
                    .collect(),
            };
            let kept = pruner.prune_coords(&dilated, &scores);
            if let Some(model) = importance_cache.get(&((grid.height / out_grid.height).max(1))) {
                let fg_before = dilated.iter().filter(|c| model.is_foreground(**c)).count();
                let fg_after = kept.iter().filter(|c| model.is_foreground(**c)).count();
                if fg_before > 0 {
                    pruned_foreground_ratio.push(fg_after as f64 / fg_before as f64);
                }
            }
            // Pruning is scene-dependent and re-runs every frame even on the
            // delta path, but an unchanged pruned set reuses the previous
            // frame's allocation so downstream layers see pointer-equal
            // inputs.
            match delta.as_deref_mut() {
                Some(state) => {
                    let cache = &mut state.layers[li];
                    let arc = match cache.output.as_ref() {
                        Some(prev) if prev[..] == kept[..] => Arc::clone(prev),
                        _ => Arc::from(kept),
                    };
                    cache.output = Some(Arc::clone(&arc));
                    arc
                }
                None => Arc::from(kept),
            }
        } else {
            // Non-pruning layers pass the dilated set through unchanged — an
            // `Arc` clone, not a coordinate copy.
            Arc::clone(&dilated)
        };
        let macs = match sp.kind {
            ConvKind::Dense => {
                out_grid.num_cells() as u64
                    * sp.kernel.num_taps() as u64
                    * sp.macs_per_rule() as u64
            }
            _ => rules * sp.macs_per_rule() as u64,
        };
        let dense_macs = dense_macs_for(sp, in_grid, out_grid);
        traces.push(LayerTrace {
            name: sp.name.clone(),
            kind: sp.kind,
            stage: layer.stage,
            in_grid,
            out_grid,
            in_active: in_coords.len(),
            dilated_active: dilated.len(),
            out_active: out_coords.len(),
            in_channels: sp.in_channels,
            out_channels: sp.out_channels,
            rules,
            macs,
            dense_macs,
            iopr: iopr(in_coords.len(), out_coords.len()),
        });
        workloads.push(LayerWorkload {
            spec: sp.clone(),
            stage: layer.stage,
            input_grid: in_grid,
            input_coords: in_coords,
            output_grid: out_grid,
            output_coords: Arc::clone(&out_coords),
            rules,
        });
        outputs.push((out_grid, out_coords));
    }

    if let Some(state) = delta {
        state.prev_initial = Some(initial);
    }

    // Foreground coverage: fraction retained through all pruning stages,
    // relative to the foreground evidence present in the encoder output.
    let foreground_coverage = initial_foreground.map(|initial| {
        if initial == 0 {
            1.0
        } else {
            pruned_foreground_ratio
                .iter()
                .product::<f64>()
                .clamp(0.0, 1.0)
        }
    });

    (
        NetworkTrace {
            name: spec.name.clone(),
            layers: traces,
            encoder_macs,
            foreground_coverage,
        },
        workloads,
    )
}

/// Counts the number of input-output rules for a layer analytically (without
/// materialising the rule book).
///
/// The submanifold path binary-searches `input_coords` directly when the
/// slice is already in CPR order (as every layer input in this crate is);
/// unsorted input is handled via a one-off sorted copy.
#[must_use]
pub fn count_rules(
    input_coords: &[PillarCoord],
    in_grid: GridShape,
    out_grid: GridShape,
    kind: ConvKind,
    kernel: crate::kernel::KernelShape,
) -> u64 {
    let offsets = kernel.offsets();
    match kind {
        ConvKind::Dense => out_grid.num_cells() as u64 * offsets.len() as u64,
        ConvKind::SpConv | ConvKind::SpConvP => {
            let mut rules = 0u64;
            for p in input_coords {
                for &(dr, dc) in &offsets {
                    if p.offset(-dr, -dc, out_grid).is_some() {
                        rules += 1;
                    }
                }
            }
            rules
        }
        ConvKind::SpConvS => {
            // Every in-repo layer input is CPR-sorted, so membership is a
            // binary search on the slice itself; an unsorted caller (legal,
            // just slower) falls back to an owned sorted copy so the counts
            // stay correct in release builds too.
            let sorted_copy: Vec<PillarCoord>;
            let sorted: &[PillarCoord] = if input_coords.windows(2).all(|w| w[0] < w[1]) {
                input_coords
            } else {
                let mut v = input_coords.to_vec();
                v.sort_unstable();
                v.dedup();
                sorted_copy = v;
                &sorted_copy
            };
            let mut rules = 0u64;
            for p in input_coords {
                for &(dr, dc) in &offsets {
                    if let Some(q) = p.offset(-dr, -dc, in_grid) {
                        if sorted.binary_search(&q).is_ok() {
                            rules += 1;
                        }
                    }
                }
            }
            rules
        }
        ConvKind::SpStConv => {
            let mut rules = 0u64;
            for p in input_coords {
                for &(dr, dc) in &offsets {
                    let qr2 = i64::from(p.row) - i64::from(dr);
                    let qc2 = i64::from(p.col) - i64::from(dc);
                    if qr2 >= 0
                        && qc2 >= 0
                        && qr2 % 2 == 0
                        && qc2 % 2 == 0
                        && (qr2 / 2) < i64::from(out_grid.height)
                        && (qc2 / 2) < i64::from(out_grid.width)
                    {
                        rules += 1;
                    }
                }
            }
            rules
        }
        ConvKind::SpDeconv => {
            let mut rules = 0u64;
            for p in input_coords {
                for &(dr, dc) in &offsets {
                    let q = PillarCoord::new(p.row * 2 + dr as u32, p.col * 2 + dc as u32);
                    if q.in_bounds(out_grid) {
                        rules += 1;
                    }
                }
            }
            rules
        }
    }
}

/// Dense-equivalent MAC count for a layer (what an ideal dense accelerator or
/// GPU computes for the same layer shape).
#[must_use]
pub fn dense_macs_for(spec: &LayerSpec, in_grid: GridShape, out_grid: GridShape) -> u64 {
    let cells = match spec.kind {
        ConvKind::SpDeconv => in_grid.num_cells(),
        _ => out_grid.num_cells(),
    } as u64;
    cells * spec.kernel.num_taps() as u64 * spec.macs_per_rule() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelShape;
    use spade_tensor::CprTensor;

    fn simple_spec(kind: ConvKind) -> NetworkSpec {
        NetworkSpec {
            name: "test".into(),
            encoder_channels: 4,
            layers: vec![
                NetworkLayer {
                    spec: LayerSpec::new("L1", kind, 4, 4),
                    input: LayerInput::Previous,
                    stage: 1,
                    densify_input: false,
                },
                NetworkLayer {
                    spec: LayerSpec::new("L2", kind, 4, 4),
                    input: LayerInput::Previous,
                    stage: 1,
                    densify_input: false,
                },
            ],
        }
    }

    fn initial() -> (Vec<PillarCoord>, GridShape) {
        let grid = GridShape::new(16, 16);
        let coords = vec![
            PillarCoord::new(2, 2),
            PillarCoord::new(2, 3),
            PillarCoord::new(8, 8),
            PillarCoord::new(12, 5),
        ];
        (coords, grid)
    }

    #[test]
    fn submanifold_network_preserves_active_count() {
        let (coords, grid) = initial();
        let (trace, workloads) = execute_pattern(
            &simple_spec(ConvKind::SpConvS),
            &coords,
            grid,
            100,
            &ExecutionContext::default(),
        );
        assert_eq!(trace.layers.len(), 2);
        for l in &trace.layers {
            assert_eq!(l.in_active, 4);
            assert_eq!(l.out_active, 4);
            assert!((l.iopr - 1.0).abs() < 1e-12);
        }
        assert_eq!(workloads.len(), 2);
        assert_eq!(trace.encoder_macs, 100);
    }

    #[test]
    fn spconv_network_dilates_layer_by_layer() {
        let (coords, grid) = initial();
        let (trace, _) = execute_pattern(
            &simple_spec(ConvKind::SpConv),
            &coords,
            grid,
            0,
            &ExecutionContext::default(),
        );
        assert!(trace.layers[0].out_active > trace.layers[0].in_active);
        assert!(trace.layers[1].out_active > trace.layers[1].in_active);
        assert!(trace.layers[0].iopr > 1.0);
    }

    #[test]
    fn sparse_network_saves_computation_vs_dense() {
        let (coords, grid) = initial();
        let ctx = ExecutionContext::default();
        let (sparse, _) = execute_pattern(&simple_spec(ConvKind::SpConvS), &coords, grid, 0, &ctx);
        let (dense, _) = execute_pattern(&simple_spec(ConvKind::Dense), &coords, grid, 0, &ctx);
        assert!(sparse.total_macs() < dense.total_macs());
        assert!(sparse.computation_savings() > 0.5);
        assert!(dense.computation_savings().abs() < 1e-9);
    }

    #[test]
    fn pruning_layers_reduce_dilated_outputs() {
        let (coords, grid) = initial();
        let ctx = ExecutionContext {
            pruning: PruningConfig {
                keep_ratio: 0.5,
                min_keep: 1,
                finetuned: true,
            },
            ..Default::default()
        };
        let (trace, _) = execute_pattern(&simple_spec(ConvKind::SpConvP), &coords, grid, 0, &ctx);
        for l in &trace.layers {
            assert!(l.out_active < l.dilated_active);
        }
    }

    #[test]
    fn densify_flag_fills_grid() {
        let (coords, grid) = initial();
        let mut spec = simple_spec(ConvKind::Dense);
        spec.layers[0].densify_input = true;
        let (trace, workloads) =
            execute_pattern(&spec, &coords, grid, 0, &ExecutionContext::default());
        assert_eq!(trace.layers[0].in_active, grid.num_cells());
        assert_eq!(workloads[0].input_coords.len(), grid.num_cells());
    }

    #[test]
    fn union_input_merges_active_sets() {
        let spec = NetworkSpec {
            name: "u".into(),
            encoder_channels: 2,
            layers: vec![
                NetworkLayer {
                    spec: LayerSpec::new("A", ConvKind::SpConvS, 2, 2),
                    input: LayerInput::Previous,
                    stage: 1,
                    densify_input: false,
                },
                NetworkLayer {
                    spec: LayerSpec::new("B", ConvKind::SpConv, 2, 2),
                    input: LayerInput::Layer(0),
                    stage: 1,
                    densify_input: false,
                },
                NetworkLayer {
                    spec: LayerSpec::new("C", ConvKind::SpConvS, 4, 2),
                    input: LayerInput::Union(vec![0, 1]),
                    stage: 2,
                    densify_input: false,
                },
            ],
        };
        let (coords, grid) = initial();
        let (trace, _) = execute_pattern(&spec, &coords, grid, 0, &ExecutionContext::default());
        // The union contains at least as many pillars as the submanifold branch.
        assert!(trace.layers[2].in_active >= trace.layers[0].out_active);
        assert_eq!(trace.layers[2].in_active, trace.layers[1].out_active);
    }

    #[test]
    fn count_rules_matches_rulebook_for_sparse_kinds() {
        let (coords, grid) = initial();
        let t = CprTensor::from_coords(grid, 1, &coords);
        for kind in [ConvKind::SpConv, ConvKind::SpConvS, ConvKind::SpStConv] {
            let book = crate::rulegen::generate_rules(&t, kind, KernelShape::k3x3());
            let counted = count_rules(
                &coords,
                grid,
                crate::rulegen::output_grid(grid, kind),
                kind,
                KernelShape::k3x3(),
            );
            assert_eq!(counted, book.num_rules() as u64, "kind {kind}");
        }
        let book = crate::rulegen::generate_rules(&t, ConvKind::SpDeconv, KernelShape::k2x2());
        let counted = count_rules(
            &coords,
            grid,
            grid.upsample(2),
            ConvKind::SpDeconv,
            KernelShape::k2x2(),
        );
        assert_eq!(counted, book.num_rules() as u64);
    }

    fn mixed_spec() -> NetworkSpec {
        let mk = |name: &str, kind, input| NetworkLayer {
            spec: LayerSpec::new(name, kind, 4, 4),
            input,
            stage: 1,
            densify_input: false,
        };
        NetworkSpec {
            name: "mixed".into(),
            encoder_channels: 4,
            layers: vec![
                mk("sub", ConvKind::SpConvS, LayerInput::Previous),
                mk("conv", ConvKind::SpConv, LayerInput::Previous),
                mk("down", ConvKind::SpStConv, LayerInput::Previous),
                mk("prune", ConvKind::SpConvP, LayerInput::Previous),
                mk("up", ConvKind::SpDeconv, LayerInput::Previous),
                mk("merge", ConvKind::SpConvS, LayerInput::Union(vec![1, 4])),
            ],
        }
    }

    /// A drifting frame sequence: a few pillars move each frame, the rest
    /// persist — the temporal shape of a persistent drive.
    fn drifting_frames(grid: GridShape, frames: usize) -> Vec<Vec<PillarCoord>> {
        let mut s = 0x1234_5678_u64;
        let mut step = |m: u32| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u32 % m
        };
        let mut current: Vec<PillarCoord> = (0..70)
            .map(|_| PillarCoord::new(step(grid.height), step(grid.width)))
            .collect();
        let mut out = Vec::with_capacity(frames);
        for _ in 0..frames {
            let mut f = current.clone();
            f.sort();
            f.dedup();
            out.push(f);
            for _ in 0..4 {
                let idx = step(current.len() as u32) as usize;
                current[idx] = PillarCoord::new(step(grid.height), step(grid.width));
            }
        }
        out
    }

    #[test]
    fn delta_execution_is_byte_identical_to_full() {
        let grid = GridShape::new(32, 32);
        let spec = mixed_spec();
        let ctx = ExecutionContext {
            pruning: PruningConfig {
                keep_ratio: 0.5,
                min_keep: 1,
                finetuned: true,
            },
            seed: 7,
            ..Default::default()
        };
        let mut delta_arena = ExecutionArena::new();
        let mut full_arena = ExecutionArena::new();
        let mut state = FrameDeltaState::default();
        for (i, coords) in drifting_frames(grid, 8).iter().enumerate() {
            let incremental =
                execute_pattern_delta(&spec, coords, grid, 50, &ctx, &mut delta_arena, &mut state);
            let full = execute_pattern_with_arena(&spec, coords, grid, 50, &ctx, &mut full_arena);
            assert_eq!(incremental, full, "frame {i} diverged");
        }
        let stats = state.stats();
        assert_eq!(stats.frames_total, 8);
        assert!(stats.frames_delta >= 6, "drifting frames should go delta");
        assert!(stats.layers_patched > 0, "some layers must row-splice");
        assert!(
            stats.rows_swept < stats.rows_full_equivalent,
            "the delta path must sweep fewer rows than the full path"
        );
        assert!(stats.modelled_speedup() > 1.0);
    }

    #[test]
    fn delta_state_survives_network_and_grid_switches() {
        let ctx = ExecutionContext::default();
        let mut arena = ExecutionArena::new();
        let mut state = FrameDeltaState::default();
        let grid_a = GridShape::new(24, 24);
        let grid_b = GridShape::new(16, 16);
        let frames = drifting_frames(grid_b, 3);
        // Interleave two specs and two grids through one state: every switch
        // must invalidate and fall back, never produce stale results.
        for (spec, grid) in [
            (mixed_spec(), grid_a),
            (simple_spec(ConvKind::SpConv), grid_a),
            (mixed_spec(), grid_b),
            (mixed_spec(), grid_b),
        ] {
            for coords in &frames {
                let incremental =
                    execute_pattern_delta(&spec, coords, grid, 0, &ctx, &mut arena, &mut state);
                let full = execute_pattern(&spec, coords, grid, 0, &ctx);
                assert_eq!(incremental, full);
            }
        }
    }

    #[test]
    fn iid_frames_fall_back_to_full_sweeps() {
        let grid = GridShape::new(24, 24);
        let spec = simple_spec(ConvKind::SpConv);
        let ctx = ExecutionContext::default();
        let mut arena = ExecutionArena::new();
        let mut state = FrameDeltaState::default();
        // Disjoint coordinate sets per frame: changed fraction ~2.0.
        for base in [0u32, 8, 16] {
            let coords = vec![
                PillarCoord::new(base, 1),
                PillarCoord::new(base + 2, 3),
                PillarCoord::new(base + 4, 5),
            ];
            let incremental =
                execute_pattern_delta(&spec, &coords, grid, 0, &ctx, &mut arena, &mut state);
            assert_eq!(incremental, execute_pattern(&spec, &coords, grid, 0, &ctx));
        }
        let stats = state.stats();
        assert_eq!(stats.frames_total, 3);
        assert_eq!(stats.frames_delta, 0, "i.i.d. frames must not go delta");
        assert_eq!(stats.rows_swept, stats.rows_full_equivalent);
        assert_eq!(stats.modelled_speedup(), 1.0);
    }

    #[test]
    fn identical_frames_reuse_whole_layers() {
        let grid = GridShape::new(24, 24);
        let spec = mixed_spec();
        let ctx = ExecutionContext::default();
        let mut arena = ExecutionArena::new();
        let mut state = FrameDeltaState::default();
        let coords = drifting_frames(grid, 1).pop().unwrap();
        let first = execute_pattern_delta(&spec, &coords, grid, 0, &ctx, &mut arena, &mut state);
        let second = execute_pattern_delta(&spec, &coords, grid, 0, &ctx, &mut arena, &mut state);
        assert_eq!(first, second);
        let stats = state.stats();
        assert_eq!(stats.frames_delta, 1);
        // Frame 2's non-dense layers are all served from the cache: pointer
        // equality propagates layer to layer, so nothing is swept at all.
        assert_eq!(stats.layers_patched, 0);
        assert_eq!(stats.layers_reused, spec.layers.len());
        assert_eq!(stats.rows_swept, stats.rows_full_equivalent / 2);
    }

    #[test]
    fn strided_layer_halves_grid_in_trace() {
        let spec = NetworkSpec {
            name: "s".into(),
            encoder_channels: 2,
            layers: vec![NetworkLayer {
                spec: LayerSpec::new("down", ConvKind::SpStConv, 2, 4),
                input: LayerInput::Previous,
                stage: 1,
                densify_input: false,
            }],
        };
        let (coords, grid) = initial();
        let (trace, _) = execute_pattern(&spec, &coords, grid, 0, &ExecutionContext::default());
        assert_eq!(trace.layers[0].out_grid, GridShape::new(8, 8));
    }
}
