//! PointAcc-style point-cloud accelerator model.
//!
//! Following the paper's methodology (Sec. IV-B4), PointAcc is modelled with
//! the same MXU and on-chip memory capacity as SPADE, but with (1) a
//! 64-element bitonic merge sorter for rule generation and (2) cache-based
//! gather/scatter through a direct-mapped cache, which re-fetches inputs near
//! active-tile boundaries (≈20 % extra DRAM traffic on SPP workloads).

use serde::{Deserialize, Serialize};
use spade_core::gsu::TilePlan;
use spade_core::{
    simulate_network_via_layers, Accelerator, LayerPerf, NetworkPerf, SpadeConfig,
    ENCODER_MXU_UTILIZATION,
};
use spade_nn::graph::LayerWorkload;
use spade_nn::rulegen::RuleGenMethod;
use spade_sim::{EnergyBreakdown, EnergyModel};

/// Miss count of the statistical gather walk, in closed form.
///
/// The walk's address stream is `i·c + pass·7·line` for `i` ascending over
/// the inputs — line numbers are monotonically non-decreasing within a
/// pass, so a pass misses each distinct line it touches exactly once unless
/// the line is still resident from the previous pass. Pass `p` touches the
/// `W = ⌈inputs·c / line⌉` lines `[7p, 7p+W−1]` (the `p·7·line` offset is
/// line-aligned); when it ends, the resident set is the last `min(W, N)` of
/// them, where `N` is the cache's line count — an ascending stream evicts
/// line `X−N` when it installs `X` and never returns to it. In the next
/// pass a touched line `X` therefore hits iff it is resident (`X ≥
/// 7p+W−N`) and this pass's own earlier installs have not wrapped onto it
/// (`X < 7(p+1)+N`), a count independent of `p`:
///
/// ```text
/// hits   = max(0, min(W−1, N+6) − max(W−N, 7) + 1)
/// misses = W + (passes−1)·(W − hits)
/// ```
///
/// Bit-identical to walking a [`DirectMappedCache`] access by access —
/// pinned by `closed_form_matches_direct_walk` below — while turning the
/// dominant PointAcc simulation cost into a handful of integer operations.
fn cache_walk_misses(cache_kib: u64, cache_line: u64, inputs: usize, c: u64, passes: u64) -> u64 {
    if inputs == 0 || passes == 0 {
        return 0;
    }
    let n = cache_kib * 1024 / cache_line;
    // Lines one pass touches: the stream's last access spans up to
    // `(inputs−1)·c + max(c,1) − 1` (`access_range` touches at least one
    // line even for zero-length objects).
    let w = ((inputs as u64 - 1) * c + c.max(1) - 1) / cache_line + 1;
    let lo = (w.saturating_sub(n)).max(7);
    let hi = (w - 1).min(n + 6);
    let hits = if hi >= lo { hi - lo + 1 } else { 0 };
    w + (passes - 1) * (w - hits)
}

/// The PointAcc performance model.
#[derive(Debug, Clone)]
pub struct PointAccModel {
    config: SpadeConfig,
    cache_kib: u64,
    // unit: bytes
    cache_line: u64,
    energy: EnergyModel,
}

/// PointAcc per-layer latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointAccLayerPerf {
    /// Mapping (sorting-based rule generation) cycles.
    pub mapping_cycles: u64,
    /// Gather/scatter cycles (cache accesses + miss penalties).
    pub gather_scatter_cycles: u64,
    /// MXU compute cycles.
    pub compute_cycles: u64,
    /// Total cycles (no overlap, matching the paper's comparison setting).
    pub total_cycles: u64,
    /// DRAM bytes moved, including cache-miss re-fetches.
    pub dram_bytes: u64,
}

/// PointAcc whole-network result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointAccPerf {
    /// Per-layer results.
    pub layers: Vec<PointAccLayerPerf>,
    /// Total cycles.
    pub total_cycles: u64,
    /// Total DRAM bytes.
    pub total_dram_bytes: u64,
    /// Latency (ms).
    pub latency_ms: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl PointAccModel {
    /// Creates a PointAcc model matched in form factor to a SPADE config.
    #[must_use]
    pub fn new(config: SpadeConfig) -> Self {
        Self {
            cache_kib: config.total_sram_kib(),
            cache_line: 64,
            config,
            energy: EnergyModel::asic_32nm(),
        }
    }

    /// Simulates one layer, returning the PointAcc-specific latency breakdown
    /// (mapping vs. gather/scatter vs. compute).
    #[must_use]
    pub fn layer_breakdown(&self, workload: &LayerWorkload) -> PointAccLayerPerf {
        let a = workload.input_coords.len().max(1) as u64;
        let q = workload.output_coords.len().max(1) as u64;
        let r = workload.rules.max(1);
        let c = workload.spec.in_channels as u64;
        let m = workload.spec.out_channels as u64;

        // Sorting-based mapping.
        let mapping_cycles = RuleGenMethod::MergeSort
            .cost(a as usize, q as usize, r as usize)
            .cycles;

        // Cache-based gather: walk the rules in output order; each rule reads
        // its input pillar vector through the direct-mapped cache.
        // Model the access stream statistically at the pillar granularity: the
        // rules touch inputs in a window that slides with the output index, so
        // inputs near window boundaries are evicted and re-fetched. We walk
        // the actual input coordinates once per kernel row group (3 passes for
        // a 3x3 kernel), which reproduces the ~20% re-fetch the paper reports.
        let passes = (workload.spec.kernel.kh as u64).max(1);
        let misses = cache_walk_misses(
            self.cache_kib,
            self.cache_line,
            workload.input_coords.len(),
            c,
            passes,
        );
        let refetch_bytes = misses * self.cache_line;
        let base_bytes = a * c + q * m + workload.spec.kernel.num_taps() as u64 * c * m;
        let dram_bytes = base_bytes + refetch_bytes.saturating_sub(a * c).min(base_bytes / 2);
        let gather_scatter_cycles = r / 4 + misses * 8;

        // Same MXU as SPADE.
        let ch_tiles = (c as usize).div_ceil(self.config.pe_rows) as u64
            * (m as usize).div_ceil(self.config.pe_cols) as u64;
        let compute_cycles = r * ch_tiles;

        let total_cycles = mapping_cycles + gather_scatter_cycles + compute_cycles;
        PointAccLayerPerf {
            mapping_cycles,
            gather_scatter_cycles,
            compute_cycles,
            total_cycles,
            dram_bytes,
        }
    }

    /// Simulates a network, returning the PointAcc-specific result with the
    /// per-layer latency breakdowns.
    #[must_use]
    pub fn network_breakdown(
        &self,
        workloads: &[LayerWorkload],
        encoder_macs: u64,
    ) -> PointAccPerf {
        let layers: Vec<PointAccLayerPerf> =
            workloads.iter().map(|w| self.layer_breakdown(w)).collect();
        let encoder_cycles = (encoder_macs as f64
            / (self.config.num_pes() as f64 * ENCODER_MXU_UTILIZATION))
            .ceil() as u64;
        let total_cycles: u64 = layers.iter().map(|l| l.total_cycles).sum::<u64>() + encoder_cycles;
        let total_dram_bytes: u64 = layers.iter().map(|l| l.dram_bytes).sum();
        // `rules.max(1)` matches the layer cycle model (and the trait view),
        // which charges every layer at least one rule.
        let total_macs: u64 = workloads
            .iter()
            .map(|w| w.rules.max(1) * (w.spec.in_channels * w.spec.out_channels) as u64)
            .sum::<u64>()
            + encoder_macs;
        let latency_ms = total_cycles as f64 / (self.config.freq_ghz * 1e9) * 1e3;
        let energy = self.energy.breakdown(
            total_macs,
            total_dram_bytes * 2,
            total_dram_bytes,
            total_cycles,
            self.config.freq_ghz,
        );
        PointAccPerf {
            layers,
            total_cycles,
            total_dram_bytes,
            latency_ms,
            energy,
        }
    }
}

impl Accelerator for PointAccModel {
    fn name(&self) -> &str {
        "PointAcc"
    }

    /// Maps the PointAcc latency breakdown into the shared [`LayerPerf`]
    /// vocabulary: sorting-based mapping appears as rule-generation cycles and
    /// cache-based gather/scatter as scatter cycles, neither of which overlaps
    /// computation in the paper's comparison setting.
    fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf {
        let detail = self.layer_breakdown(workload);
        let spec = &workload.spec;
        let a = workload.input_coords.len().max(1) as u64;
        let q = workload.output_coords.len().max(1) as u64;
        let c = spec.in_channels as u64;
        let m = spec.out_channels as u64;
        let input_bytes = a * c;
        let output_bytes = q * m;
        let weight_bytes = spec.kernel.num_taps() as u64 * c * m;
        LayerPerf {
            name: spec.name.clone(),
            kind: spec.kind,
            mxu_cycles: detail.compute_cycles,
            load_wgt_cycles: 0,
            copy_psum_cycles: 0,
            scatter_cycles: detail.gather_scatter_cycles,
            rulegen_cycles: detail.mapping_cycles,
            total_cycles: detail.total_cycles,
            macs: workload.rules.max(1) * c * m,
            dram_bytes: detail.dram_bytes,
            // The direct-mapped cache reads each line once per access, so SRAM
            // traffic tracks DRAM traffic plus the writeback pass.
            sram_bytes: detail.dram_bytes * 2,
            tiles: TilePlan {
                input_tile: workload.input_coords.len().max(1),
                num_tiles: 1,
                output_span: workload.output_coords.len().max(1),
                input_bytes,
                output_bytes,
                weight_bytes,
            },
        }
    }

    fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf {
        simulate_network_via_layers(
            self,
            workloads,
            encoder_macs,
            self.config.num_pes(),
            ENCODER_MXU_UTILIZATION,
            self.config.freq_ghz,
            &self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_core::SpadeAccelerator;
    use spade_nn::graph::{execute_pattern, ExecutionContext};
    use spade_nn::{Model, ModelKind};
    use spade_tensor::{GridShape, PillarCoord};

    fn workloads(kind: ModelKind) -> (Vec<LayerWorkload>, u64) {
        let grid = GridShape::new(96, 96);
        let coords: Vec<PillarCoord> = (0..600)
            .map(|i| PillarCoord::new((i / 30) as u32 * 2, (i % 30) as u32 * 2))
            .collect();
        let (trace, w) = execute_pattern(
            Model::build(kind).spec(),
            &coords,
            grid,
            20_000,
            &ExecutionContext::default(),
        );
        (w, trace.encoder_macs)
    }

    #[test]
    fn spade_is_faster_than_pointacc_on_sparse_pointpillars() {
        for kind in [ModelKind::Spp1, ModelKind::Spp2, ModelKind::Spp3] {
            let (w, enc) = workloads(kind);
            let spade = SpadeAccelerator::new(SpadeConfig::high_end()).simulate_network(&w, enc);
            let pacc = PointAccModel::new(SpadeConfig::high_end()).simulate_network(&w, enc);
            let ratio = pacc.total_cycles as f64 / spade.total_cycles as f64;
            assert!(ratio > 1.2, "{kind}: ratio {ratio}");
            assert!(ratio < 6.0, "{kind}: ratio {ratio}");
        }
    }

    #[test]
    fn pointacc_moves_more_dram_than_spade() {
        let (w, enc) = workloads(ModelKind::Spp2);
        let spade = SpadeAccelerator::new(SpadeConfig::high_end()).simulate_network(&w, enc);
        let pacc = PointAccModel::new(SpadeConfig::high_end()).simulate_network(&w, enc);
        assert!(pacc.total_dram_bytes > spade.total_dram_bytes);
    }

    #[test]
    fn closed_form_matches_direct_walk() {
        // Sweep every regime of the closed form: working set far below,
        // around, and far above the cache capacity; single and multi-pass;
        // object sizes below, equal to, and above the line size (including
        // the degenerate zero-byte object `access_range` clamps); and the
        // smallest legal cache. Each case is checked against an actual
        // access-by-access walk of the direct-mapped cache.
        use spade_sim::DirectMappedCache;
        for &kib in &[1u64, 4, 64, 96, 240, 768] {
            for &line in &[32u64, 64] {
                for &inputs in &[0usize, 1, 7, 100, 1_000, 50_000] {
                    for &c in &[0u64, 1, 24, 64, 100, 256] {
                        for &passes in &[1u64, 3, 7] {
                            let mut cache = DirectMappedCache::new(kib, line);
                            let mut misses: u64 = 0;
                            for pass in 0..passes {
                                for i in 0..inputs as u64 {
                                    misses += cache.access_range(i * c + pass * 7 * line, c);
                                }
                            }
                            assert_eq!(
                                cache_walk_misses(kib, line, inputs, c, passes),
                                misses,
                                "kib={kib} line={line} inputs={inputs} c={c} passes={passes}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mapping_dominates_over_spade_rulegen() {
        let (w, _) = workloads(ModelKind::Spp1);
        let model = PointAccModel::new(SpadeConfig::high_end());
        let layer = model.layer_breakdown(&w[0]);
        assert!(layer.mapping_cycles > 0);
        assert!(layer.total_cycles >= layer.mapping_cycles + layer.compute_cycles);
    }

    #[test]
    fn trait_layer_view_matches_breakdown() {
        let (w, enc) = workloads(ModelKind::Spp2);
        let model = PointAccModel::new(SpadeConfig::high_end());
        let detail = model.layer_breakdown(&w[0]);
        let layer = Accelerator::simulate_layer(&model, &w[0]);
        assert_eq!(layer.total_cycles, detail.total_cycles);
        assert_eq!(layer.rulegen_cycles, detail.mapping_cycles);
        assert_eq!(layer.scatter_cycles, detail.gather_scatter_cycles);
        assert_eq!(layer.dram_bytes, detail.dram_bytes);
        let net = Accelerator::simulate_network(&model, &w, enc);
        let breakdown = model.network_breakdown(&w, enc);
        assert_eq!(net.total_cycles, breakdown.total_cycles);
        assert_eq!(net.total_dram_bytes, breakdown.total_dram_bytes);
    }
}
