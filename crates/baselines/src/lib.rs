//! # spade-baselines
//!
//! Baseline accelerator and platform models the paper compares SPADE against:
//!
//! * [`dense_acc`] — DenseAcc, the ideal dense systolic accelerator (same PE
//!   array and buffers as SPADE, no sparsity support).
//! * [`spconv2d_acc`] — a conventional element-sparse Conv2D accelerator
//!   (output-stationary outer-product style) whose utilisation collapses and
//!   bank conflicts grow under vector sparsity (Fig. 2(a–b)).
//! * [`pointacc`] — a PointAcc-style point-cloud accelerator: bitonic
//!   merge-sort rule generation plus cache-based gather/scatter (Fig. 14–15).
//! * [`platform`] — analytic CPU/GPU/Jetson platform models running the dense
//!   networks with cuDNN-style dense convolution and the sparse networks with
//!   the SpConv library (hash-table mapping), reproducing the latency
//!   breakdowns of Fig. 2(c) and Fig. 11(a–b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense_acc;
pub mod platform;
pub mod pointacc;
pub mod spconv2d_acc;

pub use dense_acc::DenseAccelerator;
pub use platform::{Platform, PlatformKind, PlatformLatency};
pub use pointacc::PointAccModel;
pub use spconv2d_acc::SpConv2dAccelerator;
