//! DenseAcc: the ideal dense accelerator baseline.
//!
//! DenseAcc is SPADE without the RGU, GSU, and pruning support: it densifies
//! sparse pillars into the full pseudo-image and runs every layer as dense
//! convolution on the same weight-stationary systolic array. It is the
//! "ideal dense accelerator design" reference of the abstract and Fig. 9–12.

use serde::{Deserialize, Serialize};
use spade_core::gsu::TilePlan;
use spade_core::{simulate_network_via_layers, Accelerator, LayerPerf, NetworkPerf, SpadeConfig};
use spade_nn::graph::{dense_macs_for, LayerWorkload, NetworkTrace};
use spade_sim::{EnergyBreakdown, EnergyModel};

/// The dense accelerator model.
#[derive(Debug, Clone)]
pub struct DenseAccelerator {
    config: SpadeConfig,
    energy: EnergyModel,
    /// Achievable utilisation on dense convolution (weight-load overheads are
    /// amortised over full feature maps).
    utilization: f64,
}

/// Dense execution result for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensePerf {
    /// Total cycles.
    pub total_cycles: u64,
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Total dense MACs executed.
    pub total_macs: u64,
    /// DRAM bytes moved (dense feature maps + weights).
    pub dram_bytes: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl DensePerf {
    /// Average power in watts.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        if self.latency_ms <= 0.0 {
            0.0
        } else {
            self.energy.total_mj() / self.latency_ms
        }
    }
}

impl DenseAccelerator {
    /// Creates a DenseAcc instance with the same form factor as a SPADE
    /// configuration.
    #[must_use]
    pub fn new(config: SpadeConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::asic_32nm(),
            utilization: 0.92,
        }
    }

    /// The hardware configuration.
    #[must_use]
    pub const fn config(&self) -> &SpadeConfig {
        &self.config
    }

    /// Simulates a network trace densely: every layer executes its
    /// dense-equivalent MAC count regardless of activation sparsity.
    ///
    /// This is the *trace-level* estimate: it only sees layer shapes (it
    /// assumes 3×3 weights and overlaps compute/DRAM across the whole
    /// network), so it reports slightly different totals than the canonical
    /// per-layer [`Accelerator`] path. Use the trait for model comparisons;
    /// use this when only a [`NetworkTrace`] is available.
    #[must_use]
    pub fn simulate_trace(&self, trace: &NetworkTrace) -> DensePerf {
        let dense_macs = trace.dense_macs();
        let compute_cycles =
            (dense_macs as f64 / (self.config.num_pes() as f64 * self.utilization)).ceil() as u64;
        // Dense feature maps move through DRAM: per layer, the full input and
        // output grids at int8 plus the weights.
        let mut dram_bytes: u64 = 0;
        for l in &trace.layers {
            dram_bytes += l.in_grid.num_cells() as u64 * l.in_channels as u64;
            dram_bytes += l.out_grid.num_cells() as u64 * l.out_channels as u64;
            dram_bytes += 9 * (l.in_channels * l.out_channels) as u64;
        }
        let dram_cycles = (dram_bytes as f64 / self.config.dram_bytes_per_cycle).ceil() as u64;
        let total_cycles = compute_cycles.max(dram_cycles);
        let sram_bytes = dense_macs / self.config.pe_rows as u64 + dram_bytes;
        let latency_ms = total_cycles as f64 / (self.config.freq_ghz * 1e9) * 1e3;
        let energy = self.energy.breakdown(
            dense_macs,
            sram_bytes,
            dram_bytes,
            total_cycles,
            self.config.freq_ghz,
        );
        DensePerf {
            total_cycles,
            latency_ms,
            total_macs: dense_macs,
            dram_bytes,
            energy,
        }
    }

    /// Speedup of a SPADE run over this dense baseline for the same network.
    #[must_use]
    pub fn speedup_of(&self, spade: &NetworkPerf, trace: &NetworkTrace) -> f64 {
        let dense = self.simulate_trace(trace);
        dense.total_cycles as f64 / spade.total_cycles.max(1) as f64
    }

    /// Energy-savings factor of a SPADE run over this dense baseline.
    #[must_use]
    pub fn energy_savings_of(&self, spade: &NetworkPerf, trace: &NetworkTrace) -> f64 {
        let dense = self.simulate_trace(trace);
        dense.energy.total_pj() / spade.energy.total_pj().max(1e-9)
    }
}

impl Accelerator for DenseAccelerator {
    fn name(&self) -> &str {
        "DenseAcc"
    }

    /// Executes the layer's dense equivalent: the full input and output grids
    /// move through DRAM and every grid cell is computed, regardless of which
    /// pillars are active.
    fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf {
        let spec = &workload.spec;
        let c = spec.in_channels as u64;
        let m = spec.out_channels as u64;
        let macs = dense_macs_for(spec, workload.input_grid, workload.output_grid);
        let compute_cycles =
            (macs as f64 / (self.config.num_pes() as f64 * self.utilization)).ceil() as u64;
        let input_bytes = workload.input_grid.num_cells() as u64 * c;
        let output_bytes = workload.output_grid.num_cells() as u64 * m;
        let weight_bytes = spec.kernel.num_taps() as u64 * c * m;
        let dram_bytes = input_bytes + output_bytes + weight_bytes;
        let dram_cycles = (dram_bytes as f64 / self.config.dram_bytes_per_cycle).ceil() as u64;
        let total_cycles = compute_cycles.max(dram_cycles);
        let sram_bytes = macs / self.config.pe_rows as u64 + dram_bytes;
        LayerPerf {
            name: spec.name.clone(),
            kind: spec.kind,
            mxu_cycles: compute_cycles,
            load_wgt_cycles: 0,
            copy_psum_cycles: 0,
            scatter_cycles: 0,
            rulegen_cycles: 0,
            total_cycles,
            macs,
            dram_bytes,
            sram_bytes,
            // Dense execution streams the whole feature map as one tile.
            tiles: TilePlan {
                input_tile: workload.input_grid.num_cells(),
                num_tiles: 1,
                output_span: workload.output_grid.num_cells(),
                input_bytes,
                output_bytes,
                weight_bytes,
            },
        }
    }

    fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf {
        // The encoder runs at DenseAcc's dense-conv utilisation, not the
        // shared sparse-encoder figure.
        simulate_network_via_layers(
            self,
            workloads,
            encoder_macs,
            self.config.num_pes(),
            self.utilization,
            self.config.freq_ghz,
            &self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_core::SpadeAccelerator;
    use spade_nn::graph::{execute_pattern, ExecutionContext};
    use spade_nn::{Model, ModelKind};
    use spade_tensor::{GridShape, PillarCoord};

    fn run(kind: ModelKind) -> (NetworkTrace, Vec<spade_nn::graph::LayerWorkload>) {
        // A 128x128 grid with a few clustered blocks of active pillars keeps
        // the sparsity in the realistic few-percent regime even after
        // dilation, like a real LiDAR frame does.
        let grid = GridShape::new(128, 128);
        let mut coords: Vec<PillarCoord> = Vec::new();
        for (br, bc) in [(10u32, 10u32), (60, 70), (100, 30)] {
            for r in 0..12 {
                for c in 0..12 {
                    coords.push(PillarCoord::new(br + r, bc + c));
                }
            }
        }
        execute_pattern(
            Model::build(kind).spec(),
            &coords,
            grid,
            10_000,
            &ExecutionContext::default(),
        )
    }

    #[test]
    fn dense_cycles_track_dense_macs() {
        let (trace, _) = run(ModelKind::Spp2);
        let acc = DenseAccelerator::new(SpadeConfig::high_end());
        let perf = acc.simulate_trace(&trace);
        assert_eq!(perf.total_macs, trace.dense_macs());
        assert!(perf.total_cycles > 0);
    }

    #[test]
    fn spade_beats_dense_acc_on_sparse_models_and_savings_scale_with_sparsity() {
        let spade = SpadeAccelerator::new(SpadeConfig::high_end());
        let dense = DenseAccelerator::new(SpadeConfig::high_end());
        let mut speedups = Vec::new();
        for kind in [ModelKind::Spp1, ModelKind::Spp3] {
            let (trace, workloads) = run(kind);
            let perf = spade.simulate_network(&workloads, trace.encoder_macs);
            let s = dense.speedup_of(&perf, &trace);
            assert!(s > 1.0, "{kind}: speedup {s}");
            assert!(dense.energy_savings_of(&perf, &trace) > 1.0);
            speedups.push((trace.computation_savings(), s));
        }
        // The sparser model (SPP3) gains more than SPP1.
        assert!(speedups[1].0 > speedups[0].0);
        assert!(speedups[1].1 > speedups[0].1);
    }

    #[test]
    fn high_end_dense_is_faster_than_low_end_dense() {
        let (trace, _) = run(ModelKind::Pp);
        let he = DenseAccelerator::new(SpadeConfig::high_end()).simulate_trace(&trace);
        let le = DenseAccelerator::new(SpadeConfig::low_end()).simulate_trace(&trace);
        assert!(he.total_cycles < le.total_cycles);
        assert!(he.average_power_w() > 0.0);
    }
}
