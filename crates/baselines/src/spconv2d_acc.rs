//! Conventional element-sparse Conv2D accelerator (SpConv2D-Acc).
//!
//! These accelerators (SCNN-style outer-product, output-stationary) handle
//! *element-wise* activation sparsity well, but under the *vector* sparsity of
//! pillars they suffer two compounding problems (Sec. II-C, Fig. 2(a–b)):
//!
//! 1. **Underutilisation** — the condensed matrix of non-zero elements does
//!    not fill the PE rows because whole channel vectors are missing.
//! 2. **Bank conflicts** — partial sums of different output coordinates
//!    collide in the multi-banked output buffer, and the collision rate grows
//!    as the condensed indices become more irregular with sparsity.

use serde::{Deserialize, Serialize};

/// The utilisation / bank-conflict model of a conventional sparse accelerator
/// processing vector-sparse pillars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpConv2dAccelerator {
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// Number of output-buffer banks.
    pub output_banks: usize,
}

/// Modelled behaviour of SpConv2D-Acc at one sparsity point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpConv2dBehaviour {
    /// Fraction of PE slots doing useful work.
    pub utilization: f64,
    /// Fraction of partial-sum writebacks that collide on a bank.
    pub bank_conflict_rate: f64,
    /// Effective throughput relative to the dense peak.
    pub effective_throughput: f64,
}

impl Default for SpConv2dAccelerator {
    fn default() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 64,
            output_banks: 16,
        }
    }
}

impl SpConv2dAccelerator {
    /// Creates a model with the given array and banking.
    #[must_use]
    pub fn new(pe_rows: usize, pe_cols: usize, output_banks: usize) -> Self {
        Self {
            pe_rows,
            pe_cols,
            output_banks,
        }
    }

    /// Models utilisation and bank conflicts at a given computation sparsity
    /// (fraction of pillar vectors that are zero, in `[0, 1)`).
    ///
    /// At low sparsity the condensed matrix still fills the array and output
    /// indices stay regular; as sparsity grows, whole rows go idle
    /// (utilisation falls towards the active fraction) and scattered output
    /// coordinates make bank collisions increasingly likely.
    #[must_use]
    pub fn behaviour(&self, sparsity: f64) -> SpConv2dBehaviour {
        let s = sparsity.clamp(0.0, 0.999);
        let density = 1.0 - s;
        // Rows are occupied in proportion to the active fraction of the
        // condensed matrix, with a floor from im2col packing.
        let utilization = (0.95 * (density + 0.08 * s)).clamp(0.05, 0.95);
        // Birthday-style collision probability among the irregular output
        // indices drained concurrently each cycle.
        let concurrent = (self.pe_cols as f64 / 8.0).clamp(2.0, 16.0);
        let spread = (self.output_banks as f64) * (0.2 + 0.8 * density);
        let bank_conflict_rate = (1.0 - (-concurrent / spread).exp()).clamp(0.0, 0.95);
        let effective_throughput =
            utilization * (1.0 - 0.6 * bank_conflict_rate);
        SpConv2dBehaviour {
            utilization,
            bank_conflict_rate,
            effective_throughput,
        }
    }

    /// Sweeps sparsity and returns `(sparsity, behaviour)` pairs — the data
    /// series of Fig. 2(b).
    #[must_use]
    pub fn sweep(&self, points: usize) -> Vec<(f64, SpConv2dBehaviour)> {
        (0..points)
            .map(|i| {
                let s = i as f64 / points as f64 * 0.95;
                (s, self.behaviour(s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_degrades_with_sparsity() {
        let acc = SpConv2dAccelerator::default();
        let low = acc.behaviour(0.1);
        let high = acc.behaviour(0.9);
        assert!(low.utilization > high.utilization);
        assert!(high.utilization < 0.5);
    }

    #[test]
    fn bank_conflicts_grow_with_sparsity() {
        let acc = SpConv2dAccelerator::default();
        let low = acc.behaviour(0.1);
        let high = acc.behaviour(0.9);
        assert!(high.bank_conflict_rate > low.bank_conflict_rate);
    }

    #[test]
    fn effective_throughput_collapses_at_high_sparsity() {
        let acc = SpConv2dAccelerator::default();
        assert!(acc.behaviour(0.95).effective_throughput < 0.3);
        assert!(acc.behaviour(0.0).effective_throughput > 0.6);
    }

    #[test]
    fn sweep_is_monotone_in_utilization() {
        let acc = SpConv2dAccelerator::default();
        let sweep = acc.sweep(20);
        assert_eq!(sweep.len(), 20);
        for w in sweep.windows(2) {
            assert!(w[1].1.utilization <= w[0].1.utilization + 1e-9);
        }
    }

    #[test]
    fn more_banks_reduce_conflicts() {
        let few = SpConv2dAccelerator::new(64, 64, 8).behaviour(0.8);
        let many = SpConv2dAccelerator::new(64, 64, 64).behaviour(0.8);
        assert!(many.bank_conflict_rate < few.bank_conflict_rate);
    }
}
