//! Conventional element-sparse Conv2D accelerator (SpConv2D-Acc).
//!
//! These accelerators (SCNN-style outer-product, output-stationary) handle
//! *element-wise* activation sparsity well, but under the *vector* sparsity of
//! pillars they suffer two compounding problems (Sec. II-C, Fig. 2(a–b)):
//!
//! 1. **Underutilisation** — the condensed matrix of non-zero elements does
//!    not fill the PE rows because whole channel vectors are missing.
//! 2. **Bank conflicts** — partial sums of different output coordinates
//!    collide in the multi-banked output buffer, and the collision rate grows
//!    as the condensed indices become more irregular with sparsity.

use serde::{Deserialize, Serialize};
use spade_core::gsu::TilePlan;
use spade_core::{
    simulate_network_via_layers, Accelerator, LayerPerf, NetworkPerf, ENCODER_MXU_UTILIZATION,
};
use spade_nn::graph::LayerWorkload;
use spade_sim::EnergyModel;

/// Clock assumed when the behaviour model is lifted into cycle-level results
/// via the [`Accelerator`] trait — the same 1 GHz as both SPADE design points,
/// so latency comparisons are apples-to-apples.
const SPCONV2D_FREQ_GHZ: f64 = 1.0;

/// The utilisation / bank-conflict model of a conventional sparse accelerator
/// processing vector-sparse pillars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpConv2dAccelerator {
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// Number of output-buffer banks.
    pub output_banks: usize,
}

/// Modelled behaviour of SpConv2D-Acc at one sparsity point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpConv2dBehaviour {
    /// Fraction of PE slots doing useful work.
    pub utilization: f64,
    /// Fraction of partial-sum writebacks that collide on a bank.
    pub bank_conflict_rate: f64,
    /// Effective throughput relative to the dense peak.
    pub effective_throughput: f64,
}

impl Default for SpConv2dAccelerator {
    fn default() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 64,
            output_banks: 16,
        }
    }
}

impl SpConv2dAccelerator {
    /// Creates a model with the given array and banking.
    #[must_use]
    pub fn new(pe_rows: usize, pe_cols: usize, output_banks: usize) -> Self {
        Self {
            pe_rows,
            pe_cols,
            output_banks,
        }
    }

    /// Models utilisation and bank conflicts at a given computation sparsity
    /// (fraction of pillar vectors that are zero, in `[0, 1)`).
    ///
    /// At low sparsity the condensed matrix still fills the array and output
    /// indices stay regular; as sparsity grows, whole rows go idle
    /// (utilisation falls towards the active fraction) and scattered output
    /// coordinates make bank collisions increasingly likely.
    #[must_use]
    pub fn behaviour(&self, sparsity: f64) -> SpConv2dBehaviour {
        let s = sparsity.clamp(0.0, 0.999);
        let density = 1.0 - s;
        // Rows are occupied in proportion to the active fraction of the
        // condensed matrix, with a floor from im2col packing.
        let utilization = (0.95 * (density + 0.08 * s)).clamp(0.05, 0.95);
        // Birthday-style collision probability among the irregular output
        // indices drained concurrently each cycle.
        let concurrent = (self.pe_cols as f64 / 8.0).clamp(2.0, 16.0);
        let spread = (self.output_banks as f64) * (0.2 + 0.8 * density);
        let bank_conflict_rate = (1.0 - (-concurrent / spread).exp()).clamp(0.0, 0.95);
        let effective_throughput = utilization * (1.0 - 0.6 * bank_conflict_rate);
        SpConv2dBehaviour {
            utilization,
            bank_conflict_rate,
            effective_throughput,
        }
    }

    /// Sweeps sparsity and returns `(sparsity, behaviour)` pairs — the data
    /// series of Fig. 2(b).
    #[must_use]
    pub fn sweep(&self, points: usize) -> Vec<(f64, SpConv2dBehaviour)> {
        (0..points)
            .map(|i| {
                let s = i as f64 / points as f64 * 0.95;
                (s, self.behaviour(s))
            })
            .collect()
    }
}

impl Accelerator for SpConv2dAccelerator {
    fn name(&self) -> &str {
        "SpConv2D-Acc"
    }

    /// Lifts the utilisation / bank-conflict behaviour model to cycle level:
    /// the layer's vector sparsity determines the effective throughput, and
    /// the gap between occupancy-limited and conflict-limited cycles shows up
    /// as exposed scatter (output-writeback) stalls.
    fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf {
        let spec = &workload.spec;
        let a = workload.input_coords.len().max(1) as u64;
        let q = workload.output_coords.len().max(1) as u64;
        let c = spec.in_channels as u64;
        let m = spec.out_channels as u64;
        let sparsity = 1.0 - a as f64 / workload.input_grid.num_cells().max(1) as f64;
        let b = self.behaviour(sparsity);
        let num_pes = (self.pe_rows * self.pe_cols) as f64;
        // The condensed matrix skips zero vectors, so useful work matches the
        // sparse MAC count.
        let macs = workload.rules.max(1) * c * m;
        let ideal_cycles = (macs as f64 / num_pes).ceil() as u64;
        let mxu_cycles = (ideal_cycles as f64 / b.utilization.max(1e-6)).ceil() as u64;
        let total_cycles = (ideal_cycles as f64 / b.effective_throughput.max(1e-6)).ceil() as u64;
        let scatter_cycles = total_cycles.saturating_sub(mxu_cycles);
        let input_bytes = a * c;
        let output_bytes = q * m;
        let weight_bytes = spec.kernel.num_taps() as u64 * c * m;
        let dram_bytes = input_bytes + output_bytes + weight_bytes;
        LayerPerf {
            name: spec.name.clone(),
            kind: spec.kind,
            mxu_cycles,
            load_wgt_cycles: 0,
            copy_psum_cycles: 0,
            scatter_cycles,
            rulegen_cycles: 0,
            total_cycles,
            macs,
            dram_bytes,
            sram_bytes: macs / self.pe_rows.max(1) as u64 + dram_bytes,
            tiles: TilePlan {
                input_tile: workload.input_coords.len().max(1),
                num_tiles: 1,
                output_span: workload.output_coords.len().max(1),
                input_bytes,
                output_bytes,
                weight_bytes,
            },
        }
    }

    fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf {
        simulate_network_via_layers(
            self,
            workloads,
            encoder_macs,
            self.pe_rows * self.pe_cols,
            ENCODER_MXU_UTILIZATION,
            SPCONV2D_FREQ_GHZ,
            &EnergyModel::asic_32nm(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_degrades_with_sparsity() {
        let acc = SpConv2dAccelerator::default();
        let low = acc.behaviour(0.1);
        let high = acc.behaviour(0.9);
        assert!(low.utilization > high.utilization);
        assert!(high.utilization < 0.5);
    }

    #[test]
    fn bank_conflicts_grow_with_sparsity() {
        let acc = SpConv2dAccelerator::default();
        let low = acc.behaviour(0.1);
        let high = acc.behaviour(0.9);
        assert!(high.bank_conflict_rate > low.bank_conflict_rate);
    }

    #[test]
    fn effective_throughput_collapses_at_high_sparsity() {
        let acc = SpConv2dAccelerator::default();
        assert!(acc.behaviour(0.95).effective_throughput < 0.3);
        assert!(acc.behaviour(0.0).effective_throughput > 0.6);
    }

    #[test]
    fn sweep_is_monotone_in_utilization() {
        let acc = SpConv2dAccelerator::default();
        let sweep = acc.sweep(20);
        assert_eq!(sweep.len(), 20);
        for w in sweep.windows(2) {
            assert!(w[1].1.utilization <= w[0].1.utilization + 1e-9);
        }
    }

    #[test]
    fn more_banks_reduce_conflicts() {
        let few = SpConv2dAccelerator::new(64, 64, 8).behaviour(0.8);
        let many = SpConv2dAccelerator::new(64, 64, 64).behaviour(0.8);
        assert!(many.bank_conflict_rate < few.bank_conflict_rate);
    }
}
