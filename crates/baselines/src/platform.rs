//! Analytic CPU / GPU / Jetson platform models.
//!
//! The paper measures PP/CP/PN with dense Conv2D (cuDNN / MKL-DNN) and the
//! sparse variants with the SpConv library (hash-table rule generation +
//! cache-based gather/scatter) on five platforms. The models here capture the
//! structure those measurements exhibit: dense convolution runs near each
//! platform's effective throughput, while sparse execution gains little
//! because the mapping and gather/scatter overheads absorb the computation
//! savings (Fig. 2(c), Fig. 11(a–b)).

use serde::{Deserialize, Serialize};
use spade_nn::graph::NetworkTrace;

/// The comparison platforms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// NVIDIA A6000 (server GPU, high-end comparison).
    GpuA6000,
    /// NVIDIA RTX 2080 Ti (server GPU, high-end comparison).
    Gpu2080Ti,
    /// NVIDIA Jetson Xavier NX (edge, high-end comparison).
    JetsonXavierNx,
    /// Intel Xeon 5115 (CPU, low-end comparison).
    CpuXeon5115,
    /// NVIDIA Jetson Nano (edge, low-end comparison).
    JetsonNano,
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlatformKind::GpuA6000 => "A6000",
            PlatformKind::Gpu2080Ti => "2080Ti",
            PlatformKind::JetsonXavierNx => "Jetson-NX",
            PlatformKind::CpuXeon5115 => "Xeon-5115",
            PlatformKind::JetsonNano => "Jetson-NN",
        };
        f.write_str(s)
    }
}

/// Latency breakdown of one network on one platform (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformLatency {
    /// Dense/sparse convolution (matrix-multiply) time.
    pub conv_ms: f64,
    /// Input-output mapping (rule generation) time; zero for dense execution.
    pub mapping_ms: f64,
    /// Gather/scatter and other sparse-bookkeeping time.
    pub gather_ms: f64,
    /// Framework and memory-management overhead.
    pub other_ms: f64,
}

impl PlatformLatency {
    /// Total latency (ms).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.conv_ms + self.mapping_ms + self.gather_ms + self.other_ms
    }
}

/// An analytic platform model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which platform this models.
    pub kind: PlatformKind,
    /// Effective dense-convolution throughput (GOPS achieved, not peak).
    pub effective_dense_gops: f64,
    /// Effective sparse-convolution throughput with the SpConv library
    /// (lower: gather/scatter-bound kernels).
    pub effective_sparse_gops: f64,
    /// Hash-table mapping cost per million rules (ms) — limited parallelism
    /// makes this roughly constant per rule.
    pub mapping_ms_per_mrule: f64,
    /// Gather/scatter cost per million rules (ms).
    pub gather_ms_per_mrule: f64,
    /// Fixed per-frame framework overhead (ms).
    pub framework_overhead_ms: f64,
    /// Board/device power while running the workload (W).
    pub power_w: f64,
}

impl Platform {
    /// Builds the model for a platform kind.
    #[must_use]
    pub fn new(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::GpuA6000 => Self {
                kind,
                effective_dense_gops: 9_000.0,
                effective_sparse_gops: 2_200.0,
                mapping_ms_per_mrule: 0.55,
                gather_ms_per_mrule: 0.35,
                framework_overhead_ms: 1.2,
                power_w: 300.0,
            },
            PlatformKind::Gpu2080Ti => Self {
                kind,
                effective_dense_gops: 7_500.0,
                effective_sparse_gops: 1_800.0,
                mapping_ms_per_mrule: 0.65,
                gather_ms_per_mrule: 0.40,
                framework_overhead_ms: 1.2,
                power_w: 250.0,
            },
            PlatformKind::JetsonXavierNx => Self {
                kind,
                effective_dense_gops: 900.0,
                effective_sparse_gops: 260.0,
                mapping_ms_per_mrule: 3.2,
                gather_ms_per_mrule: 2.0,
                framework_overhead_ms: 2.5,
                power_w: 15.0,
            },
            PlatformKind::CpuXeon5115 => Self {
                kind,
                effective_dense_gops: 350.0,
                effective_sparse_gops: 120.0,
                mapping_ms_per_mrule: 2.4,
                gather_ms_per_mrule: 1.6,
                framework_overhead_ms: 2.0,
                power_w: 85.0,
            },
            PlatformKind::JetsonNano => Self {
                kind,
                effective_dense_gops: 120.0,
                effective_sparse_gops: 40.0,
                mapping_ms_per_mrule: 8.0,
                gather_ms_per_mrule: 5.0,
                framework_overhead_ms: 4.0,
                power_w: 10.0,
            },
        }
    }

    /// The high-end comparison set (GPUs and Jetson Xavier NX).
    #[must_use]
    pub fn high_end_set() -> Vec<Platform> {
        vec![
            Platform::new(PlatformKind::GpuA6000),
            Platform::new(PlatformKind::Gpu2080Ti),
            Platform::new(PlatformKind::JetsonXavierNx),
        ]
    }

    /// The low-end comparison set (CPU and Jetson Nano).
    #[must_use]
    pub fn low_end_set() -> Vec<Platform> {
        vec![
            Platform::new(PlatformKind::CpuXeon5115),
            Platform::new(PlatformKind::JetsonNano),
        ]
    }

    /// Runs a network trace on this platform. Dense-baseline networks (no
    /// sparse layers) run entirely through the dense path; sparse networks pay
    /// the SpConv-library mapping and gather overheads for their sparse layers
    /// while their dense layers still run densely.
    #[must_use]
    pub fn run(&self, trace: &NetworkTrace) -> PlatformLatency {
        use spade_nn::ConvKind;
        let mut dense_ops = 2.0 * trace.encoder_macs as f64;
        let mut sparse_ops = 0.0;
        let mut sparse_rules = 0.0f64;
        for l in &trace.layers {
            // A layer runs through the dense (cuDNN / MKL-DNN) path when it is
            // declared dense or when its input is already a full pseudo-image
            // (the strided and deconvolution layers of the dense baselines).
            let runs_dense = l.kind == ConvKind::Dense || l.in_active == l.in_grid.num_cells();
            if runs_dense {
                dense_ops += 2.0 * l.dense_macs as f64;
            } else {
                sparse_ops += 2.0 * l.macs as f64;
                sparse_rules += l.rules as f64;
            }
        }
        let conv_ms = dense_ops / (self.effective_dense_gops * 1e9) * 1e3
            + sparse_ops / (self.effective_sparse_gops * 1e9) * 1e3;
        let mapping_ms = sparse_rules / 1e6 * self.mapping_ms_per_mrule;
        let gather_ms = sparse_rules / 1e6 * self.gather_ms_per_mrule;
        PlatformLatency {
            conv_ms,
            mapping_ms,
            gather_ms,
            other_ms: self.framework_overhead_ms,
        }
    }

    /// Energy (millijoules) for one frame of the given latency.
    #[must_use]
    pub fn energy_mj(&self, latency: &PlatformLatency) -> f64 {
        self.power_w * latency.total_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_nn::graph::{execute_pattern, ExecutionContext};
    use spade_nn::{Model, ModelKind};
    use spade_tensor::{GridShape, PillarCoord};

    fn trace(kind: ModelKind) -> NetworkTrace {
        let grid = GridShape::new(96, 96);
        let coords: Vec<PillarCoord> = (0..500)
            .map(|i| PillarCoord::new((i / 25) as u32 * 2, (i % 25) as u32 * 2))
            .collect();
        execute_pattern(
            Model::build(kind).spec(),
            &coords,
            grid,
            200_000,
            &ExecutionContext::default(),
        )
        .0
    }

    #[test]
    fn sparse_networks_gain_little_on_gpus() {
        // The core observation of Fig. 2(c): SPP's total platform time does
        // not drop in proportion to its computation savings, because mapping
        // and gather overheads appear.
        let gpu = Platform::new(PlatformKind::Gpu2080Ti);
        let dense = gpu.run(&trace(ModelKind::Pp));
        let sparse = gpu.run(&trace(ModelKind::Spp3));
        let latency_gain = dense.total_ms() / sparse.total_ms();
        let t = trace(ModelKind::Spp3);
        let ops_gain = 1.0 / (1.0 - t.computation_savings());
        assert!(
            latency_gain < ops_gain,
            "latency gain {latency_gain} should trail ops gain {ops_gain}"
        );
        assert!(sparse.mapping_ms > 0.0 && dense.mapping_ms == 0.0);
    }

    #[test]
    fn faster_platforms_have_lower_latency() {
        let t = trace(ModelKind::Pp);
        let a6000 = Platform::new(PlatformKind::GpuA6000).run(&t).total_ms();
        let nano = Platform::new(PlatformKind::JetsonNano).run(&t).total_ms();
        assert!(a6000 < nano);
    }

    #[test]
    fn a6000_gains_little_over_2080ti_on_sparse_models() {
        // 2.5x peak throughput but only a modest gain end to end (the paper
        // reports ~20%): mapping overheads do not scale with GPU FLOPS.
        let t = trace(ModelKind::Spp2);
        let a6000 = Platform::new(PlatformKind::GpuA6000).run(&t).total_ms();
        let ti = Platform::new(PlatformKind::Gpu2080Ti).run(&t).total_ms();
        let gain = ti / a6000;
        assert!(gain > 1.0 && gain < 1.5, "gain {gain}");
    }

    #[test]
    fn energy_follows_power_and_latency() {
        let t = trace(ModelKind::Pp);
        let gpu = Platform::new(PlatformKind::Gpu2080Ti);
        let jetson = Platform::new(PlatformKind::JetsonXavierNx);
        let e_gpu = gpu.energy_mj(&gpu.run(&t));
        let e_jet = jetson.energy_mj(&jetson.run(&t));
        // The GPU is faster but burns far more power; both energies positive.
        assert!(e_gpu > 0.0 && e_jet > 0.0);
    }

    #[test]
    fn platform_sets_cover_the_paper() {
        assert_eq!(Platform::high_end_set().len(), 3);
        assert_eq!(Platform::low_end_set().len(), 2);
        assert_eq!(PlatformKind::JetsonXavierNx.to_string(), "Jetson-NX");
    }
}
