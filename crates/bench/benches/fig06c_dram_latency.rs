//! Regenerates Fig. 6(c) and benchmarks its generation.
use criterion::{criterion_group, criterion_main, Criterion};
use spade_bench::{run_experiment, WorkloadScale};

fn bench(c: &mut Criterion) {
    let out = run_experiment("fig06c", WorkloadScale::Reduced).expect("known experiment id");
    println!("{out}");
    let mut group = c.benchmark_group("fig06c");
    group.sample_size(10);
    group.bench_function("generate", |b| {
        b.iter(|| run_experiment("fig06c", WorkloadScale::Reduced))
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
