//! Regenerates Table I and benchmarks a representative reduced-scale model run.
use criterion::{criterion_group, criterion_main, Criterion};
use spade_bench::{run_experiment, workload, WorkloadScale};
use spade_nn::ModelKind;

fn bench(c: &mut Criterion) {
    let out = run_experiment("table1", WorkloadScale::Reduced).expect("known experiment id");
    println!("{out}");
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("model_run_spp2_reduced", |b| {
        b.iter(|| workload::model_run(ModelKind::Spp2, 7, WorkloadScale::Reduced))
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
