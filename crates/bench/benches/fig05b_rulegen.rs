//! Regenerates Fig. 5(b) and benchmarks its generation, plus the temporal
//! delta rule-generation path against the full streaming sweep on
//! consecutive frames of the stop-and-go scenario.
use criterion::{criterion_group, criterion_main, Criterion};
use spade_bench::{run_experiment, WorkloadScale};
use spade_nn::rulegen::delta::patch_rule_book;
use spade_nn::rulegen::generate_rules;
use spade_nn::{ConvKind, KernelShape};
use spade_pointcloud::{DatasetPreset, DriveScenario, NamedScenario};
use spade_tensor::{CprTensor, PillarCoord};

fn bench(c: &mut Criterion) {
    let out = run_experiment("fig05b", WorkloadScale::Reduced).expect("known experiment id");
    println!("{out}");
    let mut group = c.benchmark_group("fig05b");
    group.sample_size(10);
    group.bench_function("generate", |b| {
        b.iter(|| run_experiment("fig05b", WorkloadScale::Reduced))
    });

    // Delta variant: two consecutive frames of the persistent stop-and-go
    // drive, full-sweeping the second frame vs. patching the first frame's
    // book. The gap is the rule-generation work temporal coherence saves.
    // The frames are cropped to the quarter-scale road-corridor window the
    // reduced sweep runs (full-scale frames scatter per-frame LiDAR sampling
    // noise across nearly every row, dirtying the whole halo).
    let preset = DatasetPreset::kitti_like();
    let drive = DriveScenario::named(preset.clone(), NamedScenario::StopAndGo, 2, 2024);
    let frames = drive.frames();
    let base = preset.grid_shape();
    let grid = spade_tensor::GridShape::new(base.height / 4, base.width / 4);
    let (row0, col0) = (base.height / 4, base.width * 3 / 8);
    let tensors: Vec<CprTensor> = frames
        .iter()
        .map(|f| {
            let coords: Vec<PillarCoord> = f
                .frame
                .pillars
                .active_coords
                .iter()
                .filter(|c| {
                    c.row >= row0
                        && c.row < row0 + grid.height
                        && c.col >= col0
                        && c.col < col0 + grid.width
                })
                .map(|c| PillarCoord::new(c.row - row0, c.col - col0))
                .collect();
            CprTensor::from_coords(grid, 1, &coords)
        })
        .collect();
    let prev_book = generate_rules(&tensors[0], ConvKind::SpConv, KernelShape::k3x3());
    group.bench_function("full_sweep_next_frame", |b| {
        b.iter(|| generate_rules(&tensors[1], ConvKind::SpConv, KernelShape::k3x3()))
    });
    group.bench_function("delta_patch_next_frame", |b| {
        b.iter(|| {
            patch_rule_book(
                &tensors[0],
                &prev_book,
                &tensors[1],
                ConvKind::SpConv,
                KernelShape::k3x3(),
            )
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
