//! `spade-serve`: a dependency-free request loop that serves DSE sweeps
//! and streamed persistent-world drives over TCP.
//!
//! The ROADMAP's north star is SPADE under *service* conditions — many
//! clients sharing one simulation host — and this module is that serving
//! layer, built entirely on `std` (the container vendors no async runtime):
//!
//! * **Thread-per-core accept loop.** [`Server::start`] binds a
//!   non-blocking [`TcpListener`] and spawns `threads` handler threads
//!   that each poll `accept` and then own their connection until EOF.
//!   Requests and responses travel as [`crate::protocol`] length-prefixed
//!   frames; a malformed frame earns an `ERR` reply and the connection
//!   lives on.
//! * **Canonical execution.** A `SWEEP` request is rewritten into its
//!   canonical form ([`crate::protocol::canonicalize_params`]) before
//!   anything else, so every axis-order spelling of the same sweep shares
//!   one cache entry, one in-flight slot, and one byte-exact CSV result
//!   (identical to a direct [`run_dse_on_pool`] of the canonical params).
//! * **In-flight dedupe + LRU result cache.** The first requester of a
//!   key executes the sweep; concurrent duplicates park on a [`Condvar`]
//!   and receive the same result (`deduped=1`). Completed results land in
//!   a byte-bounded LRU cache (`hit=1` on re-request).
//! * **Bounded parallelism.** Every sweep runs on a
//!   [`WorkerPool::with_budget`] over one shared [`ConcurrencyBudget`],
//!   so N concurrent sweeps cannot oversubscribe the host: total extra
//!   threads stay ≤ budget tokens, and each caller always makes inline
//!   progress (a zero-token budget degrades to serial execution).
//! * **Persistent-world streams.** A `FRAME` request advances one drive
//!   one frame through a per-`(drive, model)` [`FrameDeltaState`], the
//!   temporal-delta path of PR 6 — consecutive frames of a client's drive
//!   are patched, not re-swept. Per-frame [`DeltaStats`] are drained into
//!   the service-wide aggregate that `STATS` reports.
//!
//! [`spade_nn::FrameDeltaState`]: FrameDeltaState

use crate::dse::{run_dse_on_pool, DseParams};
use crate::pool::{ConcurrencyBudget, WorkerPool};
use crate::protocol::{
    canonicalize_params, encode_params, write_frame, FrameRequest, Request, Response,
};
use crate::workload::model_run_on_frame_delta;
use spade_nn::{DeltaPolicy, DeltaStats, FrameDeltaState, ModelKind, PruningConfig};
use spade_pointcloud::dataset::{DatasetKind, DatasetPreset};
use spade_pointcloud::{DriveFrame, DriveScenario, DriveScenarioConfig};
use std::collections::HashMap;
use std::io::Read as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Runtime witness for the declared lock order (`state → stream-entry →
/// inflight-slot`, the order `spade-lint`'s static pass enforces on this
/// file). Debug builds track the ranks each thread holds and panic the
/// moment any thread acquires a rank less than or equal to one it already
/// holds — the exact ABBA interleaving PR 7's review found is caught on
/// first execution instead of when the schedules happen to collide.
/// Release builds compile the whole witness to nothing.
pub(crate) mod lockdep {
    /// Lock ranks in declared acquisition order. A thread may only acquire
    /// strictly increasing ranks; re-acquiring a held rank is self-deadlock
    /// and is reported the same way.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub enum Rank {
        /// The global [`super::ServerState`] mutex.
        State = 0,
        /// A per-(drive, model) [`super::StreamEntry`] mutex.
        StreamEntry = 1,
        /// An [`super::Inflight`] result-slot mutex.
        InflightSlot = 2,
    }

    #[cfg(debug_assertions)]
    mod witness {
        use super::Rank;
        use std::cell::RefCell;

        impl Rank {
            fn name(self) -> &'static str {
                match self {
                    Rank::State => "state",
                    Rank::StreamEntry => "stream-entry",
                    Rank::InflightSlot => "inflight-slot",
                }
            }
        }

        thread_local! {
            static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
        }

        /// Proof that this thread claimed `rank`; releases it on drop. Keep
        /// it alive exactly as long as the guard of the lock it describes.
        pub struct Held {
            rank: Rank,
        }

        /// Claims `rank` for the current thread, panicking on any ordering
        /// violation. Call *before* blocking on the lock itself so an
        /// inversion is reported instead of deadlocking the test run.
        pub fn acquire(rank: Rank) -> Held {
            HELD.with(|held| {
                let worst = held.borrow().iter().copied().find(|&h| h >= rank);
                if let Some(worst) = worst {
                    // lint:allow(panic): the witness exists to panic debug
                    // builds on lock-order inversions before they deadlock.
                    panic!(
                        "lockdep: lock-order inversion: acquiring '{}' while holding '{}' \
                         (declared order: state → stream-entry → inflight-slot)",
                        rank.name(),
                        worst.name()
                    );
                }
                held.borrow_mut().push(rank);
            });
            Held { rank }
        }

        impl Drop for Held {
            fn drop(&mut self) {
                HELD.with(|held| {
                    let mut held = held.borrow_mut();
                    if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                        held.remove(pos);
                    }
                });
            }
        }
    }

    #[cfg(not(debug_assertions))]
    mod witness {
        /// Zero-sized stand-in: release builds carry no witness state.
        pub struct Held;

        /// No-op in release builds.
        #[inline(always)]
        pub fn acquire(_rank: super::Rank) -> Held {
            Held
        }
    }

    pub use witness::{acquire, Held};
}

/// A [`MutexGuard`] paired with its lockdep claim, so dropping the guard
/// (explicitly via `drop(...)` or at scope end) releases the witness rank
/// at the same moment the lock itself is released.
pub(crate) struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _held: lockdep::Held,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// The one acquisition path for ranked locks: claims the rank with the
/// debug witness, then blocks on the mutex. `spade-lint`'s static pass
/// recognises `lock_ranked(&..., Rank::X)` calls as acquisition sites of
/// class `X`.
fn lock_ranked<'a, T>(lock: &'a Mutex<T>, rank: lockdep::Rank) -> RankedGuard<'a, T> {
    let held = lockdep::acquire(rank);
    RankedGuard {
        // lint:allow(panic): a poisoned lock means another handler thread
        // already panicked mid-update; escalating loudly beats serving the
        // half-written state it left behind.
        guard: lock.lock().expect("lock poisoned"),
        _held: held,
    }
}

/// How the server binds and how much work it admits at once.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Handler threads (each owns one connection at a time).
    pub threads: usize,
    /// Worker-pool width requested per sweep.
    pub sweep_jobs: usize,
    /// Extra-thread tokens shared by *all* concurrent sweeps.
    pub budget_tokens: usize,
    /// Byte bound on the completed-result cache.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let jobs = crate::pool::default_jobs();
        Self {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            sweep_jobs: jobs,
            budget_tokens: jobs.saturating_sub(1),
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Service counters reported by the `STATS` verb.
#[derive(Debug, Clone, Default)]
struct ServiceStats {
    /// Frames admitted off the wire (any verb, including malformed ones).
    requests_total: u64,
    /// `SWEEP` requests admitted.
    sweeps_requested: u64,
    /// Sweeps actually executed (cache misses that were not deduped).
    sweeps_executed: u64,
    /// `SWEEP` requests answered from the completed-result cache.
    cache_hits: u64,
    /// `SWEEP` requests that parked on an identical in-flight sweep.
    dedup_joined: u64,
    /// `FRAME` requests served.
    frames_served: u64,
    /// Requests answered with `ERR`.
    errors: u64,
    /// Adaptive-exploration counters aggregated across every *executed*
    /// sweep (cache hits and joins re-serve bytes, they do not explore):
    /// cells screened out on a roofline bound, cells fully simulated, and
    /// drive frames the screen saved. Exhaustive sweeps count every cell
    /// as simulated and save nothing.
    cells_screened: u64,
    cells_simulated: u64,
    frames_saved: u64,
    /// Delta-execution counters aggregated across every served sweep and
    /// every drive stream (drained per-request via
    /// [`FrameDeltaState::take_stats`], so nothing is double-counted).
    delta: DeltaStats,
}

/// One completed sweep result plus its LRU clock stamp.
struct CacheEntry {
    body: Arc<str>,
    last_used: u64,
}

/// Byte-bounded LRU over canonical-key → CSV-result entries.
struct ResultCache {
    entries: HashMap<String, CacheEntry>,
    bytes: usize,
    clock: u64,
    max_bytes: usize,
}

impl ResultCache {
    fn new(max_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            bytes: 0,
            clock: 0,
            max_bytes,
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<str>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.body)
        })
    }

    fn insert(&mut self, key: String, body: Arc<str>) {
        self.clock += 1;
        let key_len = key.len();
        self.bytes += key_len + body.len();
        let entry = CacheEntry {
            body,
            last_used: self.clock,
        };
        if let Some(old) = self.entries.insert(key, entry) {
            // Replacing a key must not double-count: the map holds one copy
            // of the key, and the old body is gone.
            self.bytes -= key_len + old.body.len();
        }
        // Evict least-recently-used until back under the bound, but never
        // evict the entry just inserted — an oversized single result is
        // still worth serving warm.
        while self.bytes > self.max_bytes && self.entries.len() > 1 {
            // lint:allow(hash-iter): `last_used` stamps are unique (the
            // clock increments on every get/insert), so the minimum is the
            // same whatever order the map iterates in.
            // lint:allow(panic): the loop condition guarantees len() > 1.
            let coldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            if let Some(e) = self.entries.remove(&coldest) {
                self.bytes -= coldest.len() + e.body.len();
            }
        }
    }
}

/// The rendezvous for concurrent duplicate sweeps: the executor fills the
/// slot, waiters park on the condvar.
#[derive(Default)]
struct Inflight {
    slot: Mutex<Option<Result<Arc<str>, String>>>,
    done: Condvar,
}

impl Inflight {
    fn fulfil(&self, result: Result<Arc<str>, String>) {
        let _held = lockdep::acquire(lockdep::Rank::InflightSlot);
        // lint:allow(panic): the slot is only locked for a field store or a
        // clone — a poisoned slot means the process is already unwinding.
        *self.slot.lock().expect("inflight lock") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<str>, String> {
        // The rank stays claimed across the condvar park: the wait
        // re-acquires the same mutex, so the thread still owns the rank.
        let _held = lockdep::acquire(lockdep::Rank::InflightSlot);
        // lint:allow(panic): see fulfil — a poisoned slot is a process
        // already unwinding, not a malformed request.
        let mut slot = self.slot.lock().expect("inflight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            // lint:allow(panic): same poisoning argument as the lock above.
            slot = self.done.wait(slot).expect("inflight lock");
        }
    }
}

/// Ensures parked duplicate requesters are released even if the executing
/// request panics mid-sweep: dropping the guard while still armed retires
/// the in-flight slot from the server map (so a later request re-executes
/// the sweep instead of joining the dead one's error forever) and fulfils
/// the slot with an error instead of leaving waiters on the condvar.
struct InflightGuard<'a> {
    state: &'a Mutex<ServerState>,
    inflight: &'a Inflight,
    key: &'a str,
    armed: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // `if let` rather than `expect`: this runs during unwinding, and
            // a second panic would abort instead of reporting the first.
            if let Ok(mut st) = self.state.lock() {
                st.inflight.remove(self.key);
            }
            self.inflight
                .fulfil(Err("sweep execution panicked on the server".to_owned()));
        }
    }
}

/// One client drive stream: the generated drive plus the delta state that
/// carries rule structures from frame to frame.
struct StreamEntry {
    scenario_config: DriveScenarioConfig,
    preset: DatasetPreset,
    frames: Option<Vec<DriveFrame>>,
    state: FrameDeltaState,
}

impl StreamEntry {
    fn new(request: FrameRequest) -> Self {
        let preset = match request.model.dataset() {
            DatasetKind::KittiLike => DatasetPreset::kitti_like(),
            DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
        };
        Self {
            scenario_config: request.scenario.config(request.frames, request.seed),
            preset,
            frames: None,
            state: FrameDeltaState::new(DeltaPolicy::default()),
        }
    }

    fn ensure_frames(&mut self) -> &[DriveFrame] {
        if self.frames.is_none() {
            let scenario = DriveScenario::new(self.preset.clone(), self.scenario_config.clone());
            self.frames = Some(scenario.frames());
        }
        // lint:allow(panic): the branch above just filled the option.
        self.frames.as_deref().expect("generated above")
    }
}

/// Map slot for one drive stream: a copy of the request identity that
/// created it, readable under the state lock alone, plus the shared,
/// independently locked entry.
struct StreamSlot {
    identity: FrameRequest,
    entry: Arc<Mutex<StreamEntry>>,
}

impl StreamSlot {
    fn new(request: FrameRequest) -> Self {
        Self {
            identity: request.clone(),
            entry: Arc::new(Mutex::new(StreamEntry::new(request))),
        }
    }

    /// Whether the existing stream can keep serving this request, or the
    /// client has restarted the drive under the same identity.
    fn matches(&self, request: &FrameRequest) -> bool {
        self.identity.scenario == request.scenario
            && self.identity.seed == request.seed
            && self.identity.frames == request.frames
            && self.identity.scale == request.scale
    }
}

/// Everything the handler threads share.
///
/// Lock-order discipline: `state` and a per-stream entry lock are **never**
/// held at the same time. Admission reads stream identities from
/// [`StreamSlot`] under `state` alone; frame execution holds only the
/// entry lock; stats publication re-takes `state` only after the entry
/// guard is dropped. Holding both in either order would let two concurrent
/// `FRAME` requests for one drive deadlock every handler thread.
///
/// The discipline is machine-checked twice over: statically by
/// `spade-lint`'s lock-order pass (declared order `state → stream-entry →
/// inflight-slot`) and at runtime by the [`lockdep`] witness, which panics
/// debug builds on the first out-of-order acquisition.
struct Shared {
    state: Mutex<ServerState>,
    shutdown: AtomicBool,
    budget: Arc<ConcurrencyBudget>,
    sweep_jobs: usize,
}

struct ServerState {
    cache: ResultCache,
    inflight: HashMap<String, Arc<Inflight>>,
    streams: HashMap<(String, ModelKind), StreamSlot>,
    stats: ServiceStats,
}

/// A running `spade-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the handler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(ServerState {
                cache: ResultCache::new(config.cache_bytes),
                inflight: HashMap::new(),
                streams: HashMap::new(),
                stats: ServiceStats::default(),
            }),
            shutdown: AtomicBool::new(false),
            budget: ConcurrencyBudget::new(config.budget_tokens),
            sweep_jobs: config.sweep_jobs.max(1),
        });
        let handles = (0..config.threads.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let listener = listener.try_clone().expect("clone listener handle");
                std::thread::Builder::new()
                    .name(format!("spade-serve-{worker}"))
                    .spawn(move || accept_loop(&listener, &shared))
                    .expect("spawn handler thread")
            })
            .collect();
        Ok(Server {
            shared,
            addr,
            handles,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the handler threads to wind down (same effect as the
    /// `SHUTDOWN` verb).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until every handler thread has exited.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // A short read timeout keeps the thread responsive to shutdown while it
    // waits for a quiet client's next request.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    loop {
        let payload = match read_frame_interruptible(&mut stream, &shared.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        {
            let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
            st.stats.requests_total += 1;
        }
        let request = match std::str::from_utf8(&payload) {
            Ok(text) => crate::protocol::decode_request(text),
            Err(_) => Err("request payload is not valid UTF-8".to_owned()),
        };
        let (response, stop) = match request {
            Ok(Request::Ping) => (Response::ok("pong", ""), false),
            Ok(Request::Stats) => (stats_response(shared), false),
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                (Response::ok("bye", ""), true)
            }
            Ok(Request::Sweep(params)) => (handle_sweep(shared, &params), false),
            Ok(Request::Frame(frame)) => (handle_frame(shared, frame), false),
            Err(message) => (Response::Err(message), false),
        };
        if matches!(response, Response::Err(_)) {
            let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
            st.stats.errors += 1;
        }
        if write_frame(&mut stream, response.encode().as_bytes()).is_err() || stop {
            return;
        }
    }
}

/// Like [`read_frame`], but tolerant of the connection's read timeout:
/// between frames a timeout just re-checks the shutdown flag; mid-frame it
/// keeps reading (the remainder of a started frame is already in flight).
/// Returns `Ok(None)` on clean EOF or shutdown-while-idle.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(1..) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // A frame has started: reassemble the remaining length-prefix bytes and
    // splice them ahead of the payload read.
    let mut rest = [0u8; 3];
    read_exact_patient(stream, &mut rest, shutdown)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds cap",
        ));
    }
    let mut payload = vec![0u8; len];
    read_exact_patient(stream, &mut payload, shutdown)?;
    Ok(Some(payload))
}

/// How long a started frame may stall before the connection is dropped. A
/// live peer has the whole frame in flight already; multi-second silence
/// mid-frame is a dead or hostile client holding a handler thread hostage.
const MID_FRAME_STALL_LIMIT: Duration = Duration::from_secs(5);

/// `read_exact` that retries through read-timeout ticks but stays
/// interruptible: it gives up when the server shuts down or when the peer
/// stalls mid-frame past [`MID_FRAME_STALL_LIMIT`], so a half-written
/// frame can neither hang `Server::join` nor pin a handler thread forever.
fn read_exact_patient(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    // lint:allow(wall-clock): stall-deadline bookkeeping only — the clock
    // gates connection teardown and never feeds an exported value.
    let deadline = std::time::Instant::now() + MID_FRAME_STALL_LIMIT;
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "server shutting down mid-frame",
                    ));
                }
                // lint:allow(wall-clock): stall-deadline check, timing only.
                if std::time::Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// What a `SWEEP` admission decided while the global lock was held.
enum SweepRole {
    Hit(Arc<str>),
    Join(Arc<Inflight>),
    Execute(Arc<Inflight>),
}

fn handle_sweep(shared: &Shared, params: &DseParams) -> Response {
    let canonical = canonicalize_params(params);
    let key = encode_params(&canonical);
    let role = {
        let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
        st.stats.sweeps_requested += 1;
        if let Some(body) = st.cache.get(&key) {
            st.stats.cache_hits += 1;
            SweepRole::Hit(body)
        } else if let Some(inflight) = st.inflight.get(&key).map(Arc::clone) {
            st.stats.dedup_joined += 1;
            SweepRole::Join(inflight)
        } else {
            let inflight = Arc::new(Inflight::default());
            st.inflight.insert(key.clone(), Arc::clone(&inflight));
            st.stats.sweeps_executed += 1;
            SweepRole::Execute(inflight)
        }
    };
    match role {
        SweepRole::Hit(body) => Response::ok("hit=1 deduped=0 join=0", &*body),
        // `join=1` marks a request that parked on an identical in-flight
        // sweep: it did not execute anything, so load generators count it
        // as warm alongside `hit=1` (`deduped` is the legacy spelling).
        SweepRole::Join(inflight) => match inflight.wait() {
            Ok(body) => Response::ok("hit=0 deduped=1 join=1", &*body),
            Err(message) => Response::Err(message),
        },
        SweepRole::Execute(inflight) => {
            let mut guard = InflightGuard {
                state: &shared.state,
                inflight: &inflight,
                key: &key,
                armed: true,
            };
            // The sweep runs outside the global lock; only the publication
            // of its result re-enters it.
            let pool = WorkerPool::with_budget(shared.sweep_jobs, Arc::clone(&shared.budget));
            let result = run_dse_on_pool(&canonical, &pool);
            let body: Arc<str> = Arc::from(result.to_csv());
            {
                let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
                st.stats.delta.merge(&result.delta_stats);
                st.stats.cells_screened += result.cells_screened as u64;
                st.stats.cells_simulated += result.cells_simulated as u64;
                st.stats.frames_saved += result.frames_saved as u64;
                st.cache.insert(key.clone(), Arc::clone(&body));
                st.inflight.remove(&key);
            }
            inflight.fulfil(Ok(Arc::clone(&body)));
            guard.armed = false;
            Response::ok("hit=0 deduped=0 join=0", &*body)
        }
    }
}

fn handle_frame(shared: &Shared, request: FrameRequest) -> Response {
    if request.frames == 0 || request.index >= request.frames {
        return Response::Err(format!(
            "frame index {} out of range for a {}-frame drive",
            request.index, request.frames
        ));
    }
    let stream_key = (request.drive.clone(), request.model);
    let entry = {
        let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
        st.stats.frames_served += 1;
        let slot = st
            .streams
            .entry(stream_key)
            .or_insert_with(|| StreamSlot::new(request.clone()));
        // Same drive identity but a different drive: the client restarted,
        // so the stream (and its delta state) restarts with it. The check
        // reads the slot's identity copy — taking the entry lock here
        // would invert the lock order against the stats merge below.
        if !slot.matches(&request) {
            *slot = StreamSlot::new(request.clone());
        }
        Arc::clone(&slot.entry)
    };
    // Frame generation and model execution run under the per-stream lock
    // only — concurrent requests for *different* drives proceed in
    // parallel; requests for the same drive serialise, which is exactly
    // the in-order contract FrameDeltaState needs.
    let mut entry = lock_ranked(&entry, lockdep::Rank::StreamEntry);
    entry.ensure_frames();
    let pruning_seed = entry.scenario_config.pruning_seed(request.index);
    let StreamEntry {
        preset,
        frames,
        state,
        ..
    } = &mut *entry;
    // lint:allow(panic): `ensure_frames` just populated the option, and the
    // index was bounds-checked against `request.frames` at function entry.
    let frame = &frames.as_deref().expect("ensured above")[request.index].frame;
    let run = model_run_on_frame_delta(
        request.model,
        preset,
        frame,
        pruning_seed,
        request.scale,
        PruningConfig::default(),
        state,
    );
    let frame_stats = state.take_stats();
    // Release the per-stream lock before re-entering the state lock: the
    // two are never held together (see the lock-order note on `Shared`).
    drop(entry);
    {
        let mut st = lock_ranked(&shared.state, lockdep::Rank::State);
        st.stats.delta.merge(&frame_stats);
    }
    let meta = format!(
        "index={} delta={}",
        request.index,
        u8::from(frame_stats.frames_delta > 0)
    );
    let body = format!(
        "model={}\nframe={}/{}\nlayers={}\nencoder_macs={}\nlayers_reused={}\nlayers_patched={}\nlayers_full={}\nrows_swept={}\nrows_full_equivalent={}",
        run.kind.name(),
        request.index,
        request.frames,
        run.workloads.len(),
        run.encoder_macs,
        frame_stats.layers_reused,
        frame_stats.layers_patched,
        frame_stats.layers_full,
        frame_stats.rows_swept,
        frame_stats.rows_full_equivalent,
    );
    Response::ok(meta, body)
}

fn stats_response(shared: &Shared) -> Response {
    let st = lock_ranked(&shared.state, lockdep::Rank::State);
    let stats = &st.stats;
    let hit_rate = if stats.sweeps_requested > 0 {
        stats.cache_hits as f64 / stats.sweeps_requested as f64
    } else {
        0.0
    };
    let body = format!(
        "requests_total={}\nsweeps_requested={}\nsweeps_executed={}\ncache_hits={}\ncache_hit_rate={hit_rate}\ndedup_joined={}\nframes_served={}\nerrors={}\ninflight={}\ncache_entries={}\ncache_bytes={}\nstreams={}\nbudget_available={}\ncells_screened={}\ncells_simulated={}\nframes_saved={}\ndelta_frames_total={}\ndelta_frames_delta={}\ndelta_layers_reused={}\ndelta_layers_patched={}\ndelta_layers_full={}\ndelta_rows_swept={}\ndelta_rows_full_equivalent={}\ndelta_modelled_speedup={}",
        stats.requests_total,
        stats.sweeps_requested,
        stats.sweeps_executed,
        stats.cache_hits,
        stats.dedup_joined,
        stats.frames_served,
        stats.errors,
        st.inflight.len(),
        st.cache.entries.len(),
        st.cache.bytes,
        st.streams.len(),
        shared.budget.available(),
        stats.cells_screened,
        stats.cells_simulated,
        stats.frames_saved,
        stats.delta.frames_total,
        stats.delta.frames_delta,
        stats.delta.layers_reused,
        stats.delta.layers_patched,
        stats.delta.layers_full,
        stats.delta.rows_swept,
        stats.delta.rows_full_equivalent,
        stats.delta.modelled_speedup(),
    );
    Response::ok("stats", body)
}

/// Parses a `STATS` response body back into `key=value` pairs (used by the
/// integration tests and `spade-loadgen`'s final report).
#[must_use]
pub fn parse_stats_body(body: &str) -> HashMap<String, String> {
    body.lines()
        .filter_map(|line| line.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn result_cache_evicts_least_recently_used_first() {
        let mut cache = ResultCache::new(40);
        cache.insert("a".into(), body("0123456789")); // 11 bytes
        cache.insert("b".into(), body("0123456789"));
        cache.insert("c".into(), body("0123456789"));
        assert_eq!(cache.entries.len(), 3);
        // Touch `a` so `b` becomes the coldest, then overflow the bound.
        assert!(cache.get("a").is_some());
        cache.insert("d".into(), body("0123456789"));
        assert!(cache.get("b").is_none(), "coldest entry evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
        assert!(cache.bytes <= 40);
    }

    #[test]
    fn result_cache_keeps_an_oversized_single_entry() {
        let mut cache = ResultCache::new(4);
        cache.insert("k".into(), body("way-over-the-bound"));
        assert!(cache.get("k").is_some(), "newest entry never self-evicts");
    }

    #[test]
    fn inflight_waiters_receive_the_executors_result() {
        let inflight = Arc::new(Inflight::default());
        let waiter = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || inflight.wait())
        };
        inflight.fulfil(Ok(body("csv")));
        assert_eq!(waiter.join().unwrap().unwrap().as_ref(), "csv");
        // Late waiters see the already-filled slot without blocking.
        assert_eq!(inflight.wait().unwrap().as_ref(), "csv");
    }

    #[test]
    fn dropped_inflight_guard_releases_waiters_and_retires_the_key() {
        let state = Mutex::new(ServerState {
            cache: ResultCache::new(1024),
            inflight: HashMap::new(),
            streams: HashMap::new(),
            stats: ServiceStats::default(),
        });
        let inflight = Arc::new(Inflight::default());
        state
            .lock()
            .unwrap()
            .inflight
            .insert("k".to_owned(), Arc::clone(&inflight));
        {
            let _guard = InflightGuard {
                state: &state,
                inflight: &inflight,
                key: "k",
                armed: true,
            };
        }
        assert!(inflight.wait().is_err(), "waiters must not hang");
        assert!(
            state.lock().unwrap().inflight.is_empty(),
            "the failed slot must be retired so a later request re-executes"
        );
    }

    #[test]
    fn stats_body_round_trips_through_the_parser() {
        let parsed = parse_stats_body("a=1\nb=two\nc=3.5");
        assert_eq!(parsed.get("a").map(String::as_str), Some("1"));
        assert_eq!(parsed.get("b").map(String::as_str), Some("two"));
        assert_eq!(parsed.get("c").map(String::as_str), Some("3.5"));
    }

    /// Debug-build lockdep: the declared order acquired front to back is
    /// clean, including release-and-reacquire cycles on one thread.
    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_accepts_the_declared_order() {
        use lockdep::Rank;
        let state = Mutex::new(0u32);
        let entry = Mutex::new(0u32);
        let slot = Mutex::new(0u32);
        {
            let _a = lock_ranked(&state, Rank::State);
            let _b = lock_ranked(&entry, Rank::StreamEntry);
            let _c = lock_ranked(&slot, Rank::InflightSlot);
        }
        // The admission/execution/publication shape of handle_frame:
        // state alone, then stream-entry alone, then state again.
        {
            let _a = lock_ranked(&state, Rank::State);
        }
        let b = lock_ranked(&entry, Rank::StreamEntry);
        drop(b);
        let _a = lock_ranked(&state, Rank::State);
    }

    /// Debug-build lockdep: the pre-fix PR-7 ABBA interleaving — one
    /// thread acquiring state-then-stream while another acquires
    /// stream-then-state — panics with the inversion message on the
    /// inverted thread instead of deadlocking the pair.
    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_panics_on_the_pr7_abba_interleaving() {
        use lockdep::Rank;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let state = Mutex::new(0u32);
        let entry_a = Mutex::new(0u32);
        let entry_b = Mutex::new(0u32);
        let inverted = std::thread::scope(|scope| {
            let clean = scope.spawn(|| {
                // Thread A: the declared order, repeatedly.
                for _ in 0..100 {
                    let _s = lock_ranked(&state, Rank::State);
                    let _e = lock_ranked(&entry_a, Rank::StreamEntry);
                }
            });
            let inverted = scope.spawn(|| {
                // Thread B: the inverted order of the pre-fix stats merge.
                // The witness claims the rank before blocking on the mutex,
                // so this panics instead of wedging against thread A.
                catch_unwind(AssertUnwindSafe(|| {
                    let _e = lock_ranked(&entry_b, Rank::StreamEntry);
                    let _s = lock_ranked(&state, Rank::State);
                }))
            });
            clean.join().expect("clean-order thread must not panic");
            inverted.join().expect("inverted thread itself must join")
        });
        let payload = inverted.expect_err("the inversion must panic in debug builds");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(
            message.contains("lock-order inversion"),
            "unexpected panic message: {message}"
        );
        assert!(
            message.contains("'state'") && message.contains("'stream-entry'"),
            "message should name both ranks: {message}"
        );
    }

    /// A witness panic releases the claimed ranks with the guards, so the
    /// thread can keep taking locks in the declared order afterwards.
    #[cfg(debug_assertions)]
    #[test]
    fn lockdep_recovers_after_a_reported_inversion() {
        use lockdep::Rank;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let state = Mutex::new(0u32);
        let entry = Mutex::new(0u32);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _e = lock_ranked(&entry, Rank::StreamEntry);
            let _s = lock_ranked(&state, Rank::State);
        }));
        assert!(result.is_err());
        // `entry` was poisoned by the unwind above; `state` was never
        // locked, and both ranks were released, so the declared order
        // works again.
        let _s = lock_ranked(&state, Rank::State);
    }
}
