//! Shared workload construction for the experiments.

use spade_core::{Accelerator, NetworkPerf, SpadeAccelerator, SpadeConfig};
use spade_nn::graph::{
    execute_pattern_delta, execute_pattern_with_arena, ExecutionContext, LayerWorkload,
    NetworkTrace,
};
use spade_nn::{ExecutionArena, FrameDeltaState, Model, ModelKind, PruningConfig};
use spade_pointcloud::dataset::{DatasetKind, DatasetPreset, Frame};
use spade_tensor::GridShape;
use std::cell::RefCell;

/// How large a workload to build: `Full` uses the paper-scale BEV grids
/// (432×496 / 512×512); `Reduced` crops the frame to a quarter-size grid so
/// unit tests and quick runs stay fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadScale {
    /// Paper-scale grids (use for `cargo bench` / the experiments binary).
    Full,
    /// Quarter-scale grids (use for tests).
    Reduced,
}

/// The result of running one model on one frame: the network trace and the
/// per-layer accelerator workloads.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Which model ran.
    pub kind: ModelKind,
    /// Pattern-level execution trace.
    pub trace: NetworkTrace,
    /// Per-layer workloads for the accelerator models.
    pub workloads: Vec<LayerWorkload>,
    /// Encoder MAC count.
    pub encoder_macs: u64,
}

/// Generates the frame a model is evaluated on.
#[must_use]
pub fn frame_for(kind: ModelKind, seed: u64) -> (DatasetPreset, Frame) {
    let preset = match kind.dataset() {
        DatasetKind::KittiLike => DatasetPreset::kitti_like(),
        DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
    };
    let frame = preset.generate_frame(seed);
    (preset, frame)
}

/// Runs a model on a synthetic frame at the requested scale.
#[must_use]
pub fn model_run(kind: ModelKind, seed: u64, scale: WorkloadScale) -> ModelRun {
    model_run_with_pruning(kind, seed, scale, PruningConfig::default())
}

/// Runs a model with an explicit pruning configuration (used for the
/// accuracy-sparsity sweep of Fig. 13(a)).
#[must_use]
pub fn model_run_with_pruning(
    kind: ModelKind,
    seed: u64,
    scale: WorkloadScale,
    pruning: PruningConfig,
) -> ModelRun {
    let (preset, frame) = frame_for(kind, seed);
    model_run_on_frame(kind, &preset, &frame, seed, scale, pruning)
}

/// Runs a model on an externally generated frame (e.g. one frame of a
/// [`spade_pointcloud::DriveScenario`]), so multi-frame workloads can build
/// each frame once and re-run it under many accelerator configurations.
#[must_use]
pub fn model_run_on_frame(
    kind: ModelKind,
    preset: &DatasetPreset,
    frame: &Frame,
    seed: u64,
    scale: WorkloadScale,
    pruning: PruningConfig,
) -> ModelRun {
    model_run_on_frame_inner(kind, preset, frame, seed, scale, pruning, None)
}

/// Like [`model_run_on_frame`], but executes the network through the
/// temporal delta path: `state` carries the previous frame's rule
/// structures, and layers whose inputs barely moved are patched instead of
/// re-swept (see [`spade_nn::rulegen::delta`]).
///
/// The result is byte-identical to [`model_run_on_frame`] on the same frame
/// — the delta path only changes how the trace is computed, never what it
/// contains. Feed one `state` the frames of **one** drive, in order; an
/// incompatible or low-overlap frame falls back to a full sweep
/// automatically.
#[must_use]
pub fn model_run_on_frame_delta(
    kind: ModelKind,
    preset: &DatasetPreset,
    frame: &Frame,
    seed: u64,
    scale: WorkloadScale,
    pruning: PruningConfig,
    state: &mut FrameDeltaState,
) -> ModelRun {
    model_run_on_frame_inner(kind, preset, frame, seed, scale, pruning, Some(state))
}

fn model_run_on_frame_inner(
    kind: ModelKind,
    preset: &DatasetPreset,
    frame: &Frame,
    seed: u64,
    scale: WorkloadScale,
    pruning: PruningConfig,
    delta: Option<&mut FrameDeltaState>,
) -> ModelRun {
    let pillar_cfg = preset.pillar_config();
    let base_grid = preset.grid_shape();
    let (grid, coords) = match scale {
        WorkloadScale::Full => (base_grid, frame.pillars.active_coords.clone()),
        WorkloadScale::Reduced => {
            // Crop a quarter-size window from the mid-range road corridor so
            // the cropped frame keeps the few-percent occupancy of the full
            // frame (the near-sensor corner would be unrepresentatively dense).
            let grid = GridShape::new(base_grid.height / 4, base_grid.width / 4);
            let row0 = base_grid.height / 4;
            let col0 = base_grid.width * 3 / 8;
            let coords = frame
                .pillars
                .active_coords
                .iter()
                .filter(|c| {
                    c.row >= row0
                        && c.row < row0 + grid.height
                        && c.col >= col0
                        && c.col < col0 + grid.width
                })
                .map(|c| spade_tensor::PillarCoord::new(c.row - row0, c.col - col0))
                .collect();
            (grid, coords)
        }
    };
    // Encoder MACs: 9 input features × 64 channels per retained point.
    let total_points: usize = frame.pillars.points_per_pillar.iter().map(Vec::len).sum();
    let encoder_macs = (total_points * 9 * 64) as u64;
    let model = Model::build(kind);
    let ctx = ExecutionContext {
        pruning,
        scene: Some(&frame.scene),
        pillar_config: Some(&pillar_cfg),
        seed,
    };
    let (trace, workloads) = ARENA.with_borrow_mut(|arena| match delta {
        Some(state) => execute_pattern_delta(
            model.spec(),
            &coords,
            grid,
            encoder_macs,
            &ctx,
            arena,
            state,
        ),
        None => execute_pattern_with_arena(model.spec(), &coords, grid, encoder_macs, &ctx, arena),
    });
    ModelRun {
        kind,
        trace,
        workloads,
        encoder_macs,
    }
}

thread_local! {
    /// Per-thread execution scratch: consecutive model runs on the same
    /// thread — bench iterations, experiment loops, and each DSE worker's
    /// share of a sweep — reuse one arena's buffers. Results are unaffected
    /// (the arena is pure scratch), so parallel sweeps stay bit-identical.
    static ARENA: RefCell<ExecutionArena> = RefCell::new(ExecutionArena::new());
}

/// Simulates a model run on any accelerator model through the common
/// [`Accelerator`] API — the entry point every experiment uses, so adding a
/// backend means implementing the trait, not editing each figure.
#[must_use]
pub fn simulate_on(acc: &dyn Accelerator, run: &ModelRun) -> NetworkPerf {
    acc.simulate_network(&run.workloads, run.encoder_macs)
}

/// Convenience: simulates a model run on SPADE with a given configuration.
#[must_use]
pub fn simulate_on_spade(run: &ModelRun, config: SpadeConfig) -> NetworkPerf {
    simulate_on(&SpadeAccelerator::new(config), run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_runs_are_sparser_than_dense_baseline() {
        // At quarter scale the later backbone stages saturate (their grids are
        // only a few hundred cells), so the savings are compressed relative to
        // the paper-scale run; regenerate the full-scale numbers with the
        // `spade-experiments` binary (`table1`).
        let sparse = model_run(ModelKind::Spp3, 1, WorkloadScale::Reduced);
        let dense = model_run(ModelKind::Pp, 1, WorkloadScale::Reduced);
        assert!(sparse.trace.total_macs() < dense.trace.total_macs());
        assert!(sparse.trace.computation_savings() > 0.2);
    }

    #[test]
    fn sparse_variants_are_ordered_by_savings() {
        let spp1 = model_run(ModelKind::Spp1, 2, WorkloadScale::Reduced);
        let spp3 = model_run(ModelKind::Spp3, 2, WorkloadScale::Reduced);
        assert!(
            spp3.trace.computation_savings() > spp1.trace.computation_savings(),
            "SPP3 ({}) should save more than SPP1 ({})",
            spp3.trace.computation_savings(),
            spp1.trace.computation_savings()
        );
    }

    #[test]
    fn spade_simulation_produces_positive_fps() {
        let run = model_run(ModelKind::Spp2, 3, WorkloadScale::Reduced);
        let perf = simulate_on_spade(&run, SpadeConfig::high_end());
        assert!(perf.fps > 0.0);
        assert_eq!(perf.layers.len(), run.workloads.len());
    }
}
