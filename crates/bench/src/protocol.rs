//! The `spade-serve` wire protocol: length-prefixed frames carrying a
//! small line-oriented request/response vocabulary, plus the canonical
//! text encoding of [`DseParams`] that doubles as the service cache key.
//!
//! The container cannot vendor an async runtime or a real serde, so the
//! protocol is deliberately primitive and dependency-free:
//!
//! * **Framing** — every message is a 4-byte big-endian length followed by
//!   that many bytes of UTF-8 payload ([`write_frame`] / [`read_frame`]).
//!   Lengths above [`MAX_FRAME_BYTES`] are rejected before any allocation,
//!   so a garbage prefix cannot balloon the server.
//! * **Requests** — one verb per frame: `SWEEP <params>` runs (or serves
//!   from cache) a DSE sweep, `FRAME <fields>` advances a persistent-world
//!   drive stream one frame through the server's per-(drive, model)
//!   [`spade_nn::FrameDeltaState`], `STATS`, `PING`, and `SHUTDOWN`.
//! * **Responses** — `OK <meta>` on the first line (space-separated
//!   `key=value` tokens, e.g. `hit=1`) with the body (CSV grid, stats
//!   lines) on the following lines, or `ERR <message>`. A `SWEEP` reply
//!   carries three admission flags: `hit=1` (served from the completed-
//!   result cache), `join=1` (parked on an identical in-flight sweep and
//!   received its result; `deduped=1` is the legacy spelling of the same
//!   flag), or all zeros (this request executed the sweep). Load
//!   generators count `hit=1` and `join=1` both as *warm* — neither ran
//!   anything — so measured warm rates match the analytic hit-rate
//!   expectation even when concurrency converts cache hits into joins.
//!
//! ## Canonical parameter form
//!
//! [`DseParams`] is encoded as one `;`-separated `key=value` line
//! ([`encode_params`] / [`decode_params`], exact round-trip — floats use
//! Rust's shortest round-trip `Display`). Two requests that mean the same
//! sweep must hit the same cache entry **and** return byte-identical
//! results, so the server first rewrites the params into the canonical
//! form ([`canonicalize_params`]: every axis sorted and deduped, models in
//! zoo order, frame count clamped positive) and both executes and caches
//! that form — [`cache_key`] is just the canonical encoding. Axis order
//! never changes which cells a sweep contains (only their order in the
//! export), so canonical execution answers any axis-order spelling of the
//! request with one cached result.

use crate::dse::{DseParams, SweepAxes};
use crate::workload::WorkloadScale;
use spade_core::{DataflowOptions, GATHER_SCATTER_LANES};
use spade_nn::ModelKind;
use spade_pointcloud::{DensityProfile, NamedScenario};
use std::fmt::Write as _;
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload size (16 MiB). A full-grid CSV is a
/// few hundred KiB; anything near this limit is a corrupt or hostile
/// length prefix and is rejected before allocating.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME_BYTES`] with
/// [`std::io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            ),
        ));
    }
    // lint:allow(panic): the guard above caps len at MAX_FRAME_BYTES,
    // which fits u32 by construction.
    let len = u32::try_from(payload.len()).expect("bounded by MAX_FRAME_BYTES");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// (the peer closed between frames).
///
/// # Errors
///
/// Propagates I/O errors; a length prefix above [`MAX_FRAME_BYTES`] or an
/// EOF mid-frame yields [`std::io::ErrorKind::InvalidData`] /
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) the sweep described by the params.
    Sweep(DseParams),
    /// Advance a persistent-world drive stream by one frame through the
    /// server's per-(drive, model) delta state.
    Frame(FrameRequest),
    /// Report service counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and exit the request loop.
    Shutdown,
}

/// The fields of a `FRAME` streamed-drive request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRequest {
    /// Client-chosen drive identity; the server keys its
    /// [`spade_nn::FrameDeltaState`] on `(drive, model)`.
    pub drive: String,
    /// Scripted scenario the drive plays.
    pub scenario: NamedScenario,
    /// Model executed on each frame.
    pub model: ModelKind,
    /// Workload scale to execute the frames at.
    pub scale: WorkloadScale,
    /// Drive seed.
    pub seed: u64,
    /// Total frames of the drive.
    pub frames: usize,
    /// Frame index to execute (0-based, `< frames`).
    pub index: usize,
}

/// Encodes a request into its frame payload.
#[must_use]
pub fn encode_request(request: &Request) -> String {
    match request {
        Request::Sweep(params) => format!("SWEEP {}", encode_params(params)),
        Request::Frame(f) => format!(
            "FRAME drive={};scenario={};model={};scale={};seed={};frames={};index={}",
            f.drive,
            f.scenario.name(),
            f.model.name(),
            encode_scale(f.scale),
            f.seed,
            f.frames,
            f.index
        ),
        Request::Stats => "STATS".to_owned(),
        Request::Ping => "PING".to_owned(),
        Request::Shutdown => "SHUTDOWN".to_owned(),
    }
}

/// Parses a request frame payload.
///
/// # Errors
///
/// Returns a human-readable message for unknown verbs or malformed
/// arguments — the server relays it verbatim in an `ERR` response.
pub fn decode_request(payload: &str) -> Result<Request, String> {
    let payload = payload.trim_end_matches(['\r', '\n']);
    let (verb, rest) = match payload.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (payload, ""),
    };
    match verb {
        "SWEEP" => Ok(Request::Sweep(decode_params(rest)?)),
        "FRAME" => Ok(Request::Frame(decode_frame_request(rest)?)),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown verb '{other}' (expected SWEEP | FRAME | STATS | PING | SHUTDOWN)"
        )),
    }
}

/// The exact field set of a `FRAME` request body. Anything else is either
/// a typo or a `;` smuggled through a drive name — both are rejected so
/// the encode/decode symmetry holds for every accepted request.
const FRAME_FIELDS: [&str; 7] = [
    "drive", "scenario", "model", "scale", "seed", "frames", "index",
];

/// Drive identities travel verbatim inside the `;`-separated field line,
/// so names that would collide with the field syntax (or hide whitespace)
/// are rejected rather than escaped.
fn validate_drive(name: &str) -> Result<&str, String> {
    if name.is_empty() {
        return Err("drive name must not be empty".to_owned());
    }
    if name.contains([';', '=', '\n', '\r']) {
        return Err(format!(
            "drive name '{name}' contains a reserved character (';', '=', or newline)"
        ));
    }
    if name != name.trim() {
        return Err(format!(
            "drive name '{name}' has leading or trailing whitespace"
        ));
    }
    Ok(name)
}

fn decode_frame_request(body: &str) -> Result<FrameRequest, String> {
    let fields = parse_fields(body)?;
    if let Some((key, _)) = fields
        .iter()
        .find(|(k, _)| !FRAME_FIELDS.contains(&k.as_str()))
    {
        return Err(format!("unexpected field '{key}' in FRAME request"));
    }
    if fields.len() > FRAME_FIELDS.len() {
        return Err("duplicate field in FRAME request".to_owned());
    }
    let get = |key: &str| field(&fields, key);
    let scenario_raw = get("scenario")?;
    let model_raw = get("model")?;
    Ok(FrameRequest {
        drive: validate_drive(get("drive")?)?.to_owned(),
        scenario: NamedScenario::parse(scenario_raw)
            .ok_or_else(|| format!("unknown scenario '{scenario_raw}'"))?,
        model: parse_model(model_raw)?,
        scale: decode_scale(get("scale")?)?,
        seed: parse_num(get("seed")?, "seed")?,
        frames: parse_num(get("frames")?, "frames")?,
        index: parse_num(get("index")?, "index")?,
    })
}

/// One `OK`/`ERR` response frame, split into the meta line and the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success: space-separated `key=value` meta tokens plus a body.
    Ok {
        /// Meta tokens of the first line (after `OK `), e.g. `hit=1`.
        meta: String,
        /// Everything after the first line.
        body: String,
    },
    /// Failure, with the reason.
    Err(String),
}

impl Response {
    /// Builds a success response.
    #[must_use]
    pub fn ok(meta: impl Into<String>, body: impl Into<String>) -> Self {
        Response::Ok {
            meta: meta.into(),
            body: body.into(),
        }
    }

    /// Serialises the response into its frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Response::Ok { meta, body } if body.is_empty() => format!("OK {meta}"),
            Response::Ok { meta, body } => format!("OK {meta}\n{body}"),
            Response::Err(message) => format!("ERR {}", message.replace('\n', " ")),
        }
    }

    /// Parses a response frame payload.
    ///
    /// # Errors
    ///
    /// Returns a message when the payload carries neither an `OK` nor an
    /// `ERR` status line.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let (status_line, body) = match payload.split_once('\n') {
            Some((s, b)) => (s, b.to_owned()),
            None => (payload, String::new()),
        };
        if status_line == "OK" {
            return Ok(Response::Ok {
                meta: String::new(),
                body,
            });
        }
        if let Some(meta) = status_line.strip_prefix("OK ") {
            return Ok(Response::Ok {
                meta: meta.to_owned(),
                body,
            });
        }
        if let Some(message) = status_line.strip_prefix("ERR ") {
            return Ok(Response::Err(message.to_owned()));
        }
        Err(format!("malformed response status line: '{status_line}'"))
    }

    /// Looks up a `key=value` token of the meta line.
    #[must_use]
    pub fn meta_field(&self, key: &str) -> Option<&str> {
        match self {
            Response::Ok { meta, .. } => meta
                .split(' ')
                .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')),
            Response::Err(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// DseParams encoding

/// Encodes sweep params as one `;`-separated `key=value` line. Exact
/// round-trip with [`decode_params`]; field order and axis order are
/// preserved verbatim (canonicalisation is a separate, explicit step).
#[must_use]
pub fn encode_params(params: &DseParams) -> String {
    let mut s = String::new();
    let _ = write!(s, "scale={}", encode_scale(params.scale));
    let _ = write!(
        s,
        ";models={}",
        join(params.models.iter().map(|m| m.name()))
    );
    let _ = write!(s, ";frames={};seed={}", params.num_frames, params.base_seed);
    let _ = write!(
        s,
        ";profile={}",
        match params.profile {
            DensityProfile::Constant => "const".to_owned(),
            DensityProfile::Ramp { start, end } => format!("ramp:{start}:{end}"),
            DensityProfile::Peak { base, peak } => format!("peak:{base}:{peak}"),
        }
    );
    if let Some(scenario) = params.scenario {
        let _ = write!(s, ";scenario={}", scenario.name());
    }
    let _ = write!(s, ";delta={}", u8::from(params.delta));
    let axes = &params.axes;
    let _ = write!(
        s,
        ";pe={}",
        join(axes.pe_dims.iter().map(|&(r, c)| format!("{r}x{c}")))
    );
    let _ = write!(
        s,
        ";sram={}",
        join(axes.sram_scales.iter().map(f64::to_string))
    );
    let _ = write!(s, ";ghz={}", join(axes.freq_ghz.iter().map(f64::to_string)));
    let _ = write!(
        s,
        ";bpc={}",
        join(axes.dram_bytes_per_cycle.iter().map(f64::to_string))
    );
    let _ = write!(
        s,
        ";df={}",
        join(axes.dataflow.iter().map(|o| dataflow_mask(o).to_string()))
    );
    // Fields introduced after the v1 encoding are appended only at
    // non-default values (the `scenario` precedent): every legacy sweep
    // encodes — and therefore cache-keys — byte-identically to before.
    if axes.buffer_splits != [0.0] {
        let _ = write!(
            s,
            ";bs={}",
            join(axes.buffer_splits.iter().map(f64::to_string))
        );
    }
    if axes.sram_banks != [GATHER_SCATTER_LANES] {
        let _ = write!(
            s,
            ";bank={}",
            join(axes.sram_banks.iter().map(u32::to_string))
        );
    }
    if params.adaptive {
        s.push_str(";adaptive=1");
    }
    s
}

fn join<S: AsRef<str>>(items: impl Iterator<Item = S>) -> String {
    let mut out = String::new();
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push('+');
        }
        out.push_str(item.as_ref());
    }
    out
}

fn dataflow_mask(options: &DataflowOptions) -> u8 {
    u8::from(options.weight_grouping)
        | (u8::from(options.ganged_scatter) << 1)
        | (u8::from(options.adaptive_tiling) << 2)
}

fn dataflow_from_mask(mask: u8) -> DataflowOptions {
    DataflowOptions {
        weight_grouping: mask & 1 != 0,
        ganged_scatter: mask & 2 != 0,
        adaptive_tiling: mask & 4 != 0,
    }
}

/// Decodes the [`encode_params`] line back into sweep params.
///
/// # Errors
///
/// Returns a message naming the offending field for missing keys,
/// unknown enum names, non-finite floats, and unparsable numbers.
pub fn decode_params(line: &str) -> Result<DseParams, String> {
    let fields = parse_fields(line)?;
    let get = |key: &str| field(&fields, key);
    let scale = decode_scale(get("scale")?)?;
    let models = split_list(get("models")?)
        .map(parse_model)
        .collect::<Result<Vec<_>, _>>()?;
    let profile_raw = get("profile")?;
    let profile = match profile_raw.split(':').collect::<Vec<_>>().as_slice() {
        ["const"] => DensityProfile::Constant,
        ["ramp", start, end] => DensityProfile::Ramp {
            start: parse_f64(start, "profile")?,
            end: parse_f64(end, "profile")?,
        },
        ["peak", base, peak] => DensityProfile::Peak {
            base: parse_f64(base, "profile")?,
            peak: parse_f64(peak, "profile")?,
        },
        _ => return Err(format!("malformed profile '{profile_raw}'")),
    };
    let scenario = match fields.iter().find(|(k, _)| k == "scenario") {
        Some((_, raw)) => {
            Some(NamedScenario::parse(raw).ok_or_else(|| format!("unknown scenario '{raw}'"))?)
        }
        None => None,
    };
    let delta = match get("delta")? {
        "0" => false,
        "1" => true,
        other => return Err(format!("delta expects 0 or 1, got '{other}'")),
    };
    let pe_dims = split_list(get("pe")?)
        .map(|tok| {
            let (r, c) = tok
                .split_once('x')
                .ok_or_else(|| format!("malformed PE dim '{tok}'"))?;
            Ok((parse_num(r, "pe")?, parse_num(c, "pe")?))
        })
        .collect::<Result<Vec<(usize, usize)>, String>>()?;
    let floats = |key: &str| -> Result<Vec<f64>, String> {
        split_list(field(&fields, key)?)
            .map(|tok| parse_f64(tok, key))
            .collect()
    };
    let dataflow = split_list(get("df")?)
        .map(|tok| {
            let mask: u8 = parse_num(tok, "df")?;
            if mask > 7 {
                return Err(format!("dataflow mask {mask} out of range 0..=7"));
            }
            Ok(dataflow_from_mask(mask))
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Post-v1 fields: absent means the v1 default, so legacy request lines
    // keep parsing (and meaning) exactly what they always did.
    let buffer_splits = match fields.iter().find(|(k, _)| k == "bs") {
        Some(_) => floats("bs")?,
        None => vec![0.0],
    };
    let sram_banks = match fields.iter().find(|(k, _)| k == "bank") {
        Some((_, raw)) => split_list(raw)
            .map(|tok| parse_num(tok, "bank"))
            .collect::<Result<Vec<u32>, String>>()?,
        None => vec![GATHER_SCATTER_LANES],
    };
    let adaptive = match fields.iter().find(|(k, _)| k == "adaptive") {
        Some((_, raw)) => match raw.as_str() {
            "0" => false,
            "1" => true,
            other => return Err(format!("adaptive expects 0 or 1, got '{other}'")),
        },
        None => false,
    };
    Ok(DseParams {
        scale,
        axes: SweepAxes {
            pe_dims,
            sram_scales: floats("sram")?,
            freq_ghz: floats("ghz")?,
            dram_bytes_per_cycle: floats("bpc")?,
            buffer_splits,
            sram_banks,
            dataflow,
        },
        models,
        num_frames: parse_num(get("frames")?, "frames")?,
        base_seed: parse_num(get("seed")?, "seed")?,
        profile,
        scenario,
        delta,
        adaptive,
    })
}

fn parse_fields(line: &str) -> Result<Vec<(String, String)>, String> {
    line.split(';')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field '{part}' (expected key=value)"))?;
            Ok((k.to_owned(), v.to_owned()))
        })
        .collect()
}

fn field<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn split_list(value: &str) -> impl Iterator<Item = &str> {
    value.split('+').filter(|tok| !tok.is_empty())
}

fn encode_scale(scale: WorkloadScale) -> &'static str {
    match scale {
        WorkloadScale::Full => "full",
        WorkloadScale::Reduced => "reduced",
    }
}

fn decode_scale(raw: &str) -> Result<WorkloadScale, String> {
    match raw {
        "full" => Ok(WorkloadScale::Full),
        "reduced" => Ok(WorkloadScale::Reduced),
        other => Err(format!("unknown scale '{other}'")),
    }
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| format!("unknown model '{name}'"))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{what} expects an integer, got '{raw}'"))
}

fn parse_f64(raw: &str, what: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("{what} expects a number, got '{raw}'"))?;
    if !v.is_finite() {
        return Err(format!("{what} must be finite, got '{raw}'"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Canonical form

/// Rewrites params into the canonical form the server executes and caches:
/// every sweep axis sorted ascending and deduped, models sorted into zoo
/// order and deduped, and the frame count clamped positive (matching
/// [`DseParams::drive_config`], which never simulates zero frames).
///
/// Axis and model *sets* — and therefore the cells a sweep simulates — are
/// untouched; only their ordering is normalised, so any axis-order
/// spelling of the same sweep shares one cache entry and one byte-exact
/// result.
#[must_use]
pub fn canonicalize_params(params: &DseParams) -> DseParams {
    let mut canon = params.clone();
    canon.num_frames = canon.num_frames.max(1);
    let zoo_index = |m: ModelKind| {
        // lint:allow(panic): ModelKind::ALL enumerates the whole enum, so
        // the position lookup cannot miss.
        ModelKind::ALL
            .iter()
            .position(|&k| k == m)
            .expect("every ModelKind is in ALL")
    };
    canon.models.sort_by_key(|&m| zoo_index(m));
    canon.models.dedup();
    let axes = &mut canon.axes;
    axes.pe_dims.sort_unstable();
    axes.pe_dims.dedup();
    sort_dedup_floats(&mut axes.sram_scales);
    sort_dedup_floats(&mut axes.freq_ghz);
    sort_dedup_floats(&mut axes.dram_bytes_per_cycle);
    sort_dedup_floats(&mut axes.buffer_splits);
    axes.sram_banks.sort_unstable();
    axes.sram_banks.dedup();
    axes.dataflow.sort_by_key(dataflow_mask);
    axes.dataflow.dedup();
    canon
}

fn sort_dedup_floats(values: &mut Vec<f64>) {
    values.sort_by(f64::total_cmp);
    values.dedup_by(|a, b| a.to_bits() == b.to_bits());
}

/// The service cache key of a sweep request: the canonical encoding. Two
/// params that differ only in axis/model order — or in duplicated axis
/// values, which [`SweepAxes::expand_configs`] ignores anyway — map to the
/// same key.
#[must_use]
pub fn cache_key(params: &DseParams) -> String {
    encode_params(&canonicalize_params(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> DseParams {
        let mut params = DseParams::default_for(WorkloadScale::Reduced);
        params.scenario = Some(NamedScenario::StopAndGo);
        params.delta = true;
        params.models = vec![ModelKind::Scp3, ModelKind::Spp2];
        params
    }

    #[test]
    fn params_round_trip_exactly() {
        let params = sample_params();
        let encoded = encode_params(&params);
        assert_eq!(decode_params(&encoded).unwrap(), params);
        // Legacy profile (no scenario key) round-trips too.
        let legacy = DseParams::default_for(WorkloadScale::Full);
        assert_eq!(decode_params(&encode_params(&legacy)).unwrap(), legacy);
        // The post-v1 fields round-trip at non-default values.
        let mut enlarged = sample_params();
        enlarged.axes.buffer_splits = vec![0.0, 0.25, 0.75];
        enlarged.axes.sram_banks = vec![16, 4, 1];
        enlarged.adaptive = true;
        let encoded = encode_params(&enlarged);
        assert!(encoded.contains(";bs=0+0.25+0.75"));
        assert!(encoded.contains(";bank=16+4+1"));
        assert!(encoded.ends_with(";adaptive=1"));
        assert_eq!(decode_params(&encoded).unwrap(), enlarged);
    }

    #[test]
    fn post_v1_fields_keep_legacy_encodings_byte_stable() {
        // A default-axes request encodes without the bs/bank/adaptive keys
        // (so v1 cache keys are untouched)...
        let legacy = sample_params();
        let encoded = encode_params(&legacy);
        for key in [";bs=", ";bank=", ";adaptive="] {
            assert!(!encoded.contains(key), "'{encoded}' leaks '{key}'");
        }
        // ...and a v1 request line (no such keys) still decodes, meaning
        // exactly the defaults.
        let decoded = decode_params(&encoded).unwrap();
        assert_eq!(decoded.axes.buffer_splits, vec![0.0]);
        assert_eq!(decoded.axes.sram_banks, vec![GATHER_SCATTER_LANES]);
        assert!(!decoded.adaptive);
        // An explicit `adaptive=0` is accepted and canonicalises onto the
        // legacy key, so both spellings share one cache entry.
        let spelled = decode_params(&format!("{encoded};adaptive=0")).unwrap();
        assert_eq!(spelled, legacy);
        assert_eq!(cache_key(&spelled), cache_key(&legacy));
        // Adaptive exploration changes the exported bytes (extra columns,
        // bound-valued screened cells), so it must key separately.
        let mut adaptive = legacy.clone();
        adaptive.adaptive = true;
        assert_ne!(cache_key(&adaptive), cache_key(&legacy));
    }

    #[test]
    fn canonical_form_sorts_the_new_axes() {
        let mut params = sample_params();
        params.axes.buffer_splits = vec![0.75, 0.25, 0.75];
        params.axes.sram_banks = vec![4, 16, 4];
        let canon = canonicalize_params(&params);
        assert_eq!(canon.axes.buffer_splits, vec![0.25, 0.75]);
        assert_eq!(canon.axes.sram_banks, vec![4, 16]);
    }

    #[test]
    fn axis_order_does_not_change_the_cache_key() {
        let a = sample_params();
        let mut b = a.clone();
        b.axes.pe_dims.reverse();
        b.axes.sram_scales.reverse();
        b.axes.freq_ghz.reverse();
        b.axes.dram_bytes_per_cycle.reverse();
        b.models.reverse();
        assert_ne!(encode_params(&a), encode_params(&b), "encode is verbatim");
        assert_eq!(cache_key(&a), cache_key(&b), "canonical key ignores order");
        // A genuinely different sweep keys differently.
        let mut c = a.clone();
        c.base_seed += 1;
        assert_ne!(cache_key(&a), cache_key(&c));
    }

    #[test]
    fn canonical_form_dedupes_and_clamps() {
        let mut params = sample_params();
        params.axes.sram_scales = vec![1.0, 0.5, 1.0];
        params.models = vec![ModelKind::Spp2, ModelKind::Spp2];
        params.num_frames = 0;
        let canon = canonicalize_params(&params);
        assert_eq!(canon.axes.sram_scales, vec![0.5, 1.0]);
        assert_eq!(canon.models, vec![ModelKind::Spp2]);
        assert_eq!(canon.num_frames, 1);
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Sweep(sample_params()),
            Request::Frame(FrameRequest {
                drive: "veh-17".to_owned(),
                scenario: NamedScenario::Tunnel,
                model: ModelKind::Spp2,
                scale: WorkloadScale::Reduced,
                seed: 99,
                frames: 20,
                index: 3,
            }),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let encoded = encode_request(&request);
            assert_eq!(decode_request(&encoded).unwrap(), request, "{encoded}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (payload, needle) in [
            ("NUKE the grid", "unknown verb"),
            ("SWEEP scale=warp", "unknown scale"),
            ("SWEEP scale=reduced", "missing field"),
            ("SWEEP scale=reduced;models=SPP9;frames=1;seed=1;profile=const;delta=0;pe=16x16;sram=1;ghz=1;bpc=12.8;df=7", "unknown model"),
            ("FRAME drive=x;scenario=volcano;model=SPP2;seed=1;frames=2;index=0", "unknown scenario"),
            // A ';' in a drive name parses as an injected extra field.
            ("FRAME drive=x;evil=1;scenario=tunnel;model=SPP2;scale=reduced;seed=1;frames=2;index=0", "unexpected field"),
            ("FRAME drive=a=b;scenario=tunnel;model=SPP2;scale=reduced;seed=1;frames=2;index=0", "reserved character"),
            ("FRAME drive= x;scenario=tunnel;model=SPP2;scale=reduced;seed=1;frames=2;index=0", "whitespace"),
            ("FRAME drive=;scenario=tunnel;model=SPP2;scale=reduced;seed=1;frames=2;index=0", "must not be empty"),
            ("FRAME drive=x;drive=y;scenario=tunnel;model=SPP2;scale=reduced;seed=1;frames=2;index=0", "duplicate field"),
            ("SWEEP scale=reduced;models=SPP2;frames=1;seed=1;profile=ramp:0.5:inf;delta=0;pe=16x16;sram=1;ghz=1;bpc=12.8;df=7", "finite"),
            ("SWEEP scale=reduced;models=SPP2;frames=1;seed=1;profile=const;delta=0;pe=16x16;sram=1;ghz=1;bpc=12.8;df=7;adaptive=2", "adaptive expects 0 or 1"),
            ("SWEEP scale=reduced;models=SPP2;frames=1;seed=1;profile=const;delta=0;pe=16x16;sram=1;ghz=1;bpc=12.8;df=7;bank=many", "bank expects an integer"),
        ] {
            let err = decode_request(payload).unwrap_err();
            assert!(err.contains(needle), "'{err}' lacks '{needle}'");
        }
    }

    #[test]
    fn frames_cap_oversized_payloads_both_ways() {
        let huge = vec![b'x'; MAX_FRAME_BYTES + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        // A hostile length prefix is rejected before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"PING").unwrap();
        write_frame(&mut wire, "STATS".as_bytes()).unwrap();
        let mut cursor = wire.as_slice();
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"PING");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"STATS");
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
        // EOF mid-frame is an error, not a silent truncation.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"SWEEP ...").unwrap();
        truncated.pop();
        let mut cursor = truncated.as_slice();
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn responses_round_trip_and_expose_meta() {
        let ok = Response::ok("hit=1 deduped=0", "csv,body\n1,2");
        let decoded = Response::decode(&ok.encode()).unwrap();
        assert_eq!(decoded, ok);
        assert_eq!(decoded.meta_field("hit"), Some("1"));
        assert_eq!(decoded.meta_field("deduped"), Some("0"));
        assert_eq!(decoded.meta_field("absent"), None);
        let err = Response::Err("bad params\nwith newline".to_owned());
        match Response::decode(&err.encode()).unwrap() {
            Response::Err(message) => assert_eq!(message, "bad params with newline"),
            other => panic!("expected ERR, got {other:?}"),
        }
        assert!(Response::decode("GARBAGE").is_err());
        // 'OK' must stand alone or be followed by a space — 'OKAY ...'
        // is malformed, not an OK with mangled meta.
        assert!(Response::decode("OKAY hit=1").is_err());
        assert!(Response::decode("OK=1").is_err());
        // Empty-body OK stays a single line.
        let pong = Response::ok("pong", "");
        assert_eq!(pong.encode(), "OK pong");
        assert_eq!(Response::decode("OK pong").unwrap(), pong);
    }
}
