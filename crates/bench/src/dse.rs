//! Design-space exploration (DSE) over hardware configurations and
//! multi-frame drive scenarios.
//!
//! The paper evaluates two fixed design points (SPADE.HE and SPADE.LE) on
//! single synthetic frames. This module sweeps a grid over [`SpadeConfig`]
//! axes — PE-array shape, on-chip SRAM capacity, clock frequency, DRAM
//! bandwidth, and the dataflow optimisations — crossed with the frames of a
//! [`DriveScenario`], runs every `(configuration, accelerator, frame)` cell
//! through the common [`Accelerator`] trait, and extracts the
//! latency/energy/area Pareto frontier per workload. The output answers
//! questions the paper's two points cannot: where does the sparsity hardware
//! stop paying for itself as the array shrinks, and how does the win move as
//! a drive passes through denser traffic.
//!
//! Every cell is an independent simulation, so the sweep fans out across a
//! [`WorkerPool`]: [`run_dse_with_jobs`] builds an indexed work-list of
//! cells, distributes it over `jobs` scoped threads, and reassembles the
//! results in index order — parallel output is bit-identical to a serial
//! run (`tests/dse_integration.rs` asserts it).
//!
//! The drive itself is selectable: the legacy i.i.d. density-profile drive
//! (the default, byte-stable across releases) or a scripted
//! [`NamedScenario`] — a persistent world with events (stopped traffic,
//! tunnels, crossing waves) whose consecutive frames share most active
//! pillars. The sweep measures that temporal locality and exports it as the
//! `mean_pillar_overlap` column.
//!
//! Entry points: [`run_dse`] / [`run_dse_with_jobs`] with [`DseParams`],
//! surfaced as the `dse` experiment of the `spade-experiments` binary
//! (which can also export the full grid as CSV/JSON via [`ReportTable`] and
//! takes `--jobs N` / `--scenario <name>` flags).
//!
//! Grids an order of magnitude larger than the defaults (the
//! [`SweepAxes::enlarged`] buffer-split × banking cross) are explored
//! through the [`adaptive`] submodule — roofline lower-bound screening plus
//! successive halving over growing frame prefixes — which produces the
//! exact same Pareto frontier as an exhaustive sweep while simulating a
//! fraction of the cells (`DseParams::adaptive`).

#[path = "adaptive.rs"]
pub mod adaptive;

use crate::pool::WorkerPool;
use crate::workload::{
    model_run_on_frame, model_run_on_frame_delta, simulate_on, ModelRun, WorkloadScale,
};
use spade_baselines::{DenseAccelerator, PointAccModel, SpConv2dAccelerator};
use spade_core::{
    Accelerator, AcceleratorReport, DataflowOptions, NetworkPerf, ReportTable, SpadeAccelerator,
    SpadeConfig,
};
use spade_nn::{DeltaPolicy, DeltaStats, FrameDeltaState, ModelKind, PruningConfig};
use spade_pointcloud::dataset::{DatasetKind, DatasetPreset};
use spade_pointcloud::{
    DensityProfile, DriveFrame, DriveScenario, DriveScenarioConfig, NamedScenario,
};
use std::fmt::Write as _;

/// The swept hardware axes. Every combination of the configuration axes
/// (PE dims × SRAM scale × clock frequency × DRAM bandwidth) yields one
/// [`SpadeConfig`]; the dataflow axis applies to the SPADE model only (the
/// baselines have no dataflow optimisations to toggle).
///
/// Duplicate values within an axis are ignored: [`SweepAxes::expand_configs`]
/// dedupes each axis (first occurrence wins) so a repeated entry — e.g.
/// `sram_scales: [1.0, 1.0]` — cannot mint duplicate cells that would
/// survive Pareto extraction as fake exact ties.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// PE-array shapes `(rows, cols)` to sweep.
    pub pe_dims: Vec<(usize, usize)>,
    /// Multipliers applied to the base configuration's buffer capacities.
    pub sram_scales: Vec<f64>,
    /// Clock frequencies in GHz. Higher clocks cut latency but pay a DVFS
    /// energy premium (dynamic energy scales with the square of the supply
    /// voltage — see `EnergyModel::voltage_factor`), so this axis trades
    /// latency against energy rather than being a free win. Note that
    /// `dram_bytes_per_cycle` is expressed per *core* cycle (a
    /// same-PLL memory interface), so absolute DRAM bandwidth co-scales
    /// with the clock.
    pub freq_ghz: Vec<f64>,
    /// DRAM bandwidths in bytes per cycle.
    pub dram_bytes_per_cycle: Vec<f64>,
    /// Input/output buffer-pool splits (fraction of the pool given to the
    /// input buffer; `0.0` keeps the base design's split — see
    /// [`SpadeConfig::with_buffer_split`]). Total SRAM and area are
    /// invariant along this axis.
    pub buffer_splits: Vec<f64>,
    /// SRAM bank counts behind the GSU crossbar (see
    /// [`SpadeConfig::with_sram_banks`]; the default
    /// [`spade_core::GATHER_SCATTER_LANES`] is conflict-free).
    pub sram_banks: Vec<u32>,
    /// Dataflow-optimisation settings (SPADE cells only).
    pub dataflow: Vec<DataflowOptions>,
}

/// Dedupes an axis in place-order: keeps the first occurrence of every
/// value, so a sloppy axis spec cannot emit duplicate sweep cells.
fn dedup_axis<T: PartialEq + Clone>(values: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.contains(v) {
            out.push(v.clone());
        }
    }
    out
}

impl SweepAxes {
    /// The default grid around the paper's two design points: three array
    /// shapes from LE (16×16) to HE (64×64), two SRAM budgets, two clock
    /// frequencies (the paper's 1 GHz and an overclocked 1.5 GHz), two DRAM
    /// bandwidths, and dataflow optimisations on/off — a 5-axis sweep with
    /// 48 SPADE cells per workload.
    #[must_use]
    pub fn paper_neighbourhood() -> Self {
        Self {
            pe_dims: vec![(16, 16), (32, 32), (64, 64)],
            sram_scales: vec![0.5, 1.0],
            freq_ghz: vec![1.0, 1.5],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            buffer_splits: vec![0.0],
            sram_banks: vec![spade_core::GATHER_SCATTER_LANES],
            dataflow: vec![
                DataflowOptions::all_disabled(),
                DataflowOptions::all_enabled(),
            ],
        }
    }

    /// The enlarged grid the adaptive explorer exists for: the paper
    /// neighbourhood crossed with the buffer-split and banking axes deferred
    /// from PR 3 — 13 pool splits (the base split plus a dozen
    /// redistributions) × 7 bank counts, multiplying the 24 base
    /// configurations ~91× to 2184 SPADE configurations. Exhaustively
    /// sweeping this grid is what the roofline screen + successive halving
    /// make affordable (`BENCH_PR9.json` records the measured ratio).
    #[must_use]
    pub fn enlarged() -> Self {
        Self {
            buffer_splits: vec![
                0.0, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9,
            ],
            sram_banks: vec![16, 12, 8, 6, 4, 2, 1],
            ..Self::paper_neighbourhood()
        }
    }

    /// A smaller grid for tests and smoke runs: still four multi-valued
    /// configuration axes, but only two values per axis and a single
    /// dataflow setting.
    #[must_use]
    pub fn reduced() -> Self {
        Self {
            pe_dims: vec![(16, 16), (64, 64)],
            sram_scales: vec![0.5, 1.0],
            freq_ghz: vec![1.0, 1.5],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            buffer_splits: vec![0.0],
            sram_banks: vec![spade_core::GATHER_SCATTER_LANES],
            dataflow: vec![DataflowOptions::all_enabled()],
        }
    }

    /// Number of axes being swept (those with more than one *distinct*
    /// value — duplicates within an axis do not count).
    #[must_use]
    pub fn num_swept_axes(&self) -> usize {
        [
            dedup_axis(&self.pe_dims).len(),
            dedup_axis(&self.sram_scales).len(),
            dedup_axis(&self.freq_ghz).len(),
            dedup_axis(&self.dram_bytes_per_cycle).len(),
            dedup_axis(&self.buffer_splits).len(),
            dedup_axis(&self.sram_banks).len(),
            dedup_axis(&self.dataflow).len(),
        ]
        .iter()
        .filter(|&&n| n > 1)
        .count()
    }

    /// Expands the configuration axes (everything except dataflow) into
    /// concrete [`SpadeConfig`]s derived from the high-end base point.
    /// Each axis is deduped first, so repeated axis values cannot produce
    /// duplicate configurations.
    #[must_use]
    pub fn expand_configs(&self) -> Vec<SpadeConfig> {
        let base = SpadeConfig::high_end();
        let mut out = Vec::new();
        for &(rows, cols) in &dedup_axis(&self.pe_dims) {
            for &scale in &dedup_axis(&self.sram_scales) {
                for &freq in &dedup_axis(&self.freq_ghz) {
                    for &bpc in &dedup_axis(&self.dram_bytes_per_cycle) {
                        for &split in &dedup_axis(&self.buffer_splits) {
                            for &banks in &dedup_axis(&self.sram_banks) {
                                out.push(
                                    base.with_pe_array(rows, cols)
                                        .with_sram_scale(scale)
                                        .with_freq_ghz(freq)
                                        .with_dram_bytes_per_cycle(bpc)
                                        .with_buffer_split(split)
                                        .with_sram_banks(banks),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Parameters of one DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseParams {
    /// Workload scale (full paper grids or quarter-scale for smoke runs).
    pub scale: WorkloadScale,
    /// The hardware grid.
    pub axes: SweepAxes,
    /// Which networks to sweep (each is one workload of the result).
    pub models: Vec<ModelKind>,
    /// Frames per drive scenario (the paper's evaluation is 1 static frame;
    /// the DSE default drives through ≥5).
    pub num_frames: usize,
    /// Base seed of the drive scenario.
    pub base_seed: u64,
    /// Density profile of the drive (used by the legacy i.i.d. drive when
    /// no named scenario is selected).
    pub profile: DensityProfile,
    /// Scripted drive scenario. `None` keeps the legacy i.i.d. drive over
    /// `profile` (byte-identical to pre-scenario sweeps); `Some` replaces
    /// profile and persistence with the named preset's (see
    /// [`NamedScenario::config`]), still over `num_frames`/`base_seed`.
    pub scenario: Option<NamedScenario>,
    /// Execute each drive through the temporal delta path
    /// ([`model_run_on_frame_delta`]): consecutive frames patch the previous
    /// frame's rule structures instead of regenerating them. The per-frame
    /// workloads — and therefore every simulated cell — are byte-identical
    /// to a full-sweep run; only the rule-generation work changes. Adds the
    /// `frames_delta_executed` / `delta_speedup` columns to the exported
    /// grid.
    pub delta: bool,
    /// Explore the grid adaptively ([`adaptive`]): a roofline lower bound
    /// per SPADE cell screens provably dominated cells before simulation,
    /// and successive halving refines the survivors on growing frame
    /// prefixes. The Pareto frontier is byte-identical to an exhaustive run
    /// (screening only ever discards cells a simulated cell strictly
    /// dominates); screened cells are exported with their bound values and
    /// `simulated=0`, and the `cells_screened` / `cells_simulated` /
    /// `frames_saved` counters are appended to the export. `false` (the
    /// default everywhere) simulates every cell.
    pub adaptive: bool,
}

impl DseParams {
    /// Defaults for a given scale: the full grid over a 6-frame
    /// suburb-to-downtown drive for `Full`, and the reduced grid over a
    /// 5-frame drive for `Reduced`.
    #[must_use]
    pub fn default_for(scale: WorkloadScale) -> Self {
        match scale {
            WorkloadScale::Full => Self {
                scale,
                axes: SweepAxes::paper_neighbourhood(),
                models: vec![ModelKind::Spp2, ModelKind::Scp3],
                num_frames: 6,
                base_seed: 2024,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
                scenario: None,
                delta: false,
                adaptive: false,
            },
            WorkloadScale::Reduced => Self {
                scale,
                axes: SweepAxes::reduced(),
                models: vec![ModelKind::Spp2],
                num_frames: 5,
                base_seed: 2024,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
                scenario: None,
                delta: false,
                adaptive: false,
            },
        }
    }

    /// The drive configuration the sweep runs over: the named scenario's
    /// when one is selected, otherwise the legacy i.i.d. drive over
    /// `profile`. A zero-frame drive would make every cell's mean 0.0 and
    /// fill the frontier with fake perfect designs, so at least one frame is
    /// always simulated.
    #[must_use]
    pub fn drive_config(&self) -> DriveScenarioConfig {
        let num_frames = self.num_frames.max(1);
        match self.scenario {
            Some(scenario) => scenario.config(num_frames, self.base_seed),
            None => DriveScenarioConfig {
                num_frames,
                base_seed: self.base_seed,
                profile: self.profile,
                ..DriveScenarioConfig::default()
            },
        }
    }
}

/// One cell of the sweep: an accelerator at a design point, aggregated over
/// every frame of the drive scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCell {
    /// Workload (network) name.
    pub workload: &'static str,
    /// Accelerator model name.
    pub accelerator: String,
    /// Design-point label (config plus `+df`/`-df` for SPADE cells).
    pub design: String,
    /// PE-array rows of the cell's configuration.
    pub pe_rows: usize,
    /// PE-array columns of the cell's configuration.
    pub pe_cols: usize,
    /// Total on-chip SRAM (KiB).
    pub sram_kib: u64,
    /// Clock frequency (GHz). For the frequency-insensitive SpConv2D-Acc
    /// behaviour model one cell stands for every swept frequency; this field
    /// then records the value of the configuration the cell was simulated
    /// under.
    pub freq_ghz: f64,
    /// DRAM bandwidth (bytes per cycle). For the bandwidth-insensitive
    /// baselines (SpConv2D-Acc, PointAcc) one cell stands for every swept
    /// bandwidth; this field then records the value of the configuration the
    /// cell was simulated under.
    pub dram_bytes_per_cycle: f64,
    /// Whether the dataflow optimisations were enabled (always `true` for
    /// non-SPADE cells, which have no such switches).
    pub dataflow_enabled: bool,
    /// Mean end-to-end latency over the drive's frames (ms).
    pub mean_latency_ms: f64,
    /// Mean energy per frame (mJ).
    pub mean_energy_mj: f64,
    /// Die area of the instance (mm²).
    pub area_mm2: f64,
    /// Mean DRAM traffic per frame (MiB).
    pub mean_dram_mib: f64,
    /// Mean consecutive-frame active-pillar overlap (Jaccard) of the drive
    /// this cell's workload ran over — the temporal locality a caching
    /// backend could exploit. A property of the drive, so every cell of the
    /// same workload shares the value; `0.0` for single-frame drives.
    pub mean_pillar_overlap: f64,
    /// Frames of this cell's workload that executed through the delta path
    /// (patching the previous frame's rule structures) rather than a full
    /// sweep. A property of the drive run, so every cell of the same
    /// workload shares the value; `0` when delta execution is off.
    pub frames_delta_executed: usize,
    /// Modelled rule-generation speedup of the delta run over a full-sweep
    /// run ([`DeltaStats::modelled_speedup`]): full-equivalent output rows
    /// divided by rows actually swept. `1.0` when delta execution is off.
    pub delta_speedup: f64,
    /// Whether this cell was fully simulated. `false` only for cells the
    /// adaptive explorer screened out, whose latency/energy columns then
    /// hold the roofline *lower bound* (provably ≤ the simulated value) at
    /// which a fully simulated cell dominated them; screened cells never
    /// join the frontier (their true values are provably dominated too).
    pub simulated: bool,
    /// Whether this cell survives Pareto extraction for its workload.
    pub on_frontier: bool,
}

/// The result of a DSE run: every cell, with the per-workload Pareto
/// frontier marked, plus the SPADE-vs-DenseAcc dominance tally.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// Every `(workload, accelerator, design point)` cell.
    pub cells: Vec<DseCell>,
    /// Number of hardware configurations swept (excluding the dataflow axis).
    pub num_configs: usize,
    /// Frames per drive scenario.
    pub num_frames: usize,
    /// Number of axes with more than one value.
    pub num_swept_axes: usize,
    /// Cells (same workload, same configuration) where SPADE beats DenseAcc
    /// on both latency and energy.
    pub spade_dense_wins: usize,
    /// Number of `(workload, configuration)` comparisons made for the tally.
    pub spade_dense_comparisons: usize,
    /// Whether the drives were executed through the temporal delta path.
    pub delta: bool,
    /// Delta-execution statistics merged across every model's drive (all
    /// zeros when `delta` is off).
    pub delta_stats: DeltaStats,
    /// Whether the grid was explored adaptively ([`adaptive`]).
    pub adaptive: bool,
    /// Cells the adaptive explorer screened out without full simulation
    /// (their exported metrics are roofline lower bounds). `0` when
    /// exhaustive.
    pub cells_screened: usize,
    /// Cells fully simulated. Equals `cells.len()` when exhaustive;
    /// `cells_screened + cells_simulated == cells.len()` always.
    pub cells_simulated: usize,
    /// Drive frames the adaptive explorer never had to simulate, summed
    /// over the screened cells. `0` when exhaustive.
    pub frames_saved: usize,
}

/// Marks the Pareto-optimal points among `points` (minimising every
/// dimension). A point is kept iff it is finite in every dimension and no
/// other point is at least as good in all dimensions and strictly better in
/// at least one — so exact ties are all kept, and dominated points are
/// dropped.
///
/// Non-finite points are excluded outright: NaN comparisons are always
/// false, so without the finiteness guard a single NaN latency or energy
/// cell would be "undominated" and stick to the frontier forever (and a
/// `-inf` garbage cell would knock every real point off it). Such points
/// neither join the frontier nor dominate anything.
///
/// Runs in `O(n log n + n·F)` (`F` = frontier size) instead of the naïve
/// all-pairs scan: a dominator is ≤ its victim in every dimension and
/// strictly < in one, so it sorts lexicographically *strictly before* the
/// victim — scanning in sorted order, a point's dominators are all behind
/// it, and by transitivity it suffices to test against the frontier built
/// so far (a discarded dominator is itself dominated by a frontier point,
/// which then dominates the victim too). The output is the definitional
/// dominated-by-nobody set, independent of scan order.
#[must_use]
pub fn pareto_frontier(points: &[[f64; 3]]) -> Vec<bool> {
    let finite = |p: &[f64; 3]| p.iter().all(|v| v.is_finite());
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let mut order: Vec<usize> = (0..points.len()).filter(|&i| finite(&points[i])).collect();
    // Finite values make `total_cmp` coincide with the partial order; the
    // index tiebreak pins the scan order of exact ties (the result does not
    // depend on it — ties never dominate each other).
    order.sort_unstable_by(|&a, &b| {
        points[a]
            .iter()
            .zip(&points[b])
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(a.cmp(&b))
    });
    let mut keep = vec![false; points.len()];
    let mut frontier: Vec<usize> = Vec::new();
    for &i in &order {
        if !frontier.iter().any(|&f| dominates(&points[f], &points[i])) {
            frontier.push(i);
            keep[i] = true;
        }
    }
    keep
}

fn preset_for(kind: ModelKind) -> DatasetPreset {
    match kind.dataset() {
        DatasetKind::KittiLike => DatasetPreset::kitti_like(),
        DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
    }
}

#[allow(clippy::too_many_arguments)]
fn mean_cell(
    workload: &'static str,
    accelerator: &str,
    design: String,
    config: &SpadeConfig,
    dataflow_enabled: bool,
    area_mm2: f64,
    perfs: &[NetworkPerf],
    mean_pillar_overlap: f64,
) -> DseCell {
    let n = perfs.len().max(1) as f64;
    DseCell {
        workload,
        accelerator: accelerator.to_owned(),
        design,
        pe_rows: config.pe_rows,
        pe_cols: config.pe_cols,
        sram_kib: config.total_sram_kib(),
        freq_ghz: config.freq_ghz,
        dram_bytes_per_cycle: config.dram_bytes_per_cycle,
        dataflow_enabled,
        mean_latency_ms: perfs.iter().map(|p| p.latency_ms).sum::<f64>() / n,
        mean_energy_mj: perfs.iter().map(|p| p.energy.total_mj()).sum::<f64>() / n,
        area_mm2,
        mean_dram_mib: perfs
            .iter()
            .map(|p| p.total_dram_bytes as f64 / (1024.0 * 1024.0))
            .sum::<f64>()
            / n,
        mean_pillar_overlap,
        frames_delta_executed: 0,
        delta_speedup: 1.0,
        simulated: true,
        on_frontier: false,
    }
}

/// Which accelerator a work-list item simulates.
enum CellKind {
    /// SPADE with one dataflow setting.
    Spade(DataflowOptions),
    /// The dense-only ablation at the same form factor (one cell per
    /// PE-array × SRAM × frequency × bandwidth form factor — its behaviour
    /// model is insensitive to the buffer-split and banking axes, which
    /// only reshape SPADE's gather/scatter machinery).
    Dense { label: String },
    /// SpConv2D-Acc (one cell per PE-array × SRAM form factor — its
    /// behaviour model is insensitive to both DRAM bandwidth and clock).
    SpConv2d { label: String },
    /// PointAcc (one cell per PE-array × SRAM × frequency form factor —
    /// insensitive to DRAM bandwidth only).
    PointAcc { label: String },
}

/// One independent cell of the sweep's indexed work-list.
struct CellItem {
    model_idx: usize,
    config_idx: usize,
    kind: CellKind,
}

/// Builds the [`DseCell`] of a SPADE design point from its per-frame
/// simulation results (in frame order). Shared by the exhaustive path
/// ([`compute_cell`]) and the adaptive explorer's halving rungs, so a cell
/// that survives screening is byte-identical however it was reached.
fn spade_cell(
    kind: ModelKind,
    config: &SpadeConfig,
    opts: DataflowOptions,
    perfs: &[NetworkPerf],
    overlap: f64,
) -> DseCell {
    let enabled = opts.weight_grouping || opts.ganged_scatter || opts.adaptive_tiling;
    let design = format!("{}/{}", config.label(), if enabled { "+df" } else { "-df" });
    mean_cell(
        kind.name(),
        "SPADE",
        design,
        config,
        enabled,
        AcceleratorReport::for_spade("SPADE", config).total_mm2(),
        perfs,
        overlap,
    )
}

/// Simulates one work-list item into its [`DseCell`]. Pure w.r.t. the
/// shared inputs, so items can run on any worker in any order.
fn compute_cell(
    item: &CellItem,
    models: &[ModelKind],
    configs: &[SpadeConfig],
    runs_by_model: &[Vec<ModelRun>],
    overlap_by_model: &[f64],
    delta_by_model: &[(usize, f64)],
) -> DseCell {
    let kind = models[item.model_idx];
    let config = &configs[item.config_idx];
    let runs = &runs_by_model[item.model_idx];
    let overlap = overlap_by_model[item.model_idx];
    let (frames_delta, delta_speedup) = delta_by_model[item.model_idx];
    let sim_all = |acc: &dyn Accelerator| -> Vec<NetworkPerf> {
        runs.iter().map(|r| simulate_on(acc, r)).collect()
    };
    let spade_area = || AcceleratorReport::for_spade("SPADE", config).total_mm2();
    let mut cell = match &item.kind {
        CellKind::Spade(opts) => {
            let acc = SpadeAccelerator::with_options(*config, *opts);
            spade_cell(kind, config, *opts, &sim_all(&acc), overlap)
        }
        CellKind::Dense { label } => {
            let dense = DenseAccelerator::new(*config);
            let area = AcceleratorReport::for_dense("DenseAcc", config).total_mm2();
            mean_cell(
                kind.name(),
                dense.name(),
                label.clone(),
                config,
                true,
                area,
                &sim_all(&dense),
                overlap,
            )
        }
        // SpConv2D-Acc and PointAcc carry their own sparsity hardware
        // (condensing logic, sorter + cache); model their area like SPADE's
        // sparsity-support overhead on the same datapath.
        CellKind::SpConv2d { label } => {
            let spconv = SpConv2dAccelerator::new(config.pe_rows, config.pe_cols, 16);
            mean_cell(
                kind.name(),
                Accelerator::name(&spconv),
                label.clone(),
                config,
                true,
                spade_area(),
                &sim_all(&spconv),
                overlap,
            )
        }
        CellKind::PointAcc { label } => {
            let pacc = PointAccModel::new(*config);
            mean_cell(
                kind.name(),
                pacc.name(),
                label.clone(),
                config,
                true,
                spade_area(),
                &sim_all(&pacc),
                overlap,
            )
        }
    };
    cell.frames_delta_executed = frames_delta;
    cell.delta_speedup = delta_speedup;
    cell
}

/// Runs the sweep serially — shorthand for [`run_dse_with_jobs`] with one
/// worker. Parallel runs produce bit-identical results, so this is also the
/// reference the pool path is tested against.
#[must_use]
pub fn run_dse(params: &DseParams) -> DseResult {
    run_dse_with_jobs(params, 1)
}

/// Runs the sweep across `jobs` worker threads: every configuration ×
/// accelerator × drive frame, then Pareto extraction per workload.
///
/// The sweep is decomposed into an indexed work-list of independent cells,
/// fanned out over a [`WorkerPool`], and reassembled in index order — the
/// result is identical for any `jobs` value (`0` is clamped to `1`).
#[must_use]
pub fn run_dse_with_jobs(params: &DseParams, jobs: usize) -> DseResult {
    run_dse_on_pool(params, &WorkerPool::new(jobs))
}

/// Runs the sweep on a caller-provided [`WorkerPool`] — the entry point the
/// serving layer uses so many concurrent sweeps can share one
/// [`crate::pool::ConcurrencyBudget`] instead of each spawning its own full
/// thread complement. The result is bit-identical for any pool width or
/// budget (including a zero-token budget, which degrades to a serial run on
/// the calling thread).
#[must_use]
pub fn run_dse_on_pool(params: &DseParams, pool: &WorkerPool) -> DseResult {
    let plan = SweepPlan::build(params, pool);
    let (cells, screen) = if params.adaptive {
        adaptive::explore(params, pool, &plan)
    } else {
        let cells = pool.run(plan.items.len(), |i| {
            compute_cell(
                &plan.items[i],
                &params.models,
                &plan.configs,
                &plan.runs_by_model,
                &plan.overlap_by_model,
                &plan.delta_by_model,
            )
        });
        let simulated = cells.len();
        (
            cells,
            adaptive::ScreenCounters {
                cells_screened: 0,
                cells_simulated: simulated,
                frames_saved: 0,
            },
        )
    };
    finish_result(params, plan, cells, screen)
}

/// Everything the sweep shares between the exhaustive and adaptive paths:
/// the expanded configurations, the per-model drive workloads (stage 1),
/// and the canonical indexed work-list with its duel pairs and per-workload
/// ranges (stage 2). Building the plan is identical for both paths, so an
/// adaptive run starts from byte-identical inputs.
struct SweepPlan {
    configs: Vec<SpadeConfig>,
    num_frames: usize,
    runs_by_model: Vec<Vec<ModelRun>>,
    overlap_by_model: Vec<f64>,
    delta_by_model: Vec<(usize, f64)>,
    delta_stats: DeltaStats,
    items: Vec<CellItem>,
    duels: Vec<(Vec<usize>, usize)>,
    workload_ranges: Vec<std::ops::Range<usize>>,
}

impl SweepPlan {
    fn build(params: &DseParams, pool: &WorkerPool) -> Self {
        let configs = params.axes.expand_configs();
        let dataflow = dedup_axis(&params.axes.dataflow);
        let drive_cfg = params.drive_config();
        let num_frames = drive_cfg.num_frames;

        // Stage 1 — per-frame workload construction, parallel over frames.
        // Drive frames depend only on the dataset preset, so models sharing a
        // dataset share one generated frame vector (built once per sweep); the
        // per-model `ModelRun`s are configuration-independent, so every design
        // point downstream reuses them. Each worker thread reuses one
        // `ExecutionArena` across its frames (thread-local in
        // `workload::model_run_on_frame`), so pattern execution allocates no
        // per-layer scratch anywhere in the sweep.
        let mut frames_by_dataset: Vec<(DatasetKind, Vec<DriveFrame>, f64)> = Vec::new();
        let mut delta_stats_by_model: Vec<DeltaStats> = Vec::new();
        let runs_by_model: Vec<Vec<ModelRun>> = params
            .models
            .iter()
            .map(|&kind| {
                let preset = preset_for(kind);
                let dataset = kind.dataset();
                if !frames_by_dataset.iter().any(|(d, ..)| *d == dataset) {
                    let scenario = DriveScenario::new(preset.clone(), drive_cfg.clone());
                    // A persistent world evolves frame by frame, so its drive is
                    // generated sequentially (one pass, identical for any worker
                    // count); independent frames fan out across the pool and get
                    // their overlap metric annotated afterwards.
                    let frames = if drive_cfg.persistence.is_persistent() {
                        scenario.frames()
                    } else {
                        let mut frames = pool.run(num_frames, |i| scenario.generate_frame(i));
                        DriveScenario::annotate_overlap(&mut frames);
                        frames
                    };
                    let mean_overlap = DriveScenario::mean_overlap_of(&frames);
                    frames_by_dataset.push((dataset, frames, mean_overlap));
                }
                let frames = &frames_by_dataset
                    .iter()
                    .find(|(d, ..)| *d == dataset)
                    .expect("frames generated above")
                    .1;
                // A model run's RNG (pruning noise) is seeded distinctly from the
                // frame-generation stream — it must not replay the scene
                // randomness of the frame it runs on — and held drive-stable on
                // persistent worlds (`pruning_seed`) so the pruned layers inherit
                // the scene's temporal coherence.
                if params.delta {
                    // The delta path is stateful across a drive's frames, so one
                    // model's frames run sequentially in order; models (and the
                    // design-point fan-out of stage 3) still parallelise, and the
                    // per-frame results are byte-identical to the pooled full
                    // sweeps either way.
                    let mut state = FrameDeltaState::new(DeltaPolicy::default());
                    let runs = frames
                        .iter()
                        .map(|f| {
                            model_run_on_frame_delta(
                                kind,
                                &preset,
                                &f.frame,
                                drive_cfg.pruning_seed(f.index),
                                params.scale,
                                PruningConfig::default(),
                                &mut state,
                            )
                        })
                        .collect();
                    delta_stats_by_model.push(state.stats());
                    runs
                } else {
                    delta_stats_by_model.push(DeltaStats::default());
                    pool.run(num_frames, |i| {
                        model_run_on_frame(
                            kind,
                            &preset,
                            &frames[i].frame,
                            drive_cfg.pruning_seed(frames[i].index),
                            params.scale,
                            PruningConfig::default(),
                        )
                    })
                }
            })
            .collect();
        let overlap_by_model: Vec<f64> = params
            .models
            .iter()
            .map(|&kind| {
                frames_by_dataset
                    .iter()
                    .find(|(d, ..)| *d == kind.dataset())
                    .expect("frames generated above")
                    .2
            })
            .collect();
        let delta_by_model: Vec<(usize, f64)> = delta_stats_by_model
            .iter()
            .map(|s| (s.frames_delta, s.modelled_speedup()))
            .collect();
        let mut delta_stats = DeltaStats::default();
        for s in &delta_stats_by_model {
            delta_stats.merge(s);
        }

        // Stage 2 — build the indexed work-list. Cell order is canonical
        // (model, then configuration, then SPADE/Dense/SpConv2D/PointAcc), so
        // reassembly by index reproduces the serial layout exactly. The
        // bandwidth- and frequency-insensitive baselines collapse the axes they
        // cannot observe: one SpConv2D-Acc cell per (PE array, SRAM) form
        // factor, one PointAcc cell per (PE array, SRAM, frequency) — sweeping
        // those axes for them would only emit duplicate cells differing in
        // label, polluting the frontier with fake ties.
        let mut items: Vec<CellItem> = Vec::new();
        // Per (model, config): indices of the SPADE cells and the DenseAcc cell,
        // for the Fig. 9 dominance tally after the fan-out.
        let mut duels: Vec<(Vec<usize>, usize)> = Vec::new();
        // Per model: the range of `items` holding its cells (Pareto extraction
        // is per workload).
        let mut workload_ranges: Vec<std::ops::Range<usize>> = Vec::new();
        for model_idx in 0..params.models.len() {
            let first_item = items.len();
            let mut dense_seen: std::collections::HashMap<(usize, usize, u64, u64, u64), usize> =
                Default::default();
            let mut spconv_seen: std::collections::HashSet<(usize, usize, u64)> =
                Default::default();
            let mut pointacc_seen: std::collections::HashSet<(usize, usize, u64, u64)> =
                Default::default();
            for (config_idx, config) in configs.iter().enumerate() {
                let spade_idxs: Vec<usize> = dataflow
                    .iter()
                    .map(|&opts| {
                        items.push(CellItem {
                            model_idx,
                            config_idx,
                            kind: CellKind::Spade(opts),
                        });
                        items.len() - 1
                    })
                    .collect();
                // DenseAcc has no gather/scatter machinery, so the buffer-split
                // and banking axes cannot change its results: collapse it to one
                // cell per (PE array, SRAM, frequency, bandwidth) form factor
                // with the axis-free legacy label. On grids without the new
                // axes every configuration is its own form factor and the cell
                // set (and item order) is exactly the legacy one.
                let dense_key = (
                    config.pe_rows,
                    config.pe_cols,
                    config.total_sram_kib(),
                    config.freq_ghz.to_bits(),
                    config.dram_bytes_per_cycle.to_bits(),
                );
                let dense_idx = match dense_seen.get(&dense_key) {
                    Some(&idx) => idx,
                    None => {
                        items.push(CellItem {
                            model_idx,
                            config_idx,
                            kind: CellKind::Dense {
                                label: format!(
                                    "{}x{}/{}KiB/{}GHz/{}Bpc",
                                    config.pe_rows,
                                    config.pe_cols,
                                    config.total_sram_kib(),
                                    config.freq_ghz,
                                    config.dram_bytes_per_cycle
                                ),
                            },
                        });
                        dense_seen.insert(dense_key, items.len() - 1);
                        items.len() - 1
                    }
                };
                // SPADE vs DenseAcc at the same form factor (areas within the
                // ~4.5% sparsity-support overhead of each other): Fig. 9's
                // claim, checked in every configuration cell of the sweep. A
                // cell wins if any of its dataflow variants dominates DenseAcc.
                if !spade_idxs.is_empty() {
                    duels.push((spade_idxs, dense_idx));
                }
                let form_factor = (config.pe_rows, config.pe_cols, config.total_sram_kib());
                if spconv_seen.insert(form_factor) {
                    // Label without the bandwidth and frequency tokens: the
                    // SpConv2D-Acc behaviour model's results hold for every
                    // swept value of both.
                    items.push(CellItem {
                        model_idx,
                        config_idx,
                        kind: CellKind::SpConv2d {
                            label: format!(
                                "{}x{}/{}KiB",
                                config.pe_rows,
                                config.pe_cols,
                                config.total_sram_kib()
                            ),
                        },
                    });
                }
                let freq_form_factor = (
                    config.pe_rows,
                    config.pe_cols,
                    config.total_sram_kib(),
                    config.freq_ghz.to_bits(),
                );
                if pointacc_seen.insert(freq_form_factor) {
                    // PointAcc's no-overlap cycle model never bounds on DRAM
                    // bandwidth, but its latency does scale with the clock —
                    // keep the frequency token, drop the bandwidth one.
                    items.push(CellItem {
                        model_idx,
                        config_idx,
                        kind: CellKind::PointAcc {
                            label: format!(
                                "{}x{}/{}KiB/{}GHz",
                                config.pe_rows,
                                config.pe_cols,
                                config.total_sram_kib(),
                                config.freq_ghz
                            ),
                        },
                    });
                }
            }
            workload_ranges.push(first_item..items.len());
        }

        SweepPlan {
            configs,
            num_frames,
            runs_by_model,
            overlap_by_model,
            delta_by_model,
            delta_stats,
            items,
            duels,
            workload_ranges,
        }
    }
}

/// Serial post-processing on the assembled grid — the Fig. 9 dominance
/// tally and per-workload Pareto extraction — shared by the exhaustive and
/// adaptive paths. Screened (unsimulated) cells hold lower bounds rather
/// than true values, so they are excluded from both the tally and the
/// frontier point set: a bound may undercut a simulated value, but it
/// proves nothing about domination in either direction. Excluding them is
/// exact, not approximate — a cell is only ever screened when a fully
/// simulated cell dominates its bound, which (bound ≤ truth, domination is
/// transitive) dominates its true value and anything that true value would
/// have dominated.
fn finish_result(
    params: &DseParams,
    plan: SweepPlan,
    mut cells: Vec<DseCell>,
    screen: adaptive::ScreenCounters,
) -> DseResult {
    let mut wins = 0usize;
    for (spade_idxs, dense_idx) in &plan.duels {
        let dense = &cells[*dense_idx];
        if spade_idxs.iter().any(|&i| {
            cells[i].simulated
                && cells[i].mean_latency_ms < dense.mean_latency_ms
                && cells[i].mean_energy_mj < dense.mean_energy_mj
        }) {
            wins += 1;
        }
    }
    for range in plan.workload_ranges {
        // Unsimulated cells map to NaN metrics, which `pareto_frontier`
        // neither admits to the frontier nor lets dominate anything.
        let metrics: Vec<[f64; 3]> = cells[range.clone()]
            .iter()
            .map(|c| {
                if c.simulated {
                    [c.mean_latency_ms, c.mean_energy_mj, c.area_mm2]
                } else {
                    [f64::NAN; 3]
                }
            })
            .collect();
        for (cell, keep) in cells[range].iter_mut().zip(pareto_frontier(&metrics)) {
            cell.on_frontier = keep;
        }
    }

    DseResult {
        cells,
        num_configs: plan.configs.len(),
        num_frames: plan.num_frames,
        num_swept_axes: params.axes.num_swept_axes(),
        spade_dense_wins: wins,
        spade_dense_comparisons: plan.duels.len(),
        delta: params.delta,
        delta_stats: plan.delta_stats,
        adaptive: params.adaptive,
        cells_screened: screen.cells_screened,
        cells_simulated: screen.cells_simulated,
        frames_saved: screen.frames_saved,
    }
}

impl DseResult {
    /// The cells that survived Pareto extraction.
    #[must_use]
    pub fn frontier(&self) -> Vec<&DseCell> {
        self.cells.iter().filter(|c| c.on_frontier).collect()
    }

    /// The full grid as a [`ReportTable`] (one row per cell). Delta-enabled
    /// runs append the `frames_delta_executed` / `delta_speedup` columns and
    /// adaptive runs the `simulated` flag plus the `cells_screened` /
    /// `cells_simulated` / `frames_saved` counters; default runs keep the
    /// legacy column set, so pre-existing exports stay byte-identical.
    #[must_use]
    pub fn to_table(&self) -> ReportTable {
        let mut headers = vec![
            "workload",
            "accelerator",
            "design",
            "pe_rows",
            "pe_cols",
            "sram_kib",
            "freq_ghz",
            "dram_bytes_per_cycle",
            "dataflow",
            "mean_latency_ms",
            "mean_energy_mj",
            "area_mm2",
            "mean_dram_mib",
            "mean_pillar_overlap",
            "on_frontier",
        ];
        if self.delta {
            headers.push("frames_delta_executed");
            headers.push("delta_speedup");
        }
        if self.adaptive {
            headers.push("simulated");
            headers.push("cells_screened");
            headers.push("cells_simulated");
            headers.push("frames_saved");
        }
        let mut t = ReportTable::new(headers);
        for c in &self.cells {
            let mut row: Vec<spade_core::ReportValue> = vec![
                c.workload.into(),
                c.accelerator.clone().into(),
                c.design.clone().into(),
                c.pe_rows.into(),
                c.pe_cols.into(),
                (c.sram_kib as i64).into(),
                c.freq_ghz.into(),
                c.dram_bytes_per_cycle.into(),
                c.dataflow_enabled.into(),
                c.mean_latency_ms.into(),
                c.mean_energy_mj.into(),
                c.area_mm2.into(),
                c.mean_dram_mib.into(),
                c.mean_pillar_overlap.into(),
                c.on_frontier.into(),
            ];
            if self.delta {
                row.push(c.frames_delta_executed.into());
                row.push(c.delta_speedup.into());
            }
            if self.adaptive {
                row.push(c.simulated.into());
                // Run-level counters, repeated per row like the other
                // run-level columns (e.g. `mean_pillar_overlap`) so the
                // export stays one flat table.
                row.push(self.cells_screened.into());
                row.push(self.cells_simulated.into());
                row.push(self.frames_saved.into());
            }
            t.push_row(row);
        }
        t
    }

    /// CSV export of the full grid.
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// JSON export of the full grid.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_table().to_json()
    }

    /// Human-readable summary: the sweep shape, the Pareto frontier per
    /// workload, and the SPADE-vs-DenseAcc dominance tally.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "DSE — {} configs x {} accelerator cells over a {}-frame drive ({} swept axes)\n",
            self.num_configs,
            self.cells.len(),
            self.num_frames,
            self.num_swept_axes,
        );
        // Temporal locality of the drive each workload ran over (one value
        // per workload — it is a property of the drive, not of the cell).
        let mut seen: Vec<&str> = Vec::new();
        let _ = write!(s, "drive temporal locality (mean pillar overlap):");
        for c in &self.cells {
            if !seen.contains(&c.workload) {
                seen.push(c.workload);
                let _ = write!(s, " {}={:.3}", c.workload, c.mean_pillar_overlap);
            }
        }
        s.push('\n');
        if self.adaptive {
            let _ = writeln!(
                s,
                "adaptive exploration: {} cells screened by roofline bound, {} simulated, {} drive frames saved",
                self.cells_screened, self.cells_simulated, self.frames_saved,
            );
        }
        if self.delta {
            let _ = writeln!(
                s,
                "delta execution: {}/{} frames patched, {}/{}/{} layers reused/patched/full, modelled rulegen speedup {:.2}x",
                self.delta_stats.frames_delta,
                self.delta_stats.frames_total,
                self.delta_stats.layers_reused,
                self.delta_stats.layers_patched,
                self.delta_stats.layers_full,
                self.delta_stats.modelled_speedup(),
            );
        }
        let _ = writeln!(
            s,
            "Pareto frontier (latency/energy/area, {} of {} cells):",
            self.frontier().len(),
            self.cells.len()
        );
        let _ = writeln!(
            s,
            "workload | accelerator  | design                     | latency ms | energy mJ | area mm2"
        );
        for c in self.frontier() {
            let _ = writeln!(
                s,
                "{:<8} | {:<12} | {:<26} | {:>10.3} | {:>9.3} | {:>8.2}",
                c.workload,
                c.accelerator,
                c.design,
                c.mean_latency_ms,
                c.mean_energy_mj,
                c.area_mm2
            );
        }
        let _ = writeln!(
            s,
            "SPADE dominates DenseAcc (same form factor, latency & energy) in {}/{} config cells",
            self.spade_dense_wins, self.spade_dense_comparisons
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_drops_dominated_points() {
        let points = [
            [1.0, 1.0, 1.0], // frontier
            [2.0, 2.0, 2.0], // dominated by the first
            [0.5, 3.0, 1.0], // frontier (best latency)
            [1.0, 1.0, 2.0], // dominated by the first (tie on two dims)
        ];
        let keep = pareto_frontier(&points);
        assert_eq!(keep, vec![true, false, true, false]);
    }

    #[test]
    fn pareto_keeps_exact_ties() {
        let points = [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let keep = pareto_frontier(&points);
        assert_eq!(keep, vec![true, true, false]);
    }

    #[test]
    fn pareto_of_empty_and_single() {
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(pareto_frontier(&[[1.0, 1.0, 1.0]]), vec![true]);
    }

    #[test]
    fn pareto_excludes_non_finite_points() {
        // Regression: NaN comparisons are all false, so a NaN cell used to be
        // "undominated" and stuck to the frontier permanently.
        let keep = pareto_frontier(&[
            [1.0, 1.0, 1.0],
            [f64::NAN, 0.5, 0.5],
            [f64::INFINITY, 0.5, 0.5],
            [2.0, 2.0, 2.0],
        ]);
        assert_eq!(keep, vec![true, false, false, false]);
        // A -inf garbage point neither joins the frontier nor knocks real
        // points off it.
        let keep = pareto_frontier(&[[f64::NEG_INFINITY, 0.0, 0.0], [1.0, 1.0, 1.0]]);
        assert_eq!(keep, vec![false, true]);
        // All-non-finite input yields an empty frontier, not a full one.
        assert_eq!(
            pareto_frontier(&[[f64::NAN; 3], [f64::INFINITY; 3]]),
            vec![false, false]
        );
    }

    #[test]
    fn axes_expand_to_the_cross_product() {
        let axes = SweepAxes::paper_neighbourhood();
        assert_eq!(axes.expand_configs().len(), 3 * 2 * 2 * 2);
        assert_eq!(axes.num_swept_axes(), 5);
        assert!(SweepAxes::reduced().num_swept_axes() >= 3);
    }

    #[test]
    fn expanded_configs_carry_the_swept_frequency() {
        let axes = SweepAxes::paper_neighbourhood();
        let configs = axes.expand_configs();
        for &freq in &axes.freq_ghz {
            assert!(
                configs.iter().any(|c| (c.freq_ghz - freq).abs() < 1e-12),
                "no config at {freq} GHz"
            );
        }
        // The label names the frequency so design points stay distinguishable.
        assert!(configs[0].label().contains("GHz"));
    }

    #[test]
    fn duplicate_axis_values_are_deduped() {
        // Regression: duplicate axis entries used to emit duplicate cells
        // that survived Pareto extraction as fake exact ties.
        let axes = SweepAxes {
            pe_dims: vec![(16, 16), (16, 16), (64, 64)],
            sram_scales: vec![1.0, 1.0],
            freq_ghz: vec![1.0, 1.0, 1.0],
            dram_bytes_per_cycle: vec![25.6, 25.6],
            buffer_splits: vec![0.0, 0.0],
            sram_banks: vec![16, 16],
            dataflow: vec![
                DataflowOptions::all_enabled(),
                DataflowOptions::all_enabled(),
            ],
        };
        assert_eq!(axes.expand_configs().len(), 2);
        // Every duplicated axis collapses to one distinct value, so only the
        // PE-dim axis counts as swept.
        assert_eq!(axes.num_swept_axes(), 1);

        // End-to-end: the duplicated dataflow axis must not mint twin SPADE
        // cells either.
        let mut params = DseParams::default_for(WorkloadScale::Reduced);
        params.axes = axes;
        params.num_frames = 2;
        let result = run_dse(&params);
        let spade_cells = result
            .cells
            .iter()
            .filter(|c| c.accelerator == "SPADE")
            .count();
        assert_eq!(spade_cells, 2, "one SPADE cell per deduped config");
        // No two cells of the grid are exact duplicates.
        for (i, a) in result.cells.iter().enumerate() {
            for b in &result.cells[i + 1..] {
                assert!(
                    !(a.accelerator == b.accelerator && a.design == b.design),
                    "duplicate cell {}/{}",
                    a.accelerator,
                    a.design
                );
            }
        }
    }

    #[test]
    fn sweep_covers_all_four_accelerators_and_finds_a_frontier() {
        let mut params = DseParams::default_for(WorkloadScale::Reduced);
        // Smallest grid that still crosses three axes.
        params.axes = SweepAxes {
            pe_dims: vec![(16, 16), (64, 64)],
            sram_scales: vec![1.0],
            freq_ghz: vec![1.0],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            buffer_splits: vec![0.0],
            sram_banks: vec![spade_core::GATHER_SCATTER_LANES],
            dataflow: vec![
                DataflowOptions::all_disabled(),
                DataflowOptions::all_enabled(),
            ],
        };
        params.num_frames = 3;
        let result = run_dse(&params);
        for name in ["SPADE", "DenseAcc", "SpConv2D-Acc", "PointAcc"] {
            assert!(
                result.cells.iter().any(|c| c.accelerator == name),
                "missing {name}"
            );
        }
        // The DRAM-bandwidth-insensitive baselines collapse that axis: one
        // cell per (PE array, SRAM) form factor — here 2 form factors despite
        // 4 configs — and their labels carry no bandwidth token.
        let spconv_cells: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.accelerator == "SpConv2D-Acc")
            .collect();
        assert_eq!(spconv_cells.len(), 2);
        assert!(spconv_cells.iter().all(|c| !c.design.contains("Bpc")));
        // SpConv2D-Acc is clock-insensitive too; PointAcc keeps the
        // frequency token (its cycle model scales with the clock).
        assert!(spconv_cells.iter().all(|c| !c.design.contains("GHz")));
        let pacc_cells: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.accelerator == "PointAcc")
            .collect();
        assert_eq!(pacc_cells.len(), 2);
        assert!(pacc_cells
            .iter()
            .all(|c| c.design.contains("GHz") && !c.design.contains("Bpc")));
        let frontier = result.frontier();
        assert!(!frontier.is_empty());
        // Fig. 9 consistency: SPADE beats the dense design of the same form
        // factor somewhere in the grid.
        assert!(result.spade_dense_wins >= 1);
        // Every frontier cell is genuinely non-dominated.
        for f in &frontier {
            assert!(!result.cells.iter().any(|c| {
                c.workload == f.workload
                    && c.mean_latency_ms <= f.mean_latency_ms
                    && c.mean_energy_mj <= f.mean_energy_mj
                    && c.area_mm2 <= f.area_mm2
                    && (c.mean_latency_ms < f.mean_latency_ms
                        || c.mean_energy_mj < f.mean_energy_mj
                        || c.area_mm2 < f.area_mm2)
            }));
        }
    }

    #[test]
    fn frequency_axis_scales_spade_latency() {
        let mut params = DseParams::default_for(WorkloadScale::Reduced);
        params.axes = SweepAxes {
            pe_dims: vec![(32, 32)],
            sram_scales: vec![1.0],
            freq_ghz: vec![1.0, 2.0],
            dram_bytes_per_cycle: vec![25.6],
            buffer_splits: vec![0.0],
            sram_banks: vec![spade_core::GATHER_SCATTER_LANES],
            dataflow: vec![DataflowOptions::all_enabled()],
        };
        params.num_frames = 2;
        let result = run_dse(&params);
        let spade: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.accelerator == "SPADE")
            .collect();
        assert_eq!(spade.len(), 2);
        let slow = spade.iter().find(|c| c.freq_ghz == 1.0).unwrap();
        let fast = spade.iter().find(|c| c.freq_ghz == 2.0).unwrap();
        assert!(
            fast.mean_latency_ms < slow.mean_latency_ms,
            "doubling the clock should cut latency: {} vs {}",
            fast.mean_latency_ms,
            slow.mean_latency_ms
        );
        // ...but not for free: the DVFS voltage premium makes the faster
        // clock spend more energy per frame, so neither design point
        // dominates the other and the axis adds real frontier diversity.
        assert!(
            fast.mean_energy_mj > slow.mean_energy_mj,
            "overclocking should cost energy: {} vs {}",
            fast.mean_energy_mj,
            slow.mean_energy_mj
        );
    }
}
