//! Design-space exploration (DSE) over hardware configurations and
//! multi-frame drive scenarios.
//!
//! The paper evaluates two fixed design points (SPADE.HE and SPADE.LE) on
//! single synthetic frames. This module sweeps a grid over [`SpadeConfig`]
//! axes — PE-array shape, on-chip SRAM capacity, DRAM bandwidth, and the
//! dataflow optimisations — crossed with the frames of a
//! [`DriveScenario`], runs every `(configuration, accelerator, frame)` cell
//! through the common [`Accelerator`] trait, and extracts the
//! latency/energy/area Pareto frontier per workload. The output answers
//! questions the paper's two points cannot: where does the sparsity hardware
//! stop paying for itself as the array shrinks, and how does the win move as
//! a drive passes through denser traffic.
//!
//! Entry points: [`run_dse`] with [`DseParams`], surfaced as the `dse`
//! experiment of the `spade-experiments` binary (which can also export the
//! full grid as CSV/JSON via [`ReportTable`]).

use crate::workload::{model_run_on_frame, simulate_on, ModelRun, WorkloadScale};
use spade_baselines::{DenseAccelerator, PointAccModel, SpConv2dAccelerator};
use spade_core::{
    Accelerator, AcceleratorReport, DataflowOptions, NetworkPerf, ReportTable, SpadeAccelerator,
    SpadeConfig,
};
use spade_nn::{ModelKind, PruningConfig};
use spade_pointcloud::dataset::{DatasetKind, DatasetPreset};
use spade_pointcloud::{DensityProfile, DriveScenario, DriveScenarioConfig};
use std::fmt::Write as _;

/// The swept hardware axes. Every combination of the configuration axes
/// (PE dims × SRAM scale × DRAM bandwidth) yields one [`SpadeConfig`]; the
/// dataflow axis applies to the SPADE model only (the baselines have no
/// dataflow optimisations to toggle).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// PE-array shapes `(rows, cols)` to sweep.
    pub pe_dims: Vec<(usize, usize)>,
    /// Multipliers applied to the base configuration's buffer capacities.
    pub sram_scales: Vec<f64>,
    /// DRAM bandwidths in bytes per cycle.
    pub dram_bytes_per_cycle: Vec<f64>,
    /// Dataflow-optimisation settings (SPADE cells only).
    pub dataflow: Vec<DataflowOptions>,
}

impl SweepAxes {
    /// The default grid around the paper's two design points: three array
    /// shapes from LE (16×16) to HE (64×64), two SRAM budgets, two DRAM
    /// bandwidths, and dataflow optimisations on/off — a 4-axis sweep with
    /// 24 SPADE cells per workload.
    #[must_use]
    pub fn paper_neighbourhood() -> Self {
        Self {
            pe_dims: vec![(16, 16), (32, 32), (64, 64)],
            sram_scales: vec![0.5, 1.0],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            dataflow: vec![
                DataflowOptions::all_disabled(),
                DataflowOptions::all_enabled(),
            ],
        }
    }

    /// A smaller grid for tests and smoke runs: still three multi-valued
    /// configuration axes, but only two values per axis and a single
    /// dataflow setting.
    #[must_use]
    pub fn reduced() -> Self {
        Self {
            pe_dims: vec![(16, 16), (64, 64)],
            sram_scales: vec![0.5, 1.0],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            dataflow: vec![DataflowOptions::all_enabled()],
        }
    }

    /// Number of axes being swept (those with more than one value).
    #[must_use]
    pub fn num_swept_axes(&self) -> usize {
        [
            self.pe_dims.len(),
            self.sram_scales.len(),
            self.dram_bytes_per_cycle.len(),
            self.dataflow.len(),
        ]
        .iter()
        .filter(|&&n| n > 1)
        .count()
    }

    /// Expands the configuration axes (everything except dataflow) into
    /// concrete [`SpadeConfig`]s derived from the high-end base point.
    #[must_use]
    pub fn expand_configs(&self) -> Vec<SpadeConfig> {
        let base = SpadeConfig::high_end();
        let mut out = Vec::new();
        for &(rows, cols) in &self.pe_dims {
            for &scale in &self.sram_scales {
                for &bpc in &self.dram_bytes_per_cycle {
                    out.push(
                        base.with_pe_array(rows, cols)
                            .with_sram_scale(scale)
                            .with_dram_bytes_per_cycle(bpc),
                    );
                }
            }
        }
        out
    }
}

/// Parameters of one DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseParams {
    /// Workload scale (full paper grids or quarter-scale for smoke runs).
    pub scale: WorkloadScale,
    /// The hardware grid.
    pub axes: SweepAxes,
    /// Which networks to sweep (each is one workload of the result).
    pub models: Vec<ModelKind>,
    /// Frames per drive scenario (the paper's evaluation is 1 static frame;
    /// the DSE default drives through ≥5).
    pub num_frames: usize,
    /// Base seed of the drive scenario.
    pub base_seed: u64,
    /// Density profile of the drive.
    pub profile: DensityProfile,
}

impl DseParams {
    /// Defaults for a given scale: the full grid over a 6-frame
    /// suburb-to-downtown drive for `Full`, and the reduced grid over a
    /// 5-frame drive for `Reduced`.
    #[must_use]
    pub fn default_for(scale: WorkloadScale) -> Self {
        match scale {
            WorkloadScale::Full => Self {
                scale,
                axes: SweepAxes::paper_neighbourhood(),
                models: vec![ModelKind::Spp2, ModelKind::Scp3],
                num_frames: 6,
                base_seed: 2024,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
            },
            WorkloadScale::Reduced => Self {
                scale,
                axes: SweepAxes::reduced(),
                models: vec![ModelKind::Spp2],
                num_frames: 5,
                base_seed: 2024,
                profile: DensityProfile::Ramp {
                    start: 0.5,
                    end: 2.0,
                },
            },
        }
    }
}

/// One cell of the sweep: an accelerator at a design point, aggregated over
/// every frame of the drive scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCell {
    /// Workload (network) name.
    pub workload: &'static str,
    /// Accelerator model name.
    pub accelerator: String,
    /// Design-point label (config plus `+df`/`-df` for SPADE cells).
    pub design: String,
    /// PE-array rows of the cell's configuration.
    pub pe_rows: usize,
    /// PE-array columns of the cell's configuration.
    pub pe_cols: usize,
    /// Total on-chip SRAM (KiB).
    pub sram_kib: u64,
    /// DRAM bandwidth (bytes per cycle). For the bandwidth-insensitive
    /// baselines (SpConv2D-Acc, PointAcc) one cell stands for every swept
    /// bandwidth; this field then records the value of the configuration the
    /// cell was simulated under.
    pub dram_bytes_per_cycle: f64,
    /// Whether the dataflow optimisations were enabled (always `true` for
    /// non-SPADE cells, which have no such switches).
    pub dataflow_enabled: bool,
    /// Mean end-to-end latency over the drive's frames (ms).
    pub mean_latency_ms: f64,
    /// Mean energy per frame (mJ).
    pub mean_energy_mj: f64,
    /// Die area of the instance (mm²).
    pub area_mm2: f64,
    /// Mean DRAM traffic per frame (MiB).
    pub mean_dram_mib: f64,
    /// Whether this cell survives Pareto extraction for its workload.
    pub on_frontier: bool,
}

/// The result of a DSE run: every cell, with the per-workload Pareto
/// frontier marked, plus the SPADE-vs-DenseAcc dominance tally.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// Every `(workload, accelerator, design point)` cell.
    pub cells: Vec<DseCell>,
    /// Number of hardware configurations swept (excluding the dataflow axis).
    pub num_configs: usize,
    /// Frames per drive scenario.
    pub num_frames: usize,
    /// Number of axes with more than one value.
    pub num_swept_axes: usize,
    /// Cells (same workload, same configuration) where SPADE beats DenseAcc
    /// on both latency and energy.
    pub spade_dense_wins: usize,
    /// Number of `(workload, configuration)` comparisons made for the tally.
    pub spade_dense_comparisons: usize,
}

/// Marks the Pareto-optimal points among `points` (minimising every
/// dimension). A point is kept iff no other point is at least as good in all
/// dimensions and strictly better in at least one — so exact ties are all
/// kept, and dominated points are dropped.
#[must_use]
pub fn pareto_frontier(points: &[[f64; 3]]) -> Vec<bool> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    points
        .iter()
        .map(|p| !points.iter().any(|q| dominates(q, p)))
        .collect()
}

fn preset_for(kind: ModelKind) -> DatasetPreset {
    match kind.dataset() {
        DatasetKind::KittiLike => DatasetPreset::kitti_like(),
        DatasetKind::NuscenesLike => DatasetPreset::nuscenes_like(),
    }
}

fn mean_cell(
    workload: &'static str,
    accelerator: &str,
    design: String,
    config: &SpadeConfig,
    dataflow_enabled: bool,
    area_mm2: f64,
    perfs: &[NetworkPerf],
) -> DseCell {
    let n = perfs.len().max(1) as f64;
    DseCell {
        workload,
        accelerator: accelerator.to_owned(),
        design,
        pe_rows: config.pe_rows,
        pe_cols: config.pe_cols,
        sram_kib: config.total_sram_kib(),
        dram_bytes_per_cycle: config.dram_bytes_per_cycle,
        dataflow_enabled,
        mean_latency_ms: perfs.iter().map(|p| p.latency_ms).sum::<f64>() / n,
        mean_energy_mj: perfs.iter().map(|p| p.energy.total_mj()).sum::<f64>() / n,
        area_mm2,
        mean_dram_mib: perfs
            .iter()
            .map(|p| p.total_dram_bytes as f64 / (1024.0 * 1024.0))
            .sum::<f64>()
            / n,
        on_frontier: false,
    }
}

/// Runs the sweep: every configuration × accelerator × drive frame, then
/// Pareto extraction per workload.
#[must_use]
pub fn run_dse(params: &DseParams) -> DseResult {
    let configs = params.axes.expand_configs();
    // A zero-frame drive would make every cell's mean 0.0 and fill the
    // frontier with fake perfect designs; always simulate at least one frame.
    let num_frames = params.num_frames.max(1);
    let mut cells: Vec<DseCell> = Vec::new();
    let mut wins = 0usize;
    let mut comparisons = 0usize;

    for &kind in &params.models {
        let preset = preset_for(kind);
        let scenario = DriveScenario::new(
            preset.clone(),
            DriveScenarioConfig {
                num_frames,
                base_seed: params.base_seed,
                profile: params.profile,
            },
        );
        // Build each frame's workloads once; they are configuration-
        // independent, so every design point reuses them.
        let runs: Vec<ModelRun> = scenario
            .frames()
            .iter()
            .map(|df| {
                model_run_on_frame(
                    kind,
                    &preset,
                    &df.frame,
                    params.base_seed.wrapping_add(df.index as u64 * 7919),
                    params.scale,
                    PruningConfig::default(),
                )
            })
            .collect();
        let sim_all = |acc: &dyn Accelerator| -> Vec<NetworkPerf> {
            runs.iter().map(|r| simulate_on(acc, r)).collect()
        };

        let first_cell = cells.len();
        // SpConv2D-Acc's behaviour model (utilisation + bank conflicts) and
        // PointAcc's no-overlap cycle model never bound on DRAM bandwidth, so
        // sweeping that axis for them would emit duplicate cells differing
        // only in label (and pollute the frontier with fake ties). Emit one
        // cell per (PE array, SRAM) form factor instead.
        let mut bw_insensitive_seen: std::collections::HashSet<(usize, usize, u64)> =
            std::collections::HashSet::new();
        for config in &configs {
            let spade_area = AcceleratorReport::for_spade("SPADE", config).total_mm2();
            let dense_area = AcceleratorReport::for_dense("DenseAcc", config).total_mm2();

            // SPADE: one cell per dataflow setting.
            let mut spade_cells: Vec<DseCell> = Vec::new();
            for opts in &params.axes.dataflow {
                let enabled = opts.weight_grouping || opts.ganged_scatter || opts.adaptive_tiling;
                let acc = SpadeAccelerator::with_options(*config, *opts);
                let design = format!("{}/{}", config.label(), if enabled { "+df" } else { "-df" });
                spade_cells.push(mean_cell(
                    kind.name(),
                    acc.name(),
                    design,
                    config,
                    enabled,
                    spade_area,
                    &sim_all(&acc),
                ));
            }

            // Baselines: one cell per configuration (no dataflow switches).
            let dense = DenseAccelerator::new(*config);
            let dense_cell = mean_cell(
                kind.name(),
                dense.name(),
                config.label(),
                config,
                true,
                dense_area,
                &sim_all(&dense),
            );
            // SPADE vs DenseAcc at the same form factor (areas within the
            // ~4.5% sparsity-support overhead of each other): Fig. 9's claim,
            // checked in every configuration cell of the sweep. A cell wins
            // if any of its dataflow variants dominates DenseAcc.
            if !spade_cells.is_empty() {
                comparisons += 1;
                if spade_cells.iter().any(|s| {
                    s.mean_latency_ms < dense_cell.mean_latency_ms
                        && s.mean_energy_mj < dense_cell.mean_energy_mj
                }) {
                    wins += 1;
                }
            }
            cells.append(&mut spade_cells);
            cells.push(dense_cell);

            let form_factor = (config.pe_rows, config.pe_cols, config.total_sram_kib());
            if bw_insensitive_seen.insert(form_factor) {
                // Label without the bandwidth token: these models' results
                // hold for every swept DRAM bandwidth.
                let bw_free_label = format!(
                    "{}x{}/{}KiB",
                    config.pe_rows,
                    config.pe_cols,
                    config.total_sram_kib()
                );
                let spconv = SpConv2dAccelerator::new(config.pe_rows, config.pe_cols, 16);
                // SpConv2D-Acc and PointAcc carry their own sparsity hardware
                // (condensing logic, sorter + cache); model their area like
                // SPADE's sparsity-support overhead on the same datapath.
                cells.push(mean_cell(
                    kind.name(),
                    Accelerator::name(&spconv),
                    bw_free_label.clone(),
                    config,
                    true,
                    spade_area,
                    &sim_all(&spconv),
                ));
                let pacc = PointAccModel::new(*config);
                cells.push(mean_cell(
                    kind.name(),
                    pacc.name(),
                    bw_free_label,
                    config,
                    true,
                    spade_area,
                    &sim_all(&pacc),
                ));
            }
        }

        // Pareto extraction over this workload's cells.
        let metrics: Vec<[f64; 3]> = cells[first_cell..]
            .iter()
            .map(|c| [c.mean_latency_ms, c.mean_energy_mj, c.area_mm2])
            .collect();
        for (cell, keep) in cells[first_cell..]
            .iter_mut()
            .zip(pareto_frontier(&metrics))
        {
            cell.on_frontier = keep;
        }
    }

    DseResult {
        cells,
        num_configs: configs.len(),
        num_frames,
        num_swept_axes: params.axes.num_swept_axes(),
        spade_dense_wins: wins,
        spade_dense_comparisons: comparisons,
    }
}

impl DseResult {
    /// The cells that survived Pareto extraction.
    #[must_use]
    pub fn frontier(&self) -> Vec<&DseCell> {
        self.cells.iter().filter(|c| c.on_frontier).collect()
    }

    /// The full grid as a [`ReportTable`] (one row per cell).
    #[must_use]
    pub fn to_table(&self) -> ReportTable {
        let mut t = ReportTable::new(vec![
            "workload",
            "accelerator",
            "design",
            "pe_rows",
            "pe_cols",
            "sram_kib",
            "dram_bytes_per_cycle",
            "dataflow",
            "mean_latency_ms",
            "mean_energy_mj",
            "area_mm2",
            "mean_dram_mib",
            "on_frontier",
        ]);
        for c in &self.cells {
            t.push_row(vec![
                c.workload.into(),
                c.accelerator.clone().into(),
                c.design.clone().into(),
                c.pe_rows.into(),
                c.pe_cols.into(),
                (c.sram_kib as i64).into(),
                c.dram_bytes_per_cycle.into(),
                c.dataflow_enabled.into(),
                c.mean_latency_ms.into(),
                c.mean_energy_mj.into(),
                c.area_mm2.into(),
                c.mean_dram_mib.into(),
                c.on_frontier.into(),
            ]);
        }
        t
    }

    /// CSV export of the full grid.
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// JSON export of the full grid.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_table().to_json()
    }

    /// Human-readable summary: the sweep shape, the Pareto frontier per
    /// workload, and the SPADE-vs-DenseAcc dominance tally.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "DSE — {} configs x {} accelerator cells over a {}-frame drive ({} swept axes)\n",
            self.num_configs,
            self.cells.len(),
            self.num_frames,
            self.num_swept_axes,
        );
        let _ = writeln!(
            s,
            "Pareto frontier (latency/energy/area, {} of {} cells):",
            self.frontier().len(),
            self.cells.len()
        );
        let _ = writeln!(
            s,
            "workload | accelerator  | design                | latency ms | energy mJ | area mm2"
        );
        for c in self.frontier() {
            let _ = writeln!(
                s,
                "{:<8} | {:<12} | {:<21} | {:>10.3} | {:>9.3} | {:>8.2}",
                c.workload,
                c.accelerator,
                c.design,
                c.mean_latency_ms,
                c.mean_energy_mj,
                c.area_mm2
            );
        }
        let _ = writeln!(
            s,
            "SPADE dominates DenseAcc (same form factor, latency & energy) in {}/{} config cells",
            self.spade_dense_wins, self.spade_dense_comparisons
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_drops_dominated_points() {
        let points = [
            [1.0, 1.0, 1.0], // frontier
            [2.0, 2.0, 2.0], // dominated by the first
            [0.5, 3.0, 1.0], // frontier (best latency)
            [1.0, 1.0, 2.0], // dominated by the first (tie on two dims)
        ];
        let keep = pareto_frontier(&points);
        assert_eq!(keep, vec![true, false, true, false]);
    }

    #[test]
    fn pareto_keeps_exact_ties() {
        let points = [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let keep = pareto_frontier(&points);
        assert_eq!(keep, vec![true, true, false]);
    }

    #[test]
    fn pareto_of_empty_and_single() {
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(pareto_frontier(&[[1.0, 1.0, 1.0]]), vec![true]);
    }

    #[test]
    fn axes_expand_to_the_cross_product() {
        let axes = SweepAxes::paper_neighbourhood();
        assert_eq!(axes.expand_configs().len(), 3 * 2 * 2);
        assert_eq!(axes.num_swept_axes(), 4);
        assert!(SweepAxes::reduced().num_swept_axes() >= 3);
    }

    #[test]
    fn sweep_covers_all_four_accelerators_and_finds_a_frontier() {
        let mut params = DseParams::default_for(WorkloadScale::Reduced);
        // Smallest grid that still crosses three axes.
        params.axes = SweepAxes {
            pe_dims: vec![(16, 16), (64, 64)],
            sram_scales: vec![1.0],
            dram_bytes_per_cycle: vec![12.8, 25.6],
            dataflow: vec![
                DataflowOptions::all_disabled(),
                DataflowOptions::all_enabled(),
            ],
        };
        params.num_frames = 3;
        let result = run_dse(&params);
        for name in ["SPADE", "DenseAcc", "SpConv2D-Acc", "PointAcc"] {
            assert!(
                result.cells.iter().any(|c| c.accelerator == name),
                "missing {name}"
            );
        }
        // The DRAM-bandwidth-insensitive baselines collapse that axis: one
        // cell per (PE array, SRAM) form factor — here 2 form factors despite
        // 4 configs — and their labels carry no bandwidth token.
        let spconv_cells: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.accelerator == "SpConv2D-Acc")
            .collect();
        assert_eq!(spconv_cells.len(), 2);
        assert!(spconv_cells.iter().all(|c| !c.design.contains("Bpc")));
        let frontier = result.frontier();
        assert!(!frontier.is_empty());
        // Fig. 9 consistency: SPADE beats the dense design of the same form
        // factor somewhere in the grid.
        assert!(result.spade_dense_wins >= 1);
        // Every frontier cell is genuinely non-dominated.
        for f in &frontier {
            assert!(!result.cells.iter().any(|c| {
                c.workload == f.workload
                    && c.mean_latency_ms <= f.mean_latency_ms
                    && c.mean_energy_mj <= f.mean_energy_mj
                    && c.area_mm2 <= f.area_mm2
                    && (c.mean_latency_ms < f.mean_latency_ms
                        || c.mean_energy_mj < f.mean_energy_mj
                        || c.area_mm2 < f.area_mm2)
            }));
        }
    }
}
