//! # spade-bench
//!
//! The experiment harness of the SPADE reproduction: one function per table
//! and figure of the paper's evaluation, all driven by the synthetic KITTI-
//! like / nuScenes-like workloads. The `spade-experiments` binary and the
//! Criterion benches print the same series.
//!
//! Beyond the paper's figures, [`dse`] sweeps the hardware configuration
//! space against multi-frame drive scenarios and extracts latency/energy/area
//! Pareto frontiers (the `dse` experiment). The sweep fans out across the
//! dependency-free scoped-thread [`pool::WorkerPool`], with results
//! reassembled in index order so parallel runs are bit-identical to serial.
//!
//! The [`serve`] module turns the sweep into a long-running TCP service
//! (`spade-serve`): requests travel as [`protocol`] frames, duplicate
//! sweeps are deduped in flight, completed results are cached, and
//! persistent-world drives stream frame-by-frame through the temporal
//! delta path. [`loadgen`] (`spade-loadgen`) replays seeded Zipfian
//! request mixes against it and reports throughput, latency percentiles,
//! and cache hit-rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dse;
pub mod experiments;
pub mod loadgen;
pub mod pool;
pub mod protocol;
pub mod serve;
pub mod workload;

pub use dse::{run_dse, run_dse_on_pool, run_dse_with_jobs, DseParams, DseResult, SweepAxes};
pub use experiments::run_experiment;
pub use loadgen::{expected_hit_rate, run_loadgen, LoadgenConfig, LoadgenReport};
pub use pool::{default_jobs, ConcurrencyBudget, WorkerPool};
pub use protocol::{cache_key, canonicalize_params, FrameRequest, Request, Response};
pub use serve::{ServeConfig, Server};
pub use workload::{model_run, model_run_on_frame, ModelRun, WorkloadScale};
