//! # spade-bench
//!
//! The experiment harness of the SPADE reproduction: one function per table
//! and figure of the paper's evaluation, all driven by the synthetic KITTI-
//! like / nuScenes-like workloads. The `spade-experiments` binary and the
//! Criterion benches print the same series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workload;

pub use experiments::run_experiment;
pub use workload::{model_run, ModelRun, WorkloadScale};
