//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! spade-experiments              # run every experiment at full scale
//! spade-experiments table1 fig09 # run selected experiments
//! spade-experiments --reduced    # quarter-scale grids (fast smoke run)
//! ```

use spade_bench::{run_experiment, WorkloadScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--reduced") {
        WorkloadScale::Reduced
    } else {
        WorkloadScale::Full
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if selected.is_empty() {
        spade_bench::experiments::all_experiment_ids()
    } else {
        selected
    };
    for id in ids {
        match run_experiment(id, scale) {
            Some(out) => println!("\n=== {id} ===\n{out}"),
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
}
