//! Regenerates every table and figure of the paper's evaluation, plus the
//! design-space exploration sweep.
//!
//! Usage:
//!
//! ```text
//! spade-experiments              # run every experiment at full scale
//! spade-experiments table1 fig09 # run selected experiments
//! spade-experiments --reduced    # quarter-scale grids (fast smoke run)
//!
//! # DSE-specific flags (only meaningful with the `dse` experiment):
//! spade-experiments dse --jobs 4                    # sweep on 4 worker threads
//! spade-experiments dse --frames 8 --drive-seed 7   # reshape the drive
//! spade-experiments dse --scenario stop-and-go      # scripted persistent drive
//! spade-experiments dse --scenario urban --delta    # temporal delta execution
//! spade-experiments dse --csv pareto.csv            # export the grid as CSV
//! spade-experiments dse --json pareto.json          # ... or as JSON
//! spade-experiments dse --enlarged --adaptive       # 91x grid, screened sweep
//! ```
//!
//! `--jobs` defaults to the machine's available parallelism; the sweep
//! result is bit-identical for every worker count. `--scenario` selects a
//! scripted drive (`constant | urban | stop-and-go | tunnel`); without it
//! the sweep runs the legacy i.i.d. density-ramp drive. `--delta` executes
//! each drive through the temporal delta path (patching the previous frame's
//! rule structures instead of regenerating them; byte-identical results,
//! adds the `frames_delta_executed` / `delta_speedup` export columns);
//! `--no-delta` restores the full-sweep default. `--enlarged` crosses the
//! grid with the buffer-split × banking axes (~91× more configurations);
//! `--adaptive` explores the grid via roofline screening + successive
//! halving (identical Pareto frontier, a fraction of the simulations; adds
//! the `simulated` / `cells_screened` / `cells_simulated` / `frames_saved`
//! export columns) and `--exhaustive` restores the simulate-everything
//! default.

use spade_bench::dse::{run_dse_with_jobs, DseParams, SweepAxes};
use spade_bench::{default_jobs, run_experiment, WorkloadScale};
use spade_pointcloud::NamedScenario;

struct Cli {
    scale: WorkloadScale,
    ids: Vec<String>,
    jobs: Option<usize>,
    frames: Option<usize>,
    drive_seed: Option<u64>,
    scenario: Option<NamedScenario>,
    delta: Option<bool>,
    adaptive: Option<bool>,
    enlarged: bool,
    csv_path: Option<String>,
    json_path: Option<String>,
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| usage_error(&format!("{flag} expects a value")))
}

fn int_value_of<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = value_of(it, flag);
    raw.parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} expects an integer, got '{raw}'")))
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        scale: WorkloadScale::Full,
        ids: Vec::new(),
        jobs: None,
        frames: None,
        drive_seed: None,
        scenario: None,
        delta: None,
        adaptive: None,
        enlarged: false,
        csv_path: None,
        json_path: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => cli.scale = WorkloadScale::Reduced,
            // 0 is accepted and clamped to 1 by the worker pool.
            "--jobs" => cli.jobs = Some(int_value_of(&mut it, "--jobs")),
            "--frames" => {
                let frames: usize = int_value_of(&mut it, "--frames");
                if frames == 0 {
                    usage_error("--frames expects a positive integer");
                }
                cli.frames = Some(frames);
            }
            "--drive-seed" => cli.drive_seed = Some(int_value_of(&mut it, "--drive-seed")),
            "--scenario" => {
                let raw = value_of(&mut it, "--scenario");
                let scenario = NamedScenario::parse(&raw).unwrap_or_else(|| {
                    let names: Vec<&str> = NamedScenario::ALL.iter().map(|s| s.name()).collect();
                    usage_error(&format!(
                        "--scenario expects one of {}, got '{raw}'",
                        names.join(" | ")
                    ))
                });
                cli.scenario = Some(scenario);
            }
            "--delta" => cli.delta = Some(true),
            "--no-delta" => cli.delta = Some(false),
            "--adaptive" => cli.adaptive = Some(true),
            "--exhaustive" => cli.adaptive = Some(false),
            "--enlarged" => cli.enlarged = true,
            "--csv" => cli.csv_path = Some(value_of(&mut it, "--csv")),
            "--json" => cli.json_path = Some(value_of(&mut it, "--json")),
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown flag: {flag}"));
            }
            id => cli.ids.push(id.to_owned()),
        }
    }
    cli
}

fn run_dse_with(cli: &Cli) {
    let mut params = DseParams::default_for(cli.scale);
    if cli.enlarged {
        params.axes = SweepAxes::enlarged();
    }
    if let Some(frames) = cli.frames {
        params.num_frames = frames;
    }
    if let Some(seed) = cli.drive_seed {
        params.base_seed = seed;
    }
    params.scenario = cli.scenario;
    if let Some(delta) = cli.delta {
        params.delta = delta;
    }
    if let Some(adaptive) = cli.adaptive {
        params.adaptive = adaptive;
    }
    // The pool clamps 0 to 1 internally; clamp here too so the banner below
    // reports the worker count that actually runs.
    let jobs = cli.jobs.unwrap_or_else(default_jobs).max(1);
    let result = run_dse_with_jobs(&params, jobs);
    let drive = match cli.scenario {
        Some(s) => format!("{s} scenario"),
        None => "legacy i.i.d. drive".to_owned(),
    };
    let exec = if params.delta {
        ", delta execution"
    } else {
        ""
    };
    let explore = if params.adaptive {
        ", adaptive exploration"
    } else {
        ""
    };
    println!(
        "\n=== dse ({jobs} worker threads, {drive}{exec}{explore}) ===\n{}",
        result.summary()
    );
    if let Some(path) = &cli.csv_path {
        std::fs::write(path, result.to_csv()).expect("failed to write CSV");
        println!("wrote {} cells to {path}", result.cells.len());
    }
    if let Some(path) = &cli.json_path {
        std::fs::write(path, result.to_json()).expect("failed to write JSON");
        println!("wrote {} cells to {path}", result.cells.len());
    }
}

fn main() {
    let cli = parse_cli();
    let ids: Vec<String> = if cli.ids.is_empty() {
        spade_bench::experiments::all_experiment_ids()
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        cli.ids.clone()
    };
    for id in &ids {
        // `dse` takes the drive/export flags, so it runs through its own path.
        if id == "dse" {
            run_dse_with(&cli);
            continue;
        }
        match run_experiment(id, cli.scale) {
            Some(out) => println!("\n=== {id} ===\n{out}"),
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
}
