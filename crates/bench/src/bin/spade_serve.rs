//! The SPADE sweep service: accepts `SWEEP` / `FRAME` / `STATS` requests
//! over a tiny length-prefixed TCP protocol, dedupes identical in-flight
//! sweeps, caches completed results, and streams persistent-world drives
//! through the temporal delta path.
//!
//! Usage:
//!
//! ```text
//! spade-serve                          # bind 127.0.0.1:0 (ephemeral port)
//! spade-serve --addr 127.0.0.1:7454    # fixed port
//! spade-serve --threads 8 --jobs 4     # 8 handler threads, 4-wide sweeps
//! spade-serve --budget 3               # ≤3 extra worker threads in total
//! spade-serve --cache-mb 128           # result-cache byte bound
//! ```
//!
//! On startup the server prints `listening on <addr>` — scripts parse
//! that line to discover the ephemeral port. Send the `SHUTDOWN` verb
//! (e.g. via `spade-loadgen --shutdown`) for a clean exit.

use spade_bench::{ServeConfig, Server};

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| usage_error(&format!("{flag} expects a value")))
}

fn int_value_of<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = value_of(it, flag);
    raw.parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} expects an integer, got '{raw}'")))
}

fn main() {
    let mut config = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = value_of(&mut it, "--addr"),
            "--threads" => config.threads = int_value_of(&mut it, "--threads"),
            "--jobs" => config.sweep_jobs = int_value_of(&mut it, "--jobs"),
            "--budget" => config.budget_tokens = int_value_of(&mut it, "--budget"),
            "--cache-mb" => {
                let mb: usize = int_value_of(&mut it, "--cache-mb");
                config.cache_bytes = mb * 1024 * 1024;
            }
            flag => usage_error(&format!("unknown flag: {flag}")),
        }
    }
    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start: {e}");
        std::process::exit(1);
    });
    println!("listening on {}", server.local_addr());
    server.join();
    println!("shut down cleanly");
}
