//! Closed-loop load generator for `spade-serve`: replays a seeded
//! Zipfian mix of DSE sweep requests and reports throughput, latency
//! percentiles (overall and split cold/warm by the server's admission
//! flags — `hit=1` cache hits and `join=1` in-flight joins are both
//! warm), and the measured vs analytic warm rate.
//!
//! Usage:
//!
//! ```text
//! spade-loadgen --addr 127.0.0.1:7454                 # 200 requests, defaults
//! spade-loadgen --addr HOST:PORT --requests 500 \
//!               --connections 4 --catalog 8 --zipf 1.0 --seed 2024
//! spade-loadgen --addr HOST:PORT --json report.json   # machine-readable report
//! spade-loadgen --addr HOST:PORT --stats              # print server STATS after
//! spade-loadgen --addr HOST:PORT --shutdown           # stop the server after
//! ```
//!
//! The catalog holds `--catalog` distinct reduced-scale sweeps (rank k
//! differs only in drive seed); rank 0 is the Zipf-hottest. The same
//! `--seed` always replays the identical request sequence.

use spade_bench::loadgen::{expected_hit_rate, run_loadgen, zipf_weights, LoadgenConfig};
use spade_bench::protocol::{encode_request, read_frame, write_frame, Request, Response};
use spade_bench::{DseParams, WorkloadScale};
use std::net::TcpStream;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn value_of(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| usage_error(&format!("{flag} expects a value")))
}

fn int_value_of<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = value_of(it, flag);
    raw.parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got '{raw}'")))
}

/// Sends one auxiliary verb on a fresh connection and returns the reply.
fn send_verb(addr: &str, request: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, encode_request(request).as_bytes())?;
    let reply = read_frame(&mut stream)?
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no reply"))?;
    let text = std::str::from_utf8(&reply)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Response::decode(text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn main() {
    let mut addr = String::new();
    let mut requests = 200usize;
    let mut connections = 2usize;
    let mut catalog_len = 8usize;
    let mut zipf = 1.0f64;
    let mut seed = 2024u64;
    let mut frames = 3usize;
    let mut scale = WorkloadScale::Reduced;
    let mut json_path: Option<String> = None;
    let mut print_stats = false;
    let mut shutdown = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = value_of(&mut it, "--addr"),
            "--requests" => requests = int_value_of(&mut it, "--requests"),
            "--connections" => connections = int_value_of(&mut it, "--connections"),
            "--catalog" => catalog_len = int_value_of(&mut it, "--catalog"),
            "--zipf" => zipf = int_value_of(&mut it, "--zipf"),
            "--seed" => seed = int_value_of(&mut it, "--seed"),
            "--frames" => frames = int_value_of(&mut it, "--frames"),
            "--full" => scale = WorkloadScale::Full,
            "--json" => json_path = Some(value_of(&mut it, "--json")),
            "--stats" => print_stats = true,
            "--shutdown" => shutdown = true,
            flag => usage_error(&format!("unknown flag: {flag}")),
        }
    }
    if addr.is_empty() {
        usage_error("--addr HOST:PORT is required");
    }
    if catalog_len == 0 {
        usage_error("--catalog expects a positive integer");
    }
    let catalog: Vec<DseParams> = (0..catalog_len)
        .map(|rank| {
            let mut params = DseParams::default_for(scale);
            params.num_frames = frames.max(1);
            params.base_seed += rank as u64;
            params
        })
        .collect();
    let config = LoadgenConfig {
        addr: addr.clone(),
        connections,
        requests,
        catalog,
        zipf_exponent: zipf,
        seed,
    };
    if requests > 0 {
        let report = run_loadgen(&config).unwrap_or_else(|e| {
            eprintln!("loadgen failed: {e}");
            std::process::exit(1);
        });
        let expected = expected_hit_rate(&zipf_weights(catalog_len, zipf), requests);
        println!(
            "{} requests over {} connections in {:.1} ms ({:.1} req/s), {} errors",
            report.requests,
            connections,
            report.elapsed.as_secs_f64() * 1e3,
            report.throughput_rps,
            report.errors,
        );
        println!(
            "warm rate {:.3} (analytic expectation {expected:.3}; {} in-flight joins counted warm)",
            report.hit_rate, report.joined
        );
        println!(
            "latency ms: p50 {:.3} p99 {:.3} | cold p50 {:.3} p99 {:.3} | warm p50 {:.3} p99 {:.3}",
            report.p50_ms,
            report.p99_ms,
            report.cold_p50_ms,
            report.cold_p99_ms,
            report.warm_p50_ms,
            report.warm_p99_ms,
        );
        if let Some(path) = &json_path {
            let json = report.to_table(&config).to_json_object();
            std::fs::write(path, json).expect("failed to write JSON report");
            println!("wrote report to {path}");
        }
    }
    if print_stats {
        match send_verb(&addr, &Request::Stats) {
            Ok(Response::Ok { body, .. }) => println!("--- server stats ---\n{body}"),
            Ok(Response::Err(message)) => eprintln!("STATS failed: {message}"),
            Err(e) => eprintln!("STATS failed: {e}"),
        }
    }
    if shutdown {
        match send_verb(&addr, &Request::Shutdown) {
            Ok(_) => println!("server asked to shut down"),
            Err(e) => eprintln!("SHUTDOWN failed: {e}"),
        }
    }
}
