//! `spade-loadgen`: a closed-loop load generator for `spade-serve`.
//!
//! Replays a deterministic Zipfian mix of `SWEEP` requests against a
//! running server and reports service-side throughput, latency
//! percentiles, and cache hit-rate. Everything is seeded: the same
//! `(seed, catalog, exponent, request count)` produces the identical
//! request sequence on every run ([`request_sequence`]), so benchmark
//! numbers are reproducible and the integration tests can assert the
//! measured hit-rate against the analytic expectation
//! ([`expected_hit_rate`]).
//!
//! The generator is *closed-loop*: each connection issues its next
//! request only after the previous response arrives, so measured latency
//! is honest end-to-end service time (queueing included) and the offered
//! load never outruns the server.
//!
//! Latencies are split by the server's admission flags: *cold* requests
//! executed a sweep themselves; *warm* requests were served without
//! executing anything — from the completed-result cache (`hit=1`) or by
//! joining an identical in-flight sweep (`join=1`). Counting joins as
//! warm makes the measured warm rate match [`expected_hit_rate`] under
//! concurrency too: the analytic model only distinguishes "first request
//! of a key" from "the rest", and a join is just a repeat that arrived
//! before the first finished. The ISSUE's service acceptance bar — warm
//! p99 at least an order of magnitude under cold p99 — falls directly
//! out of [`LoadgenReport`].

use crate::dse::DseParams;
use crate::protocol::{encode_request, read_frame, write_frame, Request, Response};
use spade_core::{ReportTable, ReportValue};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A deterministic SplitMix64 RNG — the same tiny generator the scene
/// synthesiser uses, re-implemented here so the bench crate stays
/// dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Normalised Zipfian probabilities over `n` ranks: `p_k ∝ 1/(k+1)^s`.
/// Rank 0 is the hottest key.
#[must_use]
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// The deterministic rank sequence a run replays: `requests` draws from
/// the Zipfian distribution over `catalog_len` ranks, all from one seeded
/// RNG — same inputs, same sequence, every time.
#[must_use]
pub fn request_sequence(
    catalog_len: usize,
    requests: usize,
    exponent: f64,
    seed: u64,
) -> Vec<usize> {
    assert!(catalog_len > 0, "catalog must not be empty");
    let weights = zipf_weights(catalog_len, exponent);
    let mut cumulative = Vec::with_capacity(catalog_len);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let mut rng = SplitMix64::new(seed);
    (0..requests)
        .map(|_| {
            let u = rng.next_f64();
            cumulative
                .iter()
                .position(|&c| u < c)
                .unwrap_or(catalog_len - 1)
        })
        .collect()
}

/// Analytic expected cache hit-rate of a cold-started server under `n`
/// requests drawn i.i.d. from `weights`: each distinct key's first
/// request misses and the rest hit, so
/// `E[hit-rate] = 1 − Σ_k (1 − (1 − p_k)^n) / n`.
///
/// Exact for a sequential (single-connection) closed loop with a cache
/// big enough to avoid eviction; concurrent connections can convert some
/// would-be hits into in-flight joins (reported as `deduped`, not hits).
#[must_use]
pub fn expected_hit_rate(weights: &[f64], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let expected_distinct: f64 = weights
        .iter()
        .map(|&p| 1.0 - (1.0 - p).powi(i32::try_from(n).unwrap_or(i32::MAX)))
        .sum();
    1.0 - expected_distinct / n as f64
}

/// What to replay and where.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7454`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct sweeps to draw from; index 0 is the hottest rank.
    pub catalog: Vec<DseParams>,
    /// Zipf exponent `s` (1.0 is the classic web-trace value; larger
    /// skews hotter).
    pub zipf_exponent: f64,
    /// RNG seed for the request sequence.
    pub seed: u64,
}

/// One request's outcome.
#[derive(Debug, Clone, Copy)]
struct Sample {
    latency: Duration,
    /// Served from the completed-result cache (`hit=1`).
    hit: bool,
    /// Joined an identical in-flight sweep (`join=1`).
    join: bool,
}

impl Sample {
    /// Warm = the request executed nothing itself.
    fn warm(&self) -> bool {
        self.hit || self.join
    }
}

/// The measured result of a load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests completed successfully.
    pub requests: usize,
    /// Requests that failed (I/O error or `ERR` response).
    pub errors: usize,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Fraction of completed requests served warm: a cache hit (`hit=1`)
    /// or an in-flight join (`join=1`). Comparable to
    /// [`expected_hit_rate`] at any connection count.
    pub hit_rate: f64,
    /// Requests that joined an identical in-flight sweep (warm, but not
    /// cache hits — the gap between `hit_rate` and the server's own
    /// `cache_hit_rate` counter under concurrency).
    pub joined: usize,
    /// Latency percentiles over every completed request (ms).
    pub p50_ms: f64,
    /// 99th percentile over every completed request (ms).
    pub p99_ms: f64,
    /// Median over cold (sweep-executing) requests (ms).
    pub cold_p50_ms: f64,
    /// 99th percentile over cold requests (ms).
    pub cold_p99_ms: f64,
    /// Median over warm (hit or join) requests (ms).
    pub warm_p50_ms: f64,
    /// 99th percentile over warm requests (ms).
    pub warm_p99_ms: f64,
}

/// Nearest-rank percentile of an unsorted latency set, in milliseconds.
/// Returns 0 for an empty set.
fn percentile_ms(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

impl LoadgenReport {
    fn from_samples(samples: &[Sample], elapsed: Duration, errors: usize) -> Self {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut all: Vec<f64> = samples.iter().map(|s| ms(s.latency)).collect();
        let mut cold: Vec<f64> = samples
            .iter()
            .filter(|s| !s.warm())
            .map(|s| ms(s.latency))
            .collect();
        let mut warm: Vec<f64> = samples
            .iter()
            .filter(|s| s.warm())
            .map(|s| ms(s.latency))
            .collect();
        let warm_count = warm.len();
        let joined = samples.iter().filter(|s| s.join).count();
        Self {
            requests: samples.len(),
            errors,
            elapsed,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                samples.len() as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            hit_rate: if samples.is_empty() {
                0.0
            } else {
                warm_count as f64 / samples.len() as f64
            },
            joined,
            p50_ms: percentile_ms(&mut all, 0.50),
            p99_ms: percentile_ms(&mut all, 0.99),
            cold_p50_ms: percentile_ms(&mut cold, 0.50),
            cold_p99_ms: percentile_ms(&mut cold, 0.99),
            warm_p50_ms: percentile_ms(&mut warm, 0.50),
            warm_p99_ms: percentile_ms(&mut warm, 0.99),
        }
    }

    /// The report as a one-row [`ReportTable`] (CSV/JSON export).
    #[must_use]
    pub fn to_table(&self, config: &LoadgenConfig) -> ReportTable {
        let mut table = ReportTable::new(vec![
            "requests",
            "connections",
            "catalog",
            "zipf_exponent",
            "seed",
            "errors",
            "joined",
            "elapsed_ms",
            "throughput_rps",
            "hit_rate",
            "p50_ms",
            "p99_ms",
            "cold_p50_ms",
            "cold_p99_ms",
            "warm_p50_ms",
            "warm_p99_ms",
        ]);
        table.push_row(vec![
            ReportValue::Int(self.requests as i64),
            ReportValue::Int(config.connections as i64),
            ReportValue::Int(config.catalog.len() as i64),
            ReportValue::Float(config.zipf_exponent),
            ReportValue::Int(config.seed as i64),
            ReportValue::Int(self.errors as i64),
            ReportValue::Int(self.joined as i64),
            ReportValue::Float(self.elapsed.as_secs_f64() * 1e3),
            ReportValue::Float(self.throughput_rps),
            ReportValue::Float(self.hit_rate),
            ReportValue::Float(self.p50_ms),
            ReportValue::Float(self.p99_ms),
            ReportValue::Float(self.cold_p50_ms),
            ReportValue::Float(self.cold_p99_ms),
            ReportValue::Float(self.warm_p50_ms),
            ReportValue::Float(self.warm_p99_ms),
        ]);
        table
    }
}

/// Issues one `SWEEP` and returns its latency and admission flags.
fn issue_sweep(stream: &mut TcpStream, params: &DseParams) -> Result<Sample, String> {
    let payload = encode_request(&Request::Sweep(params.clone()));
    // lint:allow(wall-clock): latency measurement is the load generator's
    // whole purpose; nothing here feeds a deterministic export.
    let start = Instant::now();
    write_frame(stream, payload.as_bytes()).map_err(|e| e.to_string())?;
    let reply = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed the connection".to_owned())?;
    let latency = start.elapsed();
    let text = std::str::from_utf8(&reply).map_err(|e| e.to_string())?;
    match Response::decode(text)? {
        ok @ Response::Ok { .. } => Ok(Sample {
            latency,
            hit: ok.meta_field("hit") == Some("1"),
            join: ok.meta_field("join") == Some("1")
                // Pre-join servers spell the same fact `deduped=1`.
                || ok.meta_field("deduped") == Some("1"),
        }),
        Response::Err(message) => Err(message),
    }
}

/// Runs the closed loop: the deterministic rank sequence is dealt
/// round-robin across `connections` threads, each replaying its share in
/// order over its own socket.
///
/// # Errors
///
/// Fails if any connection cannot be established; individual request
/// failures are tallied in [`LoadgenReport::errors`] instead.
pub fn run_loadgen(config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    assert!(!config.catalog.is_empty(), "catalog must not be empty");
    let sequence = request_sequence(
        config.catalog.len(),
        config.requests,
        config.zipf_exponent,
        config.seed,
    );
    let connections = config.connections.max(1);
    let mut sockets = (0..connections)
        .map(|_| TcpStream::connect(&config.addr))
        .collect::<std::io::Result<Vec<_>>>()?;
    for socket in &sockets {
        socket.set_nodelay(true)?;
    }
    // lint:allow(wall-clock): run wall-time for the throughput report.
    let started = Instant::now();
    let mut results: Vec<(Vec<Sample>, usize)> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let handles: Vec<_> = sockets
            .iter_mut()
            .enumerate()
            .map(|(lane, stream)| {
                let sequence = &sequence;
                let catalog = &config.catalog;
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut errors = 0usize;
                    for &rank in sequence.iter().skip(lane).step_by(connections) {
                        match issue_sweep(stream, &catalog[rank]) {
                            Ok(sample) => samples.push(sample),
                            Err(_) => errors += 1,
                        }
                    }
                    (samples, errors)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("loadgen lane panicked"));
        }
    });
    let elapsed = started.elapsed();
    let mut samples = Vec::with_capacity(config.requests);
    let mut errors = 0;
    for (lane_samples, lane_errors) in results {
        samples.extend(lane_samples);
        errors += lane_errors;
    }
    Ok(LoadgenReport::from_samples(&samples, elapsed, errors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_are_normalised_and_rank_ordered() {
        let w = zipf_weights(8, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]), "rank 0 is hottest");
        // Exponent 0 degrades to uniform.
        let uniform = zipf_weights(4, 0.0);
        assert!(uniform.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn request_sequence_is_deterministic_in_the_seed() {
        let a = request_sequence(16, 500, 1.0, 2024);
        let b = request_sequence(16, 500, 1.0, 2024);
        assert_eq!(a, b, "same seed, same sequence");
        let c = request_sequence(16, 500, 1.0, 2025);
        assert_ne!(a, c, "different seed, different sequence");
        assert!(a.iter().all(|&r| r < 16));
    }

    #[test]
    fn zipfian_draws_match_their_analytic_frequencies() {
        let n = 20_000;
        let ranks = request_sequence(8, n, 1.0, 7);
        let weights = zipf_weights(8, 1.0);
        for (rank, &expected) in weights.iter().enumerate() {
            let observed = ranks.iter().filter(|&&r| r == rank).count() as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "rank {rank}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn expected_hit_rate_brackets_sanely() {
        let weights = zipf_weights(8, 1.0);
        assert_eq!(expected_hit_rate(&weights, 0), 0.0);
        // One request can only miss.
        assert!(expected_hit_rate(&weights, 1) < 1e-12);
        // Many requests over a small catalog approach certainty.
        assert!(expected_hit_rate(&weights, 10_000) > 0.99);
        // Monotone in n.
        let h10 = expected_hit_rate(&weights, 10);
        let h100 = expected_hit_rate(&weights, 100);
        assert!(h100 > h10);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut lat = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((percentile_ms(&mut lat, 0.50) - 3.0).abs() < 1e-12);
        assert!((percentile_ms(&mut lat, 0.99) - 5.0).abs() < 1e-12);
        assert!((percentile_ms(&mut lat, 0.01) - 1.0).abs() < 1e-12);
        assert_eq!(percentile_ms(&mut [], 0.5), 0.0);
    }

    #[test]
    fn report_table_round_trips_the_headline_numbers() {
        let samples = [
            Sample {
                latency: Duration::from_millis(10),
                hit: false,
                join: false,
            },
            Sample {
                latency: Duration::from_millis(1),
                hit: true,
                join: false,
            },
            Sample {
                latency: Duration::from_millis(1),
                hit: true,
                join: false,
            },
            Sample {
                latency: Duration::from_millis(12),
                hit: false,
                join: false,
            },
        ];
        let report = LoadgenReport::from_samples(&samples, Duration::from_millis(100), 1);
        assert_eq!(report.requests, 4);
        assert_eq!(report.errors, 1);
        assert_eq!(report.joined, 0);
        assert!((report.hit_rate - 0.5).abs() < 1e-12);
        assert!((report.throughput_rps - 40.0).abs() < 1e-9);
        assert!(report.cold_p99_ms >= 12.0 - 1e-9);
        assert!(report.warm_p99_ms <= 1.0 + 1e-9);
        let config = LoadgenConfig {
            addr: "unused".into(),
            connections: 1,
            requests: 4,
            catalog: vec![crate::dse::DseParams::default_for(
                crate::workload::WorkloadScale::Reduced,
            )],
            zipf_exponent: 1.0,
            seed: 1,
        };
        let table = report.to_table(&config);
        assert_eq!(table.num_rows(), 1);
        let json = table.to_json_object();
        assert!(json.contains("\"hit_rate\": 0.5"), "{json}");
    }

    /// In-flight joins executed nothing, so they count as warm: the warm
    /// rate then matches the analytic hit-rate expectation even when
    /// concurrency turns would-be cache hits into joins (the 0.964 vs
    /// 0.984 gap PR 7 measured was exactly its 10 uncounted joins).
    #[test]
    fn joins_count_as_warm_in_rate_and_percentiles() {
        let samples = [
            Sample {
                latency: Duration::from_millis(20),
                hit: false,
                join: false,
            },
            Sample {
                latency: Duration::from_millis(18),
                hit: false,
                join: true,
            },
            Sample {
                latency: Duration::from_millis(1),
                hit: true,
                join: false,
            },
        ];
        let report = LoadgenReport::from_samples(&samples, Duration::from_millis(50), 0);
        assert_eq!(report.joined, 1);
        assert!((report.hit_rate - 2.0 / 3.0).abs() < 1e-12, "join is warm");
        // The join's latency lands in the warm split (joins wait on the
        // executor, so warm p99 reflects that), not the cold one.
        assert!(report.warm_p99_ms >= 18.0 - 1e-9);
        assert!((report.cold_p50_ms - 20.0).abs() < 1e-9);
    }
}
