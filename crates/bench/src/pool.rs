//! A dependency-free scoped-thread worker pool for embarrassingly parallel
//! sweeps.
//!
//! Every `(configuration, accelerator, frame)` cell of the DSE grid is an
//! independent simulation, so the sweep parallelises trivially — but the
//! build container has no crates-registry access, so `rayon` is out of
//! reach. [`WorkerPool`] covers the need with `std::thread::scope`: workers
//! pull indices from a shared atomic counter (so an unlucky static partition
//! cannot leave one worker with all the slow cells) and results are
//! reassembled **in index order**, which makes parallel output bit-identical
//! to a serial run regardless of which worker computed which cell.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width pool of scoped worker threads.
///
/// The pool holds no threads between runs — each [`WorkerPool::run`] call
/// spawns its workers inside a `std::thread::scope`, which guarantees they
/// are joined before the call returns (even when a task panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// Creates a pool of `jobs` workers. `0` is clamped to `1` so a
    /// misparsed `--jobs` flag degrades to a serial run instead of a hang.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        Self::new(default_jobs())
    }

    /// Number of workers the pool runs with.
    #[must_use]
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `task` to every index in `0..num_items` and returns the
    /// results in index order.
    ///
    /// With one worker (or one item) this is a plain serial map — no threads
    /// are spawned, so `jobs = 1` is the reference the parallel path must
    /// match. With more, workers race on an atomic cursor for the next
    /// index; the indexed reassembly keeps the output identical either way.
    ///
    /// # Panics
    ///
    /// If `task` panics for any index, the panic is propagated to the caller
    /// after the remaining workers finish — the scope always joins every
    /// worker, so a poisoned cell can never deadlock the run.
    pub fn run<T, F>(&self, num_items: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let jobs = self.jobs.min(num_items);
        if jobs <= 1 {
            return (0..num_items).map(task).collect();
        }
        let cursor = AtomicUsize::new(0);
        let task = &task;
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(num_items).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= num_items {
                                break;
                            }
                            produced.push((i, task(i)));
                        }
                        produced
                    })
                })
                .collect();
            // Join every worker before re-raising any panic: unwinding
            // mid-loop would leave panicked handles for the scope to join
            // during the unwind, and a second captured panic there would
            // escalate to a process abort.
            let mut first_panic = None;
            for worker in workers {
                match worker.join() {
                    Ok(pairs) => {
                        for (i, value) in pairs {
                            slots[i] = Some(value);
                        }
                    }
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index in 0..num_items is claimed exactly once"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// The machine's available parallelism, or 1 if it cannot be queried.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_cells_still_orders_results() {
        // 8 workers racing for 3 cells: 5 workers find the cursor exhausted
        // and return empty-handed; the output order must not care.
        let pool = WorkerPool::new(8);
        let out = pool.run(3, |i| format!("cell-{i}"));
        assert_eq!(out, vec!["cell-0", "cell-1", "cell-2"]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_items_returns_empty() {
        assert!(WorkerPool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize| (i as f64).sqrt() * 7.0;
        assert_eq!(WorkerPool::new(1).run(64, f), WorkerPool::new(7).run(64, f));
    }

    #[test]
    fn panicking_cell_propagates_without_deadlocking_the_join() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::new(4).run(32, |i| {
                if i == 5 {
                    panic!("cell 5 is poisoned");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        // The panic surfaced (no deadlock, no swallowed error) and the other
        // workers drained the remaining cells before the join completed.
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn two_panicking_cells_still_propagate_instead_of_aborting() {
        // Regression: re-raising the first panic before joining the other
        // workers would hand the scope a second captured panic during
        // unwind — a panic-inside-panic, which aborts the process.
        let result = catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::new(4).run(16, |i| {
                if i == 2 || i == 9 {
                    panic!("cell {i} is poisoned");
                }
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(WorkerPool::with_available_parallelism().jobs() >= 1);
        assert!(WorkerPool::default().jobs() >= 1);
    }
}
