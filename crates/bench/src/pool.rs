//! A dependency-free scoped-thread worker pool for embarrassingly parallel
//! sweeps, safe to drive from many concurrent callers.
//!
//! Every `(configuration, accelerator, frame)` cell of the DSE grid is an
//! independent simulation, so the sweep parallelises trivially — but the
//! build container has no crates-registry access, so `rayon` is out of
//! reach. [`WorkerPool`] covers the need with `std::thread::scope`: workers
//! pull indices from a shared atomic counter (so an unlucky static partition
//! cannot leave one worker with all the slow cells) and results are
//! reassembled **in index order**, which makes parallel output bit-identical
//! to a serial run regardless of which worker computed which cell.
//!
//! ## Concurrent callers
//!
//! The batch CLI runs one sweep at a time, but `spade-serve` multiplexes
//! many concurrent sweeps over one machine. Uncoordinated pools would spawn
//! `callers x jobs` threads — on an 8-core box, eight concurrent 8-wide
//! sweeps would run 64 compute threads. [`ConcurrencyBudget`] bounds the
//! total: pools created with [`WorkerPool::with_budget`] share a token pot,
//! and each `run` call spawns an *extra* worker only when it can take a
//! token. Tokens are only ever `try`-acquired — never waited on — and the
//! calling thread always executes work inline without holding a token, so
//! every caller is guaranteed progress and no interleaving of concurrent
//! submissions can deadlock, even with a zero-token budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared pot of worker tokens bounding the total number of *extra*
/// compute threads across every pool (and thus every concurrent sweep)
/// attached to it.
///
/// The pot is only ever polled (`try_acquire`), never blocked on: a caller
/// that finds the pot empty simply runs its work inline on its own thread.
/// That makes the budget a throughput bound, not a scheduling gate — it can
/// never introduce a deadlock, and a zero-token budget degrades every
/// attached pool to a serial run.
#[derive(Debug)]
pub struct ConcurrencyBudget {
    tokens: Mutex<usize>,
}

impl ConcurrencyBudget {
    /// A budget of `tokens` extra worker threads shared by every pool that
    /// attaches to it.
    #[must_use]
    pub fn new(tokens: usize) -> Arc<Self> {
        Arc::new(Self {
            tokens: Mutex::new(tokens),
        })
    }

    /// Takes one token if any are free. Never blocks.
    fn try_acquire(&self) -> bool {
        let mut tokens = self.tokens.lock().expect("budget mutex poisoned");
        if *tokens > 0 {
            *tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one token to the pot.
    fn release(&self) {
        *self.tokens.lock().expect("budget mutex poisoned") += 1;
    }

    /// Tokens currently free (for tests and stats; racy by nature).
    #[must_use]
    pub fn available(&self) -> usize {
        *self.tokens.lock().expect("budget mutex poisoned")
    }
}

/// Releases a budget token when dropped, so a panicking worker cannot leak
/// its token out of the pot.
struct BudgetToken<'a>(&'a ConcurrencyBudget);

impl Drop for BudgetToken<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A fixed-width pool of scoped worker threads.
///
/// The pool holds no threads between runs — each [`WorkerPool::run`] call
/// spawns its workers inside a `std::thread::scope`, which guarantees they
/// are joined before the call returns (even when a task panics). All state
/// a `run` call touches is local to the call (plus the optional shared
/// [`ConcurrencyBudget`], which is only polled), so one pool — or many
/// pools over one budget — can be driven from any number of threads
/// concurrently.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    jobs: usize,
    budget: Option<Arc<ConcurrencyBudget>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl WorkerPool {
    /// Creates a pool of `jobs` workers. `0` is clamped to `1` so a
    /// misparsed `--jobs` flag degrades to a serial run instead of a hang.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            budget: None,
        }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        Self::new(default_jobs())
    }

    /// Creates a pool of up to `jobs` workers whose threads beyond the
    /// calling one are bounded by the shared `budget`. Concurrent `run`
    /// calls across every pool attached to the budget spawn at most
    /// `budget` extra threads in total; the rest of the work runs inline on
    /// the callers' own threads.
    #[must_use]
    pub fn with_budget(jobs: usize, budget: Arc<ConcurrencyBudget>) -> Self {
        Self {
            jobs: jobs.max(1),
            budget: Some(budget),
        }
    }

    /// Number of workers the pool runs with.
    #[must_use]
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `task` to every index in `0..num_items` and returns the
    /// results in index order.
    ///
    /// With one worker (or one item) this is a plain serial map — no threads
    /// are spawned, so `jobs = 1` is the reference the parallel path must
    /// match. With more, the calling thread and up to `jobs - 1` spawned
    /// workers race on an atomic cursor for the next index; the indexed
    /// reassembly keeps the output identical either way. Budgeted pools may
    /// spawn fewer extra workers (or none) when the shared pot is drained —
    /// the caller always participates, so the call completes regardless.
    ///
    /// # Panics
    ///
    /// If `task` panics for any index, the panic is propagated to the caller
    /// after the remaining workers finish — the scope always joins every
    /// worker, so a poisoned cell can never deadlock the run.
    pub fn run<T, F>(&self, num_items: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let jobs = self.jobs.min(num_items);
        if jobs <= 1 {
            return (0..num_items).map(task).collect();
        }
        let cursor = AtomicUsize::new(0);
        let task = &task;
        let drain = |produced: &mut Vec<(usize, T)>| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= num_items {
                break;
            }
            produced.push((i, task(i)));
        };
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(num_items).collect();
        std::thread::scope(|scope| {
            // The calling thread is worker zero; the other `jobs - 1`
            // workers spawn only if the shared budget (when present) has
            // tokens left. Tokens ride a drop guard inside each worker so a
            // panicking task still returns its token.
            let drain = &drain;
            let workers: Vec<_> = (1..jobs)
                .filter_map(|_| {
                    let token: Option<&ConcurrencyBudget> = match &self.budget {
                        Some(budget) => {
                            if !budget.try_acquire() {
                                return None;
                            }
                            Some(budget.as_ref())
                        }
                        None => None,
                    };
                    Some(scope.spawn(move || {
                        let _token = token.map(BudgetToken);
                        let mut produced = Vec::new();
                        drain(&mut produced);
                        produced
                    }))
                })
                .collect();
            // Participate inline, but defer a panic of our own share until
            // every spawned worker is joined: unwinding mid-scope would
            // leave panicked handles for the scope to join during the
            // unwind, and a second captured panic there would escalate to a
            // process abort.
            let mut own = Vec::new();
            let mut first_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain(&mut own);
            }))
            .err();
            for (i, value) in own {
                slots[i] = Some(value);
            }
            for worker in workers {
                match worker.join() {
                    Ok(pairs) => {
                        for (i, value) in pairs {
                            slots[i] = Some(value);
                        }
                    }
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index in 0..num_items is claimed exactly once"))
            .collect()
    }
}

/// The machine's available parallelism, or 1 if it cannot be queried.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_cells_still_orders_results() {
        // 8 workers racing for 3 cells: 5 workers find the cursor exhausted
        // and return empty-handed; the output order must not care.
        let pool = WorkerPool::new(8);
        let out = pool.run(3, |i| format!("cell-{i}"));
        assert_eq!(out, vec!["cell-0", "cell-1", "cell-2"]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_items_returns_empty() {
        assert!(WorkerPool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize| (i as f64).sqrt() * 7.0;
        assert_eq!(WorkerPool::new(1).run(64, f), WorkerPool::new(7).run(64, f));
    }

    #[test]
    fn panicking_cell_propagates_without_deadlocking_the_join() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::new(4).run(32, |i| {
                if i == 5 {
                    panic!("cell 5 is poisoned");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        // The panic surfaced (no deadlock, no swallowed error) and the other
        // workers drained the remaining cells before the join completed.
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn two_panicking_cells_still_propagate_instead_of_aborting() {
        // Regression: re-raising the first panic before joining the other
        // workers would hand the scope a second captured panic during
        // unwind — a panic-inside-panic, which aborts the process.
        let result = catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::new(4).run(16, |i| {
                if i == 2 || i == 9 {
                    panic!("cell {i} is poisoned");
                }
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(WorkerPool::with_available_parallelism().jobs() >= 1);
        assert!(WorkerPool::default().jobs() >= 1);
    }

    #[test]
    fn zero_token_budget_degrades_to_inline_execution() {
        // With an empty pot nothing spawns, the caller does all the work,
        // and the call still completes with identical output — the property
        // that makes the budget deadlock-free by construction.
        let budget = ConcurrencyBudget::new(0);
        let pool = WorkerPool::with_budget(8, Arc::clone(&budget));
        assert_eq!(
            pool.run(16, |i| i * 2),
            (0..16).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn budget_tokens_are_returned_after_a_run_even_on_panic() {
        let budget = ConcurrencyBudget::new(3);
        let pool = WorkerPool::with_budget(4, Arc::clone(&budget));
        let _ = pool.run(64, |i| i);
        assert_eq!(budget.available(), 3, "tokens leaked by a clean run");
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 7 {
                    panic!("poisoned");
                }
                i
            })
        }));
        assert!(result.is_err());
        assert_eq!(budget.available(), 3, "tokens leaked by a panicking run");
    }

    /// The multi-caller stress test the serving layer depends on: two
    /// callers drive budgeted pools concurrently. On the pre-budget pool
    /// this scenario oversubscribed the machine (each caller spawned its
    /// full `jobs` complement, so the peak thread count below would hit
    /// `2 x jobs` and the bound assertion panics); a naive blocking token
    /// acquire would deadlock with both callers parked on an empty pot.
    /// The budgeted pool must complete, stay correct, and never exceed
    /// `callers + tokens` live workers.
    #[test]
    fn two_concurrent_callers_share_the_budget_without_deadlock_or_oversubscription() {
        const TOKENS: usize = 2;
        const CALLERS: usize = 2;
        let budget = ConcurrencyBudget::new(TOKENS);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let task = |i: usize| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            // Hold the worker long enough that the two sweeps genuinely
            // overlap and contend for tokens.
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            i * i
        };
        let expected: Vec<usize> = (0..40).map(|i| i * i).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    let pool = WorkerPool::with_budget(6, Arc::clone(&budget));
                    scope.spawn(move || pool.run(40, task))
                })
                .collect();
            for handle in handles {
                assert_eq!(handle.join().expect("caller panicked"), expected);
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= CALLERS + TOKENS,
            "budget oversubscribed: peak {} workers > {} callers + {} tokens",
            peak.load(Ordering::SeqCst),
            CALLERS,
            TOKENS
        );
        assert_eq!(budget.available(), TOKENS);
    }

    #[test]
    fn one_pool_is_safe_to_share_across_threads() {
        // A single pool value (not just a budget) driven by concurrent
        // submitters: every submission must come back correct and in index
        // order — the property `spade-serve` relies on when many request
        // handlers share one pool.
        let pool = WorkerPool::with_budget(4, ConcurrencyBudget::new(2));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|caller| {
                    let pool = &pool;
                    scope.spawn(move || pool.run(25, move |i| caller * 1000 + i))
                })
                .collect();
            for (caller, handle) in handles.into_iter().enumerate() {
                let expected: Vec<usize> = (0..25).map(|i| caller * 1000 + i).collect();
                assert_eq!(handle.join().expect("caller panicked"), expected);
            }
        });
    }
}
