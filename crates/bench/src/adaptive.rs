//! Adaptive design-space exploration: roofline lower-bound screening plus
//! successive halving over growing drive-frame prefixes.
//!
//! The exhaustive sweep simulates every `(configuration, dataflow, frame)`
//! cell. On the enlarged buffer-split × banking grid
//! ([`super::SweepAxes::enlarged`]) that is ~100× the legacy cell count, and
//! almost all of it is provably wasted: most configurations are dominated by
//! a handful of good designs before a single cycle is simulated. This module
//! spends that insight in two stages:
//!
//! 1. **Roofline screen.** For every SPADE cell a per-frame *lower bound* on
//!    latency and energy is computed from the layer workload counts alone
//!    (no simulation): per layer, the MXU streaming cycles `r·ch_tiles`, the
//!    exact gather/scatter bank-conflict stall, the weight-load floor
//!    `k·ch_tiles·num_tiles·pe_rows` (using the exact
//!    [`ActiveTileManager::plan_for_counts`] tile plan — weight reuse can
//!    only re-load tiles, never skip them), and the 16-cycle rule-generation
//!    floor, all maxed against the exact DRAM-interface cycles. Energy is
//!    the exact MAC/SRAM/DRAM activity energy plus leakage at the bound
//!    cycle count (leakage is monotone in cycles, so the bound is sound).
//!    A small *seed* set — the Pareto frontier of the bounds — plus every
//!    baseline cell is fully simulated; any cell whose bound is dominated
//!    by a simulated cell is screened out.
//! 2. **Successive halving.** Survivors are simulated on a 1-frame prefix
//!    of the drive, their bound refined (exact prefix + bound suffix), and
//!    re-screened; the prefix doubles until the full drive is reached.
//!    Cheap frames kill most survivors early; the few that reach the last
//!    rung have simulated every frame and are emitted through the same
//!    `spade_cell` constructor as the exhaustive path.
//!
//! **Exactness.** The screen only ever discards a cell `c` when a *fully
//! simulated* cell `s` dominates `bound(c)`. Since `bound(c) ≤ true(c)`
//! componentwise and domination is transitive, `s` also dominates `true(c)`
//! — so `c` is not on the exhaustive frontier, and anything `true(c)` would
//! have dominated is dominated by `s` too. Surviving cells are built from
//! per-frame simulations in frame order through the shared constructors, so
//! the adaptive frontier is *byte-identical* to the exhaustive one — pinned
//! by `tests/dse_adaptive.rs` across scenarios, `--jobs`, and `--delta`.
//! Exact frontier ties are never screened (domination requires a strict
//! inequality), exactly as [`super::pareto_frontier`] keeps them all.
//!
//! **Determinism.** Every pool fan-out is indexed over a canonically ordered
//! work-list and reassembled by index; all screening decisions are made
//! serially on the assembled vectors. No map iteration, no wall clock: the
//! result is bit-identical for any worker count.

use super::{compute_cell, pareto_frontier, spade_cell, CellKind, DseCell, DseParams, SweepPlan};
use crate::pool::WorkerPool;
use crate::workload::{simulate_on, ModelRun};
use spade_core::{
    AcceleratorReport, ActiveTileManager, NetworkPerf, SpadeAccelerator, SpadeConfig,
    ENCODER_MXU_UTILIZATION, GATHER_SCATTER_LANES,
};
use spade_sim::EnergyModel;

/// How the adaptive explorer spent its cell budget. The exhaustive path
/// reports `cells_screened = 0` and every cell simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScreenCounters {
    /// Cells discarded on a roofline bound (stage 0) or a refined bound
    /// (a halving rung) without simulating their full drive.
    pub cells_screened: usize,
    /// Cells whose full drive was simulated.
    pub cells_simulated: usize,
    /// Drive frames the screened cells never simulated, summed.
    pub frames_saved: usize,
}

/// Per-layer workload counts, extracted once per (model, frame) — everything
/// the roofline bound needs, without touching coordinate arrays again.
struct LayerStat {
    /// Raw active input / output pillar counts (pre-clamp, as
    /// [`ActiveTileManager::plan_for_counts`] expects them).
    a_len: usize,
    q_len: usize,
    in_ch: usize,
    out_ch: usize,
    taps: usize,
    /// Rules, clamped to ≥ 1 exactly as `schedule_layer` clamps them.
    r: u64,
    /// Exact DRAM bytes of the layer (ATM moves every element once).
    dram_bytes: u64,
}

/// One drive frame's aggregate counts for a model.
struct FrameStat {
    layers: Vec<LayerStat>,
    encoder_macs: u64,
    /// Exact totals mirrored from `NetworkPerf::from_layers` — these are
    /// configuration-independent, so the bound's energy activity terms are
    /// *equalities*, not bounds.
    total_macs: u64,
    total_sram_bytes: u64,
    total_dram_bytes: u64,
}

fn frame_stat(run: &ModelRun) -> FrameStat {
    let mut layers = Vec::with_capacity(run.workloads.len());
    let mut total_macs = run.encoder_macs;
    let mut total_sram = 0u64;
    let mut total_dram = 0u64;
    for w in &run.workloads {
        let a_len = w.input_coords.len();
        let q_len = w.output_coords.len();
        let a = a_len.max(1) as u64;
        let q = q_len.max(1) as u64;
        let r = w.rules.max(1);
        let c = w.spec.in_channels as u64;
        let m = w.spec.out_channels as u64;
        let k = w.spec.kernel.num_taps() as u64;
        // The tile plan clamps channels to ≥ 1 for its byte counts.
        let cp = (w.spec.in_channels.max(1)) as u64;
        let mp = (w.spec.out_channels.max(1)) as u64;
        let dram_bytes = a * cp + k * cp * mp + q * mp;
        total_macs += r * c * m;
        total_sram += r * (c + 4 * m) + a * c + q * m;
        total_dram += dram_bytes;
        layers.push(LayerStat {
            a_len,
            q_len,
            in_ch: w.spec.in_channels,
            out_ch: w.spec.out_channels,
            taps: w.spec.kernel.num_taps(),
            r,
            dram_bytes,
        });
    }
    FrameStat {
        layers,
        encoder_macs: run.encoder_macs,
        total_macs,
        total_sram_bytes: total_sram,
        total_dram_bytes: total_dram,
    }
}

/// Appends `x` to `pool` if absent and returns its index — tiny linear-scan
/// interner for the handful of distinct values each swept axis takes.
fn intern<T: PartialEq + Copy>(pool: &mut Vec<T>, x: T) -> usize {
    pool.iter().position(|&y| y == x).unwrap_or_else(|| {
        pool.push(x);
        pool.len() - 1
    })
}

/// Class indices of one configuration under the four independent axes the
/// per-layer bound arithmetic depends on. A swept grid *crosses* the axes,
/// so the class counts stay tiny while configurations multiply: the
/// enlarged grid's 2 184 configurations collapse onto 26 buffer geometries
/// × 3 PE shapes × 7 bankings × 2 DRAM widths.
struct ConfigClasses {
    /// `(buf_in_kib, buf_out_kib)` class — selects the `num_tiles` table.
    atm: usize,
    /// `(pe_rows, pe_cols)` class — selects `ch_tiles` and encoder tables.
    pe: usize,
    /// `min(sram_banks, lanes)` class — selects the bank-stall table.
    banks: usize,
    /// `dram_bytes_per_cycle` class — selects the DRAM-cycles table.
    bpc: usize,
}

/// Per-model lookup tables: one flat `(frame, layer)` entry per drive layer
/// (frame `f` spans `offsets[f]..offsets[f + 1]`), with the
/// configuration-dependent term of each bound axis tabulated per class.
struct ModelTables {
    offsets: Vec<usize>,
    /// Rules per layer, clamped ≥ 1 (the MXU streaming term's multiplier).
    r: Vec<u64>,
    taps: Vec<u64>,
    /// Exact [`ActiveTileManager::plan_for_counts`] tile count, per ATM
    /// class — weight reuse can only re-load tiles, never skip them, so
    /// this is the weight-load floor's tile multiplier.
    num_tiles: Vec<Vec<u64>>,
    /// `ceil(in_ch / pe_rows) · ceil(out_ch / pe_cols)` per PE class.
    ch_tiles: Vec<Vec<u64>>,
    /// Exact gather/scatter bank-conflict stall `r·(lanes − banks)/lanes`
    /// per banking class — banking stalls do not depend on the dataflow
    /// schedule.
    // unit: cycles
    stall: Vec<Vec<u64>>,
    /// Exact DRAM-interface cycles `ceil(dram_bytes / bpc)` per DRAM class.
    dram_cycles: Vec<Vec<u64>>,
    /// Encoder MXU cycles per PE class and frame.
    encoder_cycles: Vec<Vec<u64>>,
    /// Per-frame `(macs, sram_bytes, dram_bytes)` totals for the energy
    /// activity terms — configuration-independent, so they are *equalities*.
    totals: Vec<(u64, u64, u64)>,
}

/// Roofline-bound evaluator over a configuration grid: precomputes each
/// bound axis once per distinct class and assembles any configuration's
/// per-frame bound from table lookups. The lookup path evaluates exactly
/// the arithmetic of `schedule_layer` / `NetworkPerf::from_layers` with the
/// dataflow-dependent terms dropped — term by term identical to evaluating
/// the closed form per configuration, so cached and uncached bounds are
/// bit-equal.
struct BoundCtx {
    classes: Vec<ConfigClasses>,
    models: Vec<ModelTables>,
}

impl BoundCtx {
    fn new(configs: &[SpadeConfig], stats_by_model: &[Vec<FrameStat>]) -> Self {
        let lanes = u64::from(GATHER_SCATTER_LANES);
        let mut atms: Vec<(u64, u64)> = Vec::new();
        let mut pes: Vec<(usize, usize)> = Vec::new();
        let mut banks: Vec<u64> = Vec::new();
        let mut bpcs: Vec<f64> = Vec::new();
        let classes = configs
            .iter()
            .map(|c| ConfigClasses {
                atm: intern(&mut atms, (c.buf_in_kib, c.buf_out_kib)),
                pe: intern(&mut pes, (c.pe_rows, c.pe_cols)),
                banks: intern(&mut banks, u64::from(c.sram_banks).min(lanes)),
                bpc: intern(&mut bpcs, c.dram_bytes_per_cycle),
            })
            .collect();
        let models = stats_by_model
            .iter()
            .map(|frames| {
                let mut offsets = vec![0usize];
                let mut r = Vec::new();
                let mut taps = Vec::new();
                for fs in frames {
                    for l in &fs.layers {
                        r.push(l.r);
                        taps.push(l.taps as u64);
                    }
                    offsets.push(r.len());
                }
                let layers = || frames.iter().flat_map(|fs| fs.layers.iter());
                ModelTables {
                    num_tiles: atms
                        .iter()
                        .map(|&(buf_in, buf_out)| {
                            let atm = ActiveTileManager::new(buf_in, buf_out);
                            layers()
                                .map(|l| {
                                    atm.plan_for_counts(l.a_len, l.q_len, l.in_ch, l.out_ch, l.taps)
                                        .num_tiles as u64
                                })
                                .collect()
                        })
                        .collect(),
                    ch_tiles: pes
                        .iter()
                        .map(|&(rows, cols)| {
                            layers()
                                .map(|l| {
                                    (l.in_ch.div_ceil(rows) as u64)
                                        * (l.out_ch.div_ceil(cols) as u64)
                                })
                                .collect()
                        })
                        .collect(),
                    stall: banks
                        .iter()
                        .map(|&b| layers().map(|l| l.r * (lanes - b) / lanes).collect())
                        .collect(),
                    dram_cycles: bpcs
                        .iter()
                        .map(|&bpc| {
                            layers()
                                .map(|l| (l.dram_bytes as f64 / bpc).ceil() as u64)
                                .collect()
                        })
                        .collect(),
                    encoder_cycles: pes
                        .iter()
                        .map(|&(rows, cols)| {
                            frames
                                .iter()
                                .map(|fs| {
                                    (fs.encoder_macs as f64
                                        / ((rows * cols).max(1) as f64 * ENCODER_MXU_UTILIZATION))
                                        .ceil() as u64
                                })
                                .collect()
                        })
                        .collect(),
                    totals: frames
                        .iter()
                        .map(|fs| (fs.total_macs, fs.total_sram_bytes, fs.total_dram_bytes))
                        .collect(),
                    offsets,
                    r,
                    taps,
                }
            })
            .collect();
        BoundCtx { classes, models }
    }

    /// Lower bound on each frame's `(latency_ms, energy_mj)` under
    /// `configs[config_idx]`, valid for *every* dataflow setting (reuse
    /// inefficiency and conservative tiling only ever add weight-load
    /// cycles; scatter exposure only adds scatter cycles). Per layer the
    /// compute floor `r·ch_tiles + stall + taps·ch_tiles·num_tiles·pe_rows +
    /// 16` (16 = the exposed rule-generation clamp) is maxed against the
    /// exact DRAM-interface cycles. MAC/SRAM/DRAM activity energy is
    /// workload-exact; only the leakage term sees the bound cycle count,
    /// and leakage is monotone in cycles — sound.
    fn per_frame(
        &self,
        config_idx: usize,
        model_idx: usize,
        config: &SpadeConfig,
    ) -> Vec<(f64, f64)> {
        let cls = &self.classes[config_idx];
        let md = &self.models[model_idx];
        let energy = EnergyModel::asic_32nm();
        let pe_rows = config.pe_rows as u64;
        let num_tiles = &md.num_tiles[cls.atm];
        let ch_tiles = &md.ch_tiles[cls.pe];
        let stall = &md.stall[cls.banks];
        let dram = &md.dram_cycles[cls.bpc];
        (0..md.offsets.len() - 1)
            .map(|f| {
                let mut cycles: u64 = 0;
                for i in md.offsets[f]..md.offsets[f + 1] {
                    let compute_floor = md.r[i] * ch_tiles[i]
                        + stall[i]
                        + md.taps[i] * ch_tiles[i] * num_tiles[i] * pe_rows
                        + 16;
                    cycles += compute_floor.max(dram[i]);
                }
                let total_cycles = cycles + md.encoder_cycles[cls.pe][f];
                let (macs, sram_bytes, dram_bytes) = md.totals[f];
                let latency_ms = total_cycles as f64 / (config.freq_ghz * 1e9) * 1e3;
                let energy_mj = energy
                    .breakdown(macs, sram_bytes, dram_bytes, total_cycles, config.freq_ghz)
                    .total_mj();
                (latency_ms, energy_mj)
            })
            .collect()
    }
}

/// Per-frame roofline lower bounds `(latency_ms, energy_mj)` of `config`
/// over a drive's model runs — the quantity the adaptive screen prunes on,
/// exposed so the soundness property (`bound ≤ simulated`, for every frame,
/// configuration, dataflow setting, and scenario) is testable from outside
/// the explorer. Runs through the same `BoundCtx` lookup path the
/// explorer uses, so the tested bound *is* the screening bound.
#[must_use]
pub fn roofline_bound(config: &SpadeConfig, runs: &[ModelRun]) -> Vec<(f64, f64)> {
    let stats: Vec<FrameStat> = runs.iter().map(frame_stat).collect();
    BoundCtx::new(std::slice::from_ref(config), &[stats]).per_frame(0, 0, config)
}

/// Roofline bound of one SPADE cell: per-frame `(latency, energy)` lower
/// bounds plus their drive mean alongside the cell's exact area.
struct CellBound {
    per_frame: Vec<(f64, f64)>,
    mean: [f64; 3],
}

/// A SPADE cell still alive in the halving loop, with the frames simulated
/// so far (in frame order) and their exact running sums.
struct Survivor {
    /// Position into the `spade` item-index list.
    pos: usize,
    perfs: Vec<NetworkPerf>,
    prefix_lat: f64,
    prefix_energy: f64,
}

/// At most this many bound-frontier cells are seeded (fully simulated up
/// front) per workload; seeding is an efficiency lever only — an unseeded
/// frontier cell simply survives the halving rungs to full simulation.
const SEED_CAP: usize = 64;

/// Explores the planned grid adaptively. Returns the assembled cell vector
/// in the plan's canonical item order — fully simulated cells byte-identical
/// to [`super::compute_cell`]'s output, screened cells carrying their bound
/// values with `simulated = false` — plus the budget counters.
pub(super) fn explore(
    params: &DseParams,
    pool: &WorkerPool,
    plan: &SweepPlan,
) -> (Vec<DseCell>, ScreenCounters) {
    let n_frames = plan.num_frames.max(1);
    let n_models = params.models.len();
    let run_cell = |item_idx: usize| {
        compute_cell(
            &plan.items[item_idx],
            &params.models,
            &plan.configs,
            &plan.runs_by_model,
            &plan.overlap_by_model,
            &plan.delta_by_model,
        )
    };

    // Workload counts per (model, frame) — the bound's only input.
    let stats_by_model: Vec<Vec<FrameStat>> = plan
        .runs_by_model
        .iter()
        .map(|runs| runs.iter().map(frame_stat).collect())
        .collect();
    // Mean DRAM traffic is configuration-independent; computed with the
    // same operation order as `mean_cell` so screened cells export the
    // exact value.
    let mean_dram_by_model: Vec<f64> = stats_by_model
        .iter()
        .map(|frames| {
            let n = frames.len().max(1) as f64;
            frames
                .iter()
                .map(|f| f.total_dram_bytes as f64 / (1024.0 * 1024.0))
                .sum::<f64>()
                / n
        })
        .collect();

    // Split the canonical work-list: SPADE cells are screened adaptively,
    // every baseline cell is simulated outright (they are a small minority
    // — the insensitive-axis collapses already shrank them — and they seed
    // the reference set).
    let mut spade: Vec<usize> = Vec::new();
    let mut others: Vec<usize> = Vec::new();
    for (i, item) in plan.items.iter().enumerate() {
        match item.kind {
            CellKind::Spade(_) => spade.push(i),
            _ => others.push(i),
        }
    }
    let spade_opts = |pos: usize| match plan.items[spade[pos]].kind {
        CellKind::Spade(opts) => opts,
        _ => unreachable!("`spade` holds only SPADE items"),
    };

    let mut cells: Vec<Option<DseCell>> = (0..plan.items.len()).map(|_| None).collect();
    let mut refs_by_model: Vec<Vec<[f64; 3]>> = vec![Vec::new(); n_models];

    let baseline_cells = pool.run(others.len(), |i| run_cell(others[i]));
    for (&item_idx, cell) in others.iter().zip(baseline_cells) {
        refs_by_model[plan.items[item_idx].model_idx].push([
            cell.mean_latency_ms,
            cell.mean_energy_mj,
            cell.area_mm2,
        ]);
        cells[item_idx] = Some(cell);
    }

    // Stage 0a — per-frame roofline bounds, computed once per
    // (configuration, model) pair: the bound is dataflow-independent, so
    // the dataflow variants of a design point share one `CellBound`.
    // `pair_of` maps each SPADE position to its pair slot (first-appearance
    // order, so the fan-out below is canonically indexed).
    let mut pair_slot: Vec<usize> = vec![usize::MAX; plan.configs.len() * n_models];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let pair_of: Vec<usize> = spade
        .iter()
        .map(|&i| {
            let item = &plan.items[i];
            let key = item.model_idx * plan.configs.len() + item.config_idx;
            if pair_slot[key] == usize::MAX {
                pair_slot[key] = pairs.len();
                pairs.push((item.config_idx, item.model_idx));
            }
            pair_slot[key]
        })
        .collect();
    let ctx = BoundCtx::new(&plan.configs, &stats_by_model);
    let pair_bounds: Vec<CellBound> = pool.run(pairs.len(), |i| {
        let (config_idx, model_idx) = pairs[i];
        let config = &plan.configs[config_idx];
        let per_frame = ctx.per_frame(config_idx, model_idx, config);
        let n = per_frame.len().max(1) as f64;
        let mean = [
            per_frame.iter().map(|b| b.0).sum::<f64>() / n,
            per_frame.iter().map(|b| b.1).sum::<f64>() / n,
            AcceleratorReport::for_spade("SPADE", config).total_mm2(),
        ];
        CellBound { per_frame, mean }
    });
    let bound_of = |p: usize| &pair_bounds[pair_of[p]];

    // Stage 0b — seed the reference set with the Pareto frontier of the
    // bounds (per workload: cells of different models never compete), fully
    // simulated. A cell can only be screened by a *simulated* reference, so
    // without seeds nothing SPADE-shaped could ever prune SPADE cells.
    let mut is_seed = vec![false; spade.len()];
    for model_idx in 0..n_models {
        let members: Vec<usize> = (0..spade.len())
            .filter(|&p| plan.items[spade[p]].model_idx == model_idx)
            .collect();
        let points: Vec<[f64; 3]> = members.iter().map(|&p| bound_of(p).mean).collect();
        let mut seeded = 0usize;
        for (&p, keep) in members.iter().zip(pareto_frontier(&points)) {
            if keep && seeded < SEED_CAP {
                is_seed[p] = true;
                seeded += 1;
            }
        }
    }
    let seeds: Vec<usize> = (0..spade.len()).filter(|&p| is_seed[p]).collect();
    let seed_cells = pool.run(seeds.len(), |i| run_cell(spade[seeds[i]]));
    for (&p, cell) in seeds.iter().zip(seed_cells) {
        refs_by_model[plan.items[spade[p]].model_idx].push([
            cell.mean_latency_ms,
            cell.mean_energy_mj,
            cell.area_mm2,
        ]);
        cells[spade[p]] = Some(cell);
    }

    // Simulated references are always finite, so the plain domination test
    // (no finiteness guard) matches `pareto_frontier`'s exactly.
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let mut cells_screened = 0usize;
    let mut frames_saved = 0usize;
    // Builds the exported cell of a screened design point: the shared
    // constructor for identity fields, the refined bound for the metric
    // columns, `simulated = false` so the frontier and the duel tally skip
    // it.
    let mut screen = |cells: &mut Vec<Option<DseCell>>,
                      pos: usize,
                      frames_done: usize,
                      bound_lat: f64,
                      bound_energy: f64| {
        let item = &plan.items[spade[pos]];
        let mut cell = spade_cell(
            params.models[item.model_idx],
            &plan.configs[item.config_idx],
            spade_opts(pos),
            &[],
            plan.overlap_by_model[item.model_idx],
        );
        cell.mean_latency_ms = bound_lat;
        cell.mean_energy_mj = bound_energy;
        cell.mean_dram_mib = mean_dram_by_model[item.model_idx];
        let (frames_delta, delta_speedup) = plan.delta_by_model[item.model_idx];
        cell.frames_delta_executed = frames_delta;
        cell.delta_speedup = delta_speedup;
        cell.simulated = false;
        cells[spade[pos]] = Some(cell);
        cells_screened += 1;
        frames_saved += n_frames - frames_done;
    };

    // Stage 0c — the screen itself: discard every non-seed cell whose bound
    // is dominated by a simulated reference.
    let mut active: Vec<Survivor> = Vec::new();
    for p in 0..spade.len() {
        if is_seed[p] {
            continue;
        }
        let model_idx = plan.items[spade[p]].model_idx;
        if refs_by_model[model_idx]
            .iter()
            .any(|r| dominates(r, &bound_of(p).mean))
        {
            screen(&mut cells, p, 0, bound_of(p).mean[0], bound_of(p).mean[1]);
        } else {
            active.push(Survivor {
                pos: p,
                perfs: Vec::new(),
                prefix_lat: 0.0,
                prefix_energy: 0.0,
            });
        }
    }

    // Stage 1 — successive halving: simulate survivors on a growing frame
    // prefix, re-screen with the refined bound (exact prefix + bound
    // suffix), double the prefix. Rungs are synchronous: each fans out over
    // the pool in canonical (survivor, frame) order and decides serially.
    let mut prefix = 1usize;
    while !active.is_empty() {
        let rung = prefix.min(n_frames);
        let units: Vec<(usize, usize)> = active
            .iter()
            .enumerate()
            .flat_map(|(s, surv)| (surv.perfs.len()..rung).map(move |f| (s, f)))
            .collect();
        let perfs = pool.run(units.len(), |u| {
            let (s, f) = units[u];
            let item = &plan.items[spade[active[s].pos]];
            let acc = SpadeAccelerator::with_options(
                plan.configs[item.config_idx],
                spade_opts(active[s].pos),
            );
            simulate_on(&acc, &plan.runs_by_model[item.model_idx][f])
        });
        // Frames arrive in (survivor, frame) order, so pushing in the same
        // iteration order keeps each survivor's perfs frame-sorted.
        for (&(s, _), perf) in units.iter().zip(perfs) {
            active[s].prefix_lat += perf.latency_ms;
            active[s].prefix_energy += perf.energy.total_mj();
            active[s].perfs.push(perf);
        }
        if rung == n_frames {
            // Every surviving cell has simulated the full drive: emit it
            // through the shared constructor — byte-identical to the
            // exhaustive path.
            for surv in active.drain(..) {
                let item = &plan.items[spade[surv.pos]];
                let mut cell = spade_cell(
                    params.models[item.model_idx],
                    &plan.configs[item.config_idx],
                    spade_opts(surv.pos),
                    &surv.perfs,
                    plan.overlap_by_model[item.model_idx],
                );
                let (frames_delta, delta_speedup) = plan.delta_by_model[item.model_idx];
                cell.frames_delta_executed = frames_delta;
                cell.delta_speedup = delta_speedup;
                cells[spade[surv.pos]] = Some(cell);
            }
            break;
        }
        let n = n_frames as f64;
        let mut still = Vec::with_capacity(active.len());
        for surv in active.drain(..) {
            let bound = bound_of(surv.pos);
            let suffix_lat: f64 = bound.per_frame[rung..].iter().map(|b| b.0).sum();
            let suffix_energy: f64 = bound.per_frame[rung..].iter().map(|b| b.1).sum();
            let refined = [
                (surv.prefix_lat + suffix_lat) / n,
                (surv.prefix_energy + suffix_energy) / n,
                bound.mean[2],
            ];
            let model_idx = plan.items[spade[surv.pos]].model_idx;
            if refs_by_model[model_idx]
                .iter()
                .any(|r| dominates(r, &refined))
            {
                screen(
                    &mut cells,
                    surv.pos,
                    surv.perfs.len(),
                    refined[0],
                    refined[1],
                );
            } else {
                still.push(surv);
            }
        }
        active = still;
        prefix *= 2;
    }

    let cells: Vec<DseCell> = cells
        .into_iter()
        .map(|c| c.expect("every work-list item is either simulated or screened"))
        .collect();
    let counters = ScreenCounters {
        cells_screened,
        cells_simulated: cells.len() - cells_screened,
        frames_saved,
    };
    (cells, counters)
}
