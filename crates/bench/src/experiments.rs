//! One function per table / figure of the paper's evaluation, plus the
//! cross-cutting `accelerators` comparison and the `dse` design-space sweep.
//!
//! Each function returns the formatted series it regenerates (and is also
//! printed by the `spade-experiments` binary and the Criterion benches).
//! `ARCHITECTURE.md` maps every paper figure/table to its experiment and
//! bench file.

use crate::workload::{
    model_run, model_run_with_pruning, simulate_on, simulate_on_spade, WorkloadScale,
};
use spade_baselines::{DenseAccelerator, Platform, PointAccModel, SpConv2dAccelerator};
use spade_core::{Accelerator, AcceleratorReport, DataflowOptions, SpadeAccelerator, SpadeConfig};
use spade_nn::rulegen::RuleGenMethod;
use spade_nn::{ModelKind, PruningConfig};
use spade_pointcloud::AccuracyProxy;
use std::fmt::Write as _;

/// Runs one experiment by its identifier (e.g. `"table1"`, `"fig09"`).
/// Returns the formatted output, or `None` for an unknown identifier.
#[must_use]
pub fn run_experiment(id: &str, scale: WorkloadScale) -> Option<String> {
    let out = match id {
        "table1" => table1(scale),
        "fig02b" => fig02b(),
        "fig02c" => fig02c(scale),
        "fig02def" => fig02def(scale),
        "fig05b" => fig05b(),
        "fig06c" => fig06c(),
        "fig08c" => fig08c(scale),
        "fig09" => fig09(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "fig14_15" => fig14_15(scale),
        "accelerators" => accelerators(scale),
        // Parallel output is bit-identical to serial, so the dispatcher can
        // safely use every core; the binary's `--jobs` flag overrides this
        // through its dedicated `dse` path.
        "dse" => dse(scale, crate::pool::default_jobs()),
        _ => return None,
    };
    Some(out)
}

/// All experiment identifiers.
#[must_use]
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "fig02b",
        "fig02c",
        "fig02def",
        "fig05b",
        "fig06c",
        "fig08c",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14_15",
        "accelerators",
        "dse",
    ]
}

/// Design-space exploration: the default configuration sweep (PE dims ×
/// SRAM × frequency × DRAM bandwidth × dataflow) across a multi-frame drive
/// scenario, fanned out over `jobs` worker threads and printed as the
/// Pareto-frontier summary. The output is identical for every `jobs` value
/// (the pool reassembles cells in index order). Use the `spade-experiments`
/// binary's `--jobs`/`--frames`/`--drive-seed`/`--scenario`/`--csv`/`--json`
/// flags to set the worker count, reshape the drive, pick a scripted
/// persistent scenario, or export the full grid.
#[must_use]
pub fn dse(scale: WorkloadScale, jobs: usize) -> String {
    crate::dse::run_dse_with_jobs(&crate::dse::DseParams::default_for(scale), jobs).summary()
}

/// The full accelerator comparison set of Fig. 9/14 — SPADE, DenseAcc,
/// SpConv2D-Acc, and PointAcc — run on every sparse model through the common
/// [`Accelerator`] API. Adding a backend to this table means implementing the
/// trait; the experiment itself never changes.
#[must_use]
pub fn accelerators(scale: WorkloadScale) -> String {
    let cfg = SpadeConfig::high_end();
    let spade = SpadeAccelerator::new(cfg);
    let dense = DenseAccelerator::new(cfg);
    let spconv2d = SpConv2dAccelerator::default();
    let pointacc = PointAccModel::new(cfg);
    let models: [&dyn Accelerator; 4] = [&spade, &dense, &spconv2d, &pointacc];
    let mut s = String::from(
        "Accelerator comparison (HE form factor, all models via the Accelerator trait)\n\
         model | accelerator  | latency ms | Mcycles | DRAM MiB | energy mJ | vs SPADE\n",
    );
    for kind in ModelKind::SPARSE {
        let run = model_run(kind, 111, scale);
        let perfs: Vec<_> = models.iter().map(|acc| simulate_on(*acc, &run)).collect();
        let reference_cycles = perfs[0].total_cycles.max(1);
        for (acc, perf) in models.iter().zip(&perfs) {
            let _ = writeln!(
                s,
                "{:<5} | {:<12} | {:>10.3} | {:>7.2} | {:>8.2} | {:>9.3} | {:>7.2}x",
                kind.name(),
                acc.name(),
                perf.latency_ms,
                perf.total_cycles as f64 / 1e6,
                perf.total_dram_bytes as f64 / (1024.0 * 1024.0),
                perf.energy.total_mj(),
                perf.total_cycles as f64 / reference_cycles as f64,
            );
        }
    }
    s
}

/// Table I: GOPs, computation savings, and proxy accuracy for every model.
#[must_use]
pub fn table1(scale: WorkloadScale) -> String {
    let mut s = String::from(
        "Table I — model zoo (avg GOPs, savings vs dense, proxy accuracy)\n\
         model       | GOPs    | savings | acc-primary | acc-secondary\n",
    );
    for kind in ModelKind::ALL {
        let run = model_run(kind, 11, scale);
        let dense = model_run(kind.dense_baseline(), 11, scale);
        let savings = 1.0 - run.trace.total_macs() as f64 / dense.trace.total_macs() as f64;
        let (base_p, base_s) = kind.baseline_accuracy();
        let coverage = run.trace.foreground_coverage.unwrap_or(1.0);
        let proxy_p = AccuracyProxy::with_finetuning(base_p).estimate_map(coverage);
        let proxy_s = AccuracyProxy::with_finetuning(base_s).estimate_map(coverage);
        let _ = writeln!(
            s,
            "{:<11} | {:>7.2} | {:>6.1}% | {:>11.2} | {:>12.2}",
            kind.name(),
            run.trace.total_gops(),
            savings * 100.0,
            proxy_p,
            proxy_s
        );
    }
    s
}

/// Fig. 2(b): utilisation and bank-conflict rate of a conventional sparse
/// Conv2D accelerator as vector sparsity grows.
#[must_use]
pub fn fig02b() -> String {
    let acc = SpConv2dAccelerator::default();
    let mut s = String::from("Fig 2(b) — SpConv2D-Acc under vector sparsity\nsparsity | utilization | bank-conflict rate\n");
    for (sp, b) in acc.sweep(10) {
        let _ = writeln!(
            s,
            "{:>7.2} | {:>11.3} | {:>18.3}",
            sp, b.utilization, b.bank_conflict_rate
        );
    }
    s
}

/// Fig. 2(c): latency breakdown of PP / SPP1-3 on a GPU platform.
#[must_use]
pub fn fig02c(scale: WorkloadScale) -> String {
    let gpu = Platform::new(spade_baselines::PlatformKind::Gpu2080Ti);
    let mut s = String::from("Fig 2(c) — 2080Ti latency breakdown (ms)\nmodel | conv | mapping | gather | other | total\n");
    for kind in [
        ModelKind::Pp,
        ModelKind::Spp1,
        ModelKind::Spp2,
        ModelKind::Spp3,
    ] {
        let run = model_run(kind, 21, scale);
        let lat = gpu.run(&run.trace);
        let _ = writeln!(
            s,
            "{:<5} | {:>5.2} | {:>7.2} | {:>6.2} | {:>5.2} | {:>5.2}",
            kind.name(),
            lat.conv_ms,
            lat.mapping_ms,
            lat.gather_ms,
            lat.other_ms,
            lat.total_ms()
        );
    }
    s
}

/// Fig. 2(d–f): IOPR per backbone layer for SPP1 / SPP2 / SPP3.
#[must_use]
pub fn fig02def(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 2(d-f) — IOPR per backbone layer\n");
    for kind in [ModelKind::Spp1, ModelKind::Spp2, ModelKind::Spp3] {
        let run = model_run(kind, 31, scale);
        let _ = write!(s, "{}:", kind.name());
        for (name, iopr) in spade_nn::stats::iopr_series(&run.trace) {
            let _ = write!(s, " {name}={iopr:.2}");
        }
        s.push('\n');
    }
    s
}

/// Fig. 5(b): rule-generation cycles of hash table, merge sorter, and RGU as
/// the number of active pillars grows.
#[must_use]
pub fn fig05b() -> String {
    let mut s = String::from("Fig 5(b) — mapping cycles vs active pillars\npillars | hash | sorter | RGU | hash/RGU | sorter/RGU\n");
    for pillars in [1_000usize, 5_000, 10_000, 25_000, 50_000, 100_000] {
        let outputs = pillars * 18 / 10;
        let rules = pillars * 9;
        let hash = RuleGenMethod::HashTable
            .cost(pillars, outputs, rules)
            .cycles;
        let sort = RuleGenMethod::MergeSort
            .cost(pillars, outputs, rules)
            .cycles;
        let rgu = RuleGenMethod::StreamingRgu
            .cost(pillars, outputs, rules)
            .cycles;
        let _ = writeln!(
            s,
            "{:>7} | {:>8} | {:>8} | {:>8} | {:>7.2}x | {:>7.2}x",
            pillars,
            hash,
            sort,
            rgu,
            hash as f64 / rgu as f64,
            sort as f64 / rgu as f64
        );
    }
    s
}

/// Fig. 6(c): DRAM latency of cache-based gather vs. the ATM (RGU+GSU) vs. the
/// ideal, as active pillars grow.
#[must_use]
pub fn fig06c() -> String {
    use spade_sim::{DirectMappedCache, DramModel};
    let mut s = String::from("Fig 6(c) — normalised DRAM latency vs active pillars\npillars | cache-based | RGU+GSU | ideal\n");
    let channels = 64u64;
    for pillars in [2_000u64, 5_000, 10_000, 20_000, 50_000] {
        let bytes = pillars * channels;
        // Ideal: stream everything once.
        let mut ideal_dram = DramModel::lpddr4();
        let ideal = ideal_dram.read_sequential(bytes);
        // SPADE (ATM): also a single sequential pass per tensor.
        let mut spade_dram = DramModel::lpddr4();
        let spade = spade_dram.read_sequential(bytes);
        // Cache-based: 3 passes over the window (one per kernel row) through a
        // 32 KiB direct-mapped cache; misses become random line fills.
        let mut cache = DirectMappedCache::new(32, 64);
        let mut misses = 0u64;
        for pass in 0..3u64 {
            for i in 0..pillars {
                misses += cache.access_range(i * channels + pass * 7 * 64, channels);
            }
        }
        let mut cache_dram = DramModel::lpddr4();
        let cache_cycles = cache_dram.read_random(misses, 64);
        let _ = writeln!(
            s,
            "{:>7} | {:>11.2} | {:>7.2} | {:>5.2}",
            pillars,
            cache_cycles as f64 / ideal as f64,
            spade as f64 / ideal as f64,
            1.0
        );
    }
    s
}

/// Fig. 8(c): overhead reduction from weight grouping (strided conv) and
/// ganged scatter (deconv), measured on SPP2's layers.
#[must_use]
pub fn fig08c(scale: WorkloadScale) -> String {
    let run = model_run(ModelKind::Spp2, 41, scale);
    let cfg = SpadeConfig::high_end();
    let mut s = String::from("Fig 8(c) — dataflow optimisation overhead reduction (SPP2)\nlayer | kind | overhead w/o opt | overhead w/ opt\n");
    for w in &run.workloads {
        if !matches!(
            w.spec.kind,
            spade_nn::ConvKind::SpStConv | spade_nn::ConvKind::SpDeconv
        ) {
            continue;
        }
        let base = spade_core::dataflow::schedule_layer(w, &cfg, &DataflowOptions::all_disabled());
        let opt = spade_core::dataflow::schedule_layer(w, &cfg, &DataflowOptions::all_enabled());
        let ovh = |p: &spade_core::LayerPerf| {
            (p.total_cycles - p.mxu_cycles.min(p.total_cycles)) as f64 / p.total_cycles as f64
        };
        let _ = writeln!(
            s,
            "{:<5} | {:<9} | {:>15.1}% | {:>14.1}%",
            w.spec.name,
            w.spec.kind.to_string(),
            ovh(&base) * 100.0,
            ovh(&opt) * 100.0
        );
    }
    s
}

/// Fig. 9: speedup and energy savings of SPADE (HE and LE) over the platform
/// baselines for every sparse model.
#[must_use]
pub fn fig09(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 9 — SPADE speedup / energy savings vs platforms\nconfig | model | platform | speedup | energy savings\n");
    for (cfg_name, cfg, platforms) in [
        ("HE", SpadeConfig::high_end(), Platform::high_end_set()),
        ("LE", SpadeConfig::low_end(), Platform::low_end_set()),
    ] {
        for kind in ModelKind::SPARSE {
            let run = model_run(kind, 51, scale);
            let spade = simulate_on_spade(&run, cfg);
            for p in &platforms {
                let lat = p.run(&run.trace);
                let speedup = lat.total_ms() / spade.latency_ms;
                let energy_savings = p.energy_mj(&lat) / spade.energy.total_mj();
                let _ = writeln!(
                    s,
                    "{:<6} | {:<5} | {:<9} | {:>6.1}x | {:>9.1}x",
                    cfg_name,
                    kind.name(),
                    p.kind.to_string(),
                    speedup,
                    energy_savings
                );
            }
        }
    }
    s
}

/// Fig. 10: accelerator comparison (area, SRAM, efficiency) and energy savings
/// over the ideal dense accelerator.
#[must_use]
pub fn fig10(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 10 — hardware comparison and energy savings vs DenseAcc\n");
    for (name, cfg) in [
        ("HE", SpadeConfig::high_end()),
        ("LE", SpadeConfig::low_end()),
    ] {
        let spade_rep = AcceleratorReport::for_spade(&format!("SPADE.{name}"), &cfg);
        let dense_rep = AcceleratorReport::for_dense(&format!("DenseAcc.{name}"), &cfg);
        let run = model_run(ModelKind::Spp2, 61, scale);
        let spade_perf = simulate_on_spade(&run, cfg);
        let dense_acc: &dyn Accelerator = &DenseAccelerator::new(cfg);
        let dense_ops = run.trace.dense_macs() as f64 * 2.0;
        let _ = writeln!(
            s,
            "{}: area {:.1} mm2 (dense {:.1}, sparsity support {:.1}%), SRAM {} KiB, peak {:.0} GOPS, {:.0} GOPS/mm2, eff GOPS/W {:.0}",
            spade_rep.name,
            spade_rep.total_mm2(),
            dense_rep.total_mm2(),
            spade_rep.sparsity_support_fraction() * 100.0,
            spade_rep.sram_kib,
            spade_rep.peak_gops,
            spade_rep.peak_gops_per_mm2(),
            spade_rep.effective_gops_per_w(&spade_perf, dense_ops),
        );
        for kind in ModelKind::SPARSE {
            let run = model_run(kind, 61, scale);
            let spade_perf = simulate_on_spade(&run, cfg);
            let dense_perf = simulate_on(dense_acc, &run);
            let speedup = dense_perf.total_cycles as f64 / spade_perf.total_cycles.max(1) as f64;
            let savings = dense_perf.energy.total_pj() / spade_perf.energy.total_pj().max(1e-9);
            let _ = writeln!(
                s,
                "  {} on {}: speedup vs DenseAcc {:.2}x, energy savings {:.2}x (ops savings {:.1}%)",
                spade_rep.name,
                kind.name(),
                speedup,
                savings,
                run.trace.computation_savings() * 100.0
            );
        }
    }
    s
}

/// Fig. 11: latency breakdown vs. platforms, per-sparse-conv-type speedup, and
/// MXU utilisation with and without dataflow optimisation.
#[must_use]
pub fn fig11(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 11 — latency breakdown and utilisation\n");
    let cfg = SpadeConfig::high_end();
    for kind in [ModelKind::Spp1, ModelKind::Spp2, ModelKind::Spp3] {
        let run = model_run(kind, 71, scale);
        let spade = simulate_on_spade(&run, cfg);
        let gpu = Platform::new(spade_baselines::PlatformKind::Gpu2080Ti);
        let lat = gpu.run(&run.trace);
        let _ = writeln!(
            s,
            "{}: SPADE.HE {:.2} ms vs 2080Ti {:.2} ms (mapping {:.2} ms)",
            kind.name(),
            spade.latency_ms,
            lat.total_ms(),
            lat.mapping_ms
        );
    }
    // (c)/(d): utilisation per sparse conv type with/without optimisation.
    let run = model_run(ModelKind::Spp2, 71, scale);
    for opts in [
        DataflowOptions::all_disabled(),
        DataflowOptions::all_enabled(),
    ] {
        let acc = SpadeAccelerator::with_options(cfg, opts);
        let mut per_kind: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
        for w in &run.workloads {
            let perf = acc.simulate_layer(w);
            let e = per_kind.entry(w.spec.kind.to_string()).or_insert((0.0, 0));
            e.0 += perf.mxu_utilization(&cfg);
            e.1 += 1;
        }
        let label = if opts.weight_grouping {
            "with opt"
        } else {
            "no opt"
        };
        let _ = write!(s, "MXU utilisation ({label}):");
        for (k, (sum, n)) in per_kind {
            let _ = write!(s, " {k}={:.0}%", sum / n as f64 * 100.0);
        }
        s.push('\n');
    }
    s
}

/// Fig. 12: energy-savings breakdown (compute / SRAM / DRAM) of SPADE vs.
/// DenseAcc for every sparse model.
#[must_use]
pub fn fig12(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 12 — energy savings breakdown vs DenseAcc (HE)\nmodel | compute | sram | dram | total\n");
    let cfg = SpadeConfig::high_end();
    let dense_acc: &dyn Accelerator = &DenseAccelerator::new(cfg);
    for kind in ModelKind::SPARSE {
        let run = model_run(kind, 81, scale);
        let spade = simulate_on_spade(&run, cfg);
        let dense = simulate_on(dense_acc, &run);
        let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { f64::INFINITY };
        let _ = writeln!(
            s,
            "{:<5} | {:>6.1}x | {:>5.1}x | {:>5.1}x | {:>5.1}x",
            kind.name(),
            ratio(dense.energy.compute_pj, spade.energy.compute_pj),
            ratio(dense.energy.sram_pj, spade.energy.sram_pj),
            ratio(dense.energy.dram_pj, spade.energy.dram_pj),
            ratio(dense.energy.total_pj(), spade.energy.total_pj()),
        );
    }
    s
}

/// Fig. 13(a): accuracy–sparsity trade-off of dynamic pruning, with and
/// without regularised fine-tuning.
#[must_use]
pub fn fig13(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 13(a) — accuracy vs computation savings (SPP2 pruning sweep)\nkeep_ratio | savings | mAP (finetuned) | mAP (naive)\n");
    let (base_map, _) = ModelKind::Spp2.baseline_accuracy();
    for keep in [1.0, 0.8, 0.65, 0.5, 0.4, 0.3, 0.2] {
        let mut tuned_cfg = PruningConfig::with_keep_ratio(keep);
        tuned_cfg.finetuned = true;
        let mut naive_cfg = tuned_cfg;
        naive_cfg.finetuned = false;
        let tuned = model_run_with_pruning(ModelKind::Spp2, 91, scale, tuned_cfg);
        let naive = model_run_with_pruning(ModelKind::Spp2, 91, scale, naive_cfg);
        let dense = model_run(ModelKind::Pp, 91, scale);
        let savings = 1.0 - tuned.trace.total_macs() as f64 / dense.trace.total_macs() as f64;
        let tuned_map = AccuracyProxy::with_finetuning(base_map)
            .estimate_map(tuned.trace.foreground_coverage.unwrap_or(1.0));
        let naive_map = AccuracyProxy::without_finetuning(base_map)
            .estimate_map(naive.trace.foreground_coverage.unwrap_or(1.0));
        let _ = writeln!(
            s,
            "{:>10.2} | {:>6.1}% | {:>15.2} | {:>11.2}",
            keep,
            savings * 100.0,
            tuned_map,
            naive_map
        );
    }
    s
}

/// Fig. 14 & 15: DRAM access volume and latency of SPADE vs. the PointAcc
/// model on the sparse PointPillars variants.
#[must_use]
pub fn fig14_15(scale: WorkloadScale) -> String {
    let mut s = String::from("Fig 14/15 — SPADE vs PointAcc\nmodel | DRAM ratio (PointAcc/SPADE) | speedup (PointAcc/SPADE cycles)\n");
    let cfg = SpadeConfig::high_end();
    let spade_acc = SpadeAccelerator::new(cfg);
    let pointacc = PointAccModel::new(cfg);
    for kind in [ModelKind::Spp1, ModelKind::Spp2, ModelKind::Spp3] {
        let run = model_run(kind, 101, scale);
        let spade = simulate_on(&spade_acc, &run);
        let pacc = simulate_on(&pointacc, &run);
        let _ = writeln!(
            s,
            "{:<5} | {:>27.2} | {:>31.2}",
            kind.name(),
            pacc.total_dram_bytes as f64 / spade.total_dram_bytes.max(1) as f64,
            pacc.total_cycles as f64 / spade.total_cycles.max(1) as f64
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_runs_at_reduced_scale() {
        for id in ["fig02b", "fig05b", "fig06c"] {
            let out = run_experiment(id, WorkloadScale::Reduced).unwrap();
            assert!(!out.is_empty(), "{id} produced no output");
        }
        assert!(run_experiment("nonexistent", WorkloadScale::Reduced).is_none());
        assert_eq!(all_experiment_ids().len(), 15);
    }

    #[test]
    fn accelerators_experiment_reports_all_four_models() {
        let out = accelerators(WorkloadScale::Reduced);
        for name in ["SPADE", "DenseAcc", "SpConv2D-Acc", "PointAcc"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn fig05b_shows_rgu_fastest() {
        let out = fig05b();
        assert!(out.contains("hash/RGU"));
        // Every ratio column should be > 1 (RGU fastest): check one line.
        let line = out.lines().nth(3).unwrap();
        assert!(line.contains('x'));
    }

    #[test]
    fn fig02def_reports_iopr_for_three_models() {
        let out = fig02def(WorkloadScale::Reduced);
        assert!(out.contains("SPP1:"));
        assert!(out.contains("SPP2:"));
        assert!(out.contains("SPP3:"));
    }

    #[test]
    fn fig09_reports_speedups_above_one() {
        let out = fig09(WorkloadScale::Reduced);
        assert!(out.contains("SPP2"));
        assert!(out.contains("Jetson"));
    }
}
