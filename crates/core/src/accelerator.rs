//! Whole-network simulation on SPADE and the [`Accelerator`] abstraction all
//! accelerator models implement.

use crate::config::{DataflowOptions, SpadeConfig};
use crate::dataflow::{schedule_layer, LayerPerf};
use serde::{Deserialize, Serialize};
use spade_nn::graph::LayerWorkload;
use spade_sim::{EnergyBreakdown, EnergyModel};

/// A simulated accelerator that executes sparse pillar-based detection
/// networks layer by layer.
///
/// This is the common API of the paper's Fig. 9/14 comparison set — SPADE,
/// the ideal dense accelerator, the conventional element-sparse Conv2D
/// accelerator, and the PointAcc model — so experiments, benches, and future
/// backends can be written once against `&dyn Accelerator` instead of
/// hand-calling each model.
///
/// Every implementor consumes the [`LayerWorkload`]s produced by
/// [`spade_nn::graph::execute_pattern`] and reports its results in the shared
/// [`LayerPerf`] / [`NetworkPerf`] vocabulary, which makes the models directly
/// comparable (cycles, DRAM traffic, and energy mean the same thing for each).
pub trait Accelerator {
    /// Human-readable model name (e.g. `"SPADE"`, `"DenseAcc"`).
    fn name(&self) -> &str;

    /// Simulates a single layer.
    fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf;

    /// Simulates a whole network given its layer workloads and the pillar
    /// feature encoder's MAC count.
    fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf;
}

/// MXU utilisation assumed when the pillar feature encoder is mapped onto a
/// systolic array (shared by every accelerator model so encoder accounting
/// never diverges between implementors).
pub const ENCODER_MXU_UTILIZATION: f64 = 0.8;

/// Runs `acc`'s layer model over every workload and aggregates the results
/// with the shared accounting — the one `simulate_network` body every
/// [`Accelerator`] implementor delegates to.
pub fn simulate_network_via_layers<A: Accelerator + ?Sized>(
    acc: &A,
    workloads: &[LayerWorkload],
    encoder_macs: u64,
    num_pes: usize,
    encoder_utilization: f64,
    freq_ghz: f64,
    energy: &EnergyModel,
) -> NetworkPerf {
    let layers: Vec<LayerPerf> = workloads.iter().map(|w| acc.simulate_layer(w)).collect();
    let encoder_cycles =
        (encoder_macs as f64 / (num_pes.max(1) as f64 * encoder_utilization)).ceil() as u64;
    NetworkPerf::from_layers(layers, encoder_cycles, encoder_macs, freq_ghz, energy)
}

/// The SPADE accelerator model.
#[derive(Debug, Clone)]
pub struct SpadeAccelerator {
    config: SpadeConfig,
    options: DataflowOptions,
    energy: EnergyModel,
}

/// Whole-network performance and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPerf {
    /// Per-layer performance.
    pub layers: Vec<LayerPerf>,
    /// Encoder cycles (pillar feature encoder mapped onto the MXU).
    pub encoder_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Frames per second.
    pub fps: f64,
    /// Total multiply-accumulates executed.
    pub total_macs: u64,
    /// Total DRAM bytes moved.
    pub total_dram_bytes: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl NetworkPerf {
    /// Average power in watts.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        if self.latency_ms <= 0.0 {
            return 0.0;
        }
        self.energy.total_mj() / self.latency_ms
    }

    /// Effective throughput in GOPS relative to an arbitrary operation count
    /// (e.g. the dense-equivalent operation count, to compute *effective*
    /// GOPS as the paper's Fig. 10(a) does).
    #[must_use]
    pub fn effective_gops(&self, ops: f64) -> f64 {
        if self.latency_ms <= 0.0 {
            return 0.0;
        }
        ops / (self.latency_ms * 1e-3) / 1e9
    }

    /// Aggregates per-layer results plus the encoder contribution into a
    /// whole-network result. This is the shared accounting every
    /// [`Accelerator`] implementor uses, which keeps cycles, DRAM traffic,
    /// latency, and energy directly comparable across models.
    #[must_use]
    pub fn from_layers(
        layers: Vec<LayerPerf>,
        encoder_cycles: u64,
        encoder_macs: u64,
        freq_ghz: f64,
        energy: &EnergyModel,
    ) -> Self {
        let layer_cycles: u64 = layers.iter().map(|l| l.total_cycles).sum();
        let total_cycles = layer_cycles + encoder_cycles;
        let total_macs: u64 = encoder_macs + layers.iter().map(|l| l.macs).sum::<u64>();
        let total_dram: u64 = layers.iter().map(|l| l.dram_bytes).sum();
        let total_sram: u64 = layers.iter().map(|l| l.sram_bytes).sum();
        let latency_ms = total_cycles as f64 / (freq_ghz * 1e9) * 1e3;
        let energy = energy.breakdown(total_macs, total_sram, total_dram, total_cycles, freq_ghz);
        NetworkPerf {
            layers,
            encoder_cycles,
            total_cycles,
            latency_ms,
            fps: if latency_ms > 0.0 {
                1000.0 / latency_ms
            } else {
                0.0
            },
            total_macs,
            total_dram_bytes: total_dram,
            energy,
        }
    }
}

impl SpadeAccelerator {
    /// Creates an accelerator with default (all-enabled) dataflow options.
    #[must_use]
    pub fn new(config: SpadeConfig) -> Self {
        Self {
            config,
            options: DataflowOptions::all_enabled(),
            energy: EnergyModel::asic_32nm(),
        }
    }

    /// Creates an accelerator with explicit dataflow options.
    #[must_use]
    pub fn with_options(config: SpadeConfig, options: DataflowOptions) -> Self {
        Self {
            config,
            options,
            energy: EnergyModel::asic_32nm(),
        }
    }

    /// The hardware configuration.
    #[must_use]
    pub const fn config(&self) -> &SpadeConfig {
        &self.config
    }

    /// The dataflow options.
    #[must_use]
    pub const fn options(&self) -> &DataflowOptions {
        &self.options
    }

    /// Simulates a single layer.
    #[must_use]
    pub fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf {
        schedule_layer(workload, &self.config, &self.options)
    }

    /// Simulates a whole network given its layer workloads and the encoder's
    /// MAC count.
    #[must_use]
    pub fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf {
        simulate_network_via_layers(
            self,
            workloads,
            encoder_macs,
            self.config.num_pes(),
            ENCODER_MXU_UTILIZATION,
            self.config.freq_ghz,
            &self.energy,
        )
    }
}

impl Accelerator for SpadeAccelerator {
    fn name(&self) -> &str {
        "SPADE"
    }

    fn simulate_layer(&self, workload: &LayerWorkload) -> LayerPerf {
        SpadeAccelerator::simulate_layer(self, workload)
    }

    fn simulate_network(&self, workloads: &[LayerWorkload], encoder_macs: u64) -> NetworkPerf {
        SpadeAccelerator::simulate_network(self, workloads, encoder_macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_nn::graph::{execute_pattern, ExecutionContext};
    use spade_nn::{Model, ModelKind};
    use spade_tensor::{GridShape, PillarCoord};

    fn small_workloads(kind: ModelKind) -> (Vec<LayerWorkload>, u64) {
        // A reduced 64x64 grid keeps the unit test fast; network-scale runs
        // live in the bench crate.
        let grid = GridShape::new(64, 64);
        let coords: Vec<PillarCoord> = (0..200)
            .map(|i| PillarCoord::new((i / 20) as u32 * 3, (i % 20) as u32 * 3))
            .collect();
        let model = Model::build(kind);
        let (_, workloads) = execute_pattern(
            model.spec(),
            &coords,
            grid,
            50_000,
            &ExecutionContext::default(),
        );
        (workloads, 50_000)
    }

    #[test]
    fn sparse_model_runs_faster_than_dense_model() {
        let acc = SpadeAccelerator::new(SpadeConfig::high_end());
        let (sparse_w, enc) = small_workloads(ModelKind::Spp3);
        let (dense_w, _) = small_workloads(ModelKind::Pp);
        let sparse = acc.simulate_network(&sparse_w, enc);
        let dense = acc.simulate_network(&dense_w, enc);
        assert!(sparse.total_cycles < dense.total_cycles);
        assert!(sparse.energy.total_pj() < dense.energy.total_pj());
        assert!(sparse.fps > dense.fps);
    }

    #[test]
    fn network_perf_aggregates_layers() {
        let acc = SpadeAccelerator::new(SpadeConfig::high_end());
        let (w, enc) = small_workloads(ModelKind::Spp2);
        let perf = acc.simulate_network(&w, enc);
        assert_eq!(perf.layers.len(), w.len());
        let sum: u64 = perf.layers.iter().map(|l| l.total_cycles).sum();
        assert_eq!(perf.total_cycles, sum + perf.encoder_cycles);
        assert!(perf.latency_ms > 0.0);
        assert!(perf.average_power_w() > 0.0);
    }

    #[test]
    fn high_end_outperforms_low_end() {
        let (w, enc) = small_workloads(ModelKind::Spp1);
        let he = SpadeAccelerator::new(SpadeConfig::high_end()).simulate_network(&w, enc);
        let le = SpadeAccelerator::new(SpadeConfig::low_end()).simulate_network(&w, enc);
        assert!(he.total_cycles < le.total_cycles);
    }

    #[test]
    fn dataflow_optimisations_help_end_to_end() {
        let (w, enc) = small_workloads(ModelKind::Spp2);
        let on =
            SpadeAccelerator::with_options(SpadeConfig::high_end(), DataflowOptions::all_enabled())
                .simulate_network(&w, enc);
        let off = SpadeAccelerator::with_options(
            SpadeConfig::high_end(),
            DataflowOptions::all_disabled(),
        )
        .simulate_network(&w, enc);
        assert!(on.total_cycles <= off.total_cycles);
    }
}
