//! The Gather-Scatter Unit (GSU) and its Active Tile Manager (ATM).
//!
//! The ATM exploits the monotone progression of input and output indices in
//! CPR order: a contiguous range of input pillars maps onto a contiguous range
//! of output pillars, so loading one input tile and one output tile guarantees
//! full reuse — no cache, no refetches, and conflict-free single-bank output
//! updates (Sec. III-C).

use serde::{Deserialize, Serialize};
use spade_nn::graph::LayerWorkload;

/// Active-tile plan for one layer: how many input tiles are needed and how
/// much data each moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Active input pillars per tile.
    pub input_tile: usize,
    /// Number of input tiles.
    pub num_tiles: usize,
    /// Worst-case active outputs touched by one input tile.
    pub output_span: usize,
    /// Total DRAM bytes read for inputs (each input fetched exactly once).
    pub input_bytes: u64,
    /// Total DRAM bytes written for outputs (each output written exactly
    /// once).
    pub output_bytes: u64,
    /// Total DRAM bytes read for weights.
    pub weight_bytes: u64,
}

/// The Active Tile Manager.
#[derive(Debug, Clone, Copy)]
pub struct ActiveTileManager {
    buf_in_bytes: u64,
    buf_out_bytes: u64,
}

impl ActiveTileManager {
    /// Creates an ATM with the given input/output buffer capacities (KiB).
    #[must_use]
    pub fn new(buf_in_kib: u64, buf_out_kib: u64) -> Self {
        Self {
            buf_in_bytes: buf_in_kib * 1024,
            buf_out_bytes: buf_out_kib * 1024,
        }
    }

    /// Plans the active tiles for a layer workload.
    ///
    /// Inputs are int8 (`C` bytes per pillar); partial sums are int32
    /// (`4 × M` bytes per output pillar).
    #[must_use]
    pub fn plan(&self, workload: &LayerWorkload) -> TilePlan {
        self.plan_for_counts(
            workload.input_coords.len(),
            workload.output_coords.len(),
            workload.spec.in_channels,
            workload.spec.out_channels,
            workload.spec.kernel.num_taps(),
        )
    }

    /// Plans the active tiles from raw workload counts — the same arithmetic
    /// as [`ActiveTileManager::plan`] without needing a materialised
    /// [`LayerWorkload`], so analytic lower bounds (the adaptive DSE's
    /// roofline screen) can reuse the exact tile plan the simulator will use.
    #[must_use]
    pub fn plan_for_counts(
        &self,
        active_inputs: usize,
        active_outputs: usize,
        in_channels: usize,
        out_channels: usize,
        kernel_taps: usize,
    ) -> TilePlan {
        let a = active_inputs.max(1);
        let q = active_outputs.max(1);
        let c = in_channels.max(1) as u64;
        let m = out_channels.max(1) as u64;
        let k = kernel_taps as u64;
        // Input-side limit: pillars that fit in the input buffer.
        let by_input = (self.buf_in_bytes / c).max(1) as usize;
        // Output-side limit: because indices progress together, an input tile
        // of T pillars touches roughly T·(Q/A) outputs plus a kernel halo.
        let outputs_per_input = q as f64 / a as f64;
        let by_output =
            (((self.buf_out_bytes / (4 * m)).max(1) as f64 / outputs_per_input.max(0.1)).floor()
                as usize)
                .max(1);
        let input_tile = by_input.min(by_output).min(a).max(1);
        let num_tiles = a.div_ceil(input_tile);
        let output_span = ((input_tile as f64 * outputs_per_input).ceil() as usize + 8).min(q);
        TilePlan {
            input_tile,
            num_tiles,
            output_span,
            input_bytes: a as u64 * c,
            output_bytes: q as u64 * m,
            weight_bytes: k * c * m,
        }
    }

    /// Input buffer capacity in bytes.
    #[must_use]
    pub const fn buf_in_bytes(&self) -> u64 {
        self.buf_in_bytes
    }

    /// Output buffer capacity in bytes.
    #[must_use]
    pub const fn buf_out_bytes(&self) -> u64 {
        self.buf_out_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_nn::{ConvKind, LayerSpec};
    use spade_tensor::{GridShape, PillarCoord};

    fn workload(active: usize, channels: usize) -> LayerWorkload {
        let coords: Vec<PillarCoord> = (0..active)
            .map(|i| PillarCoord::new((i / 64) as u32, (i % 64) as u32))
            .collect();
        LayerWorkload {
            spec: LayerSpec::new("t", ConvKind::SpConv, channels, channels),
            stage: 1,
            input_grid: GridShape::new(256, 64),
            input_coords: coords.clone().into(),
            output_grid: GridShape::new(256, 64),
            output_coords: coords.into(),
            rules: (active * 9) as u64,
        }
    }

    #[test]
    fn small_layers_fit_in_one_tile() {
        let atm = ActiveTileManager::new(64, 128);
        let plan = atm.plan(&workload(100, 64));
        assert_eq!(plan.num_tiles, 1);
        assert_eq!(plan.input_tile, 100);
        assert_eq!(plan.input_bytes, 100 * 64);
    }

    #[test]
    fn large_layers_are_tiled() {
        let atm = ActiveTileManager::new(16, 32);
        let plan = atm.plan(&workload(10_000, 64));
        assert!(plan.num_tiles > 1);
        assert!(plan.input_tile <= 16 * 1024 / 64);
        assert_eq!(plan.num_tiles, 10_000usize.div_ceil(plan.input_tile));
    }

    #[test]
    fn traffic_counts_each_element_once() {
        let atm = ActiveTileManager::new(64, 128);
        let plan = atm.plan(&workload(5_000, 32));
        // Full reuse: bytes do not depend on the number of tiles.
        assert_eq!(plan.input_bytes, 5_000 * 32);
        assert_eq!(plan.output_bytes, 5_000 * 32);
        assert_eq!(plan.weight_bytes, 9 * 32 * 32);
    }

    #[test]
    fn output_span_tracks_dilation() {
        let atm = ActiveTileManager::new(64, 128);
        let mut w = workload(1_000, 64);
        // Double the outputs (dilation): the per-tile output span grows.
        let mut dilated: Vec<PillarCoord> = w.output_coords.to_vec();
        dilated
            .extend((0..1_000).map(|i| PillarCoord::new(100 + (i / 64) as u32, (i % 64) as u32)));
        w.output_coords = dilated.into();
        let plan_dilated = atm.plan(&w);
        let plan_plain = atm.plan(&workload(1_000, 64));
        assert!(plan_dilated.output_span >= plan_plain.output_span);
    }
}
