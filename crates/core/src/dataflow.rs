//! The configurable seven-instruction dataflow and its cycle model.
//!
//! SPADE executes a layer as a sequence of `RuleGen`, `Gather_inp`,
//! `Gather_wgt`, `Load_wgt`, `MXU`, `Copy_psum`, and `Scatter_out`
//! instructions (Fig. 7). `RuleGen` and the gathers are double-buffered and
//! hide behind MXU computation after the first tile; `Load_wgt` and
//! `Copy_psum` cannot overlap computation and are the utilisation-limiting
//! overheads that the weight-grouping and ganged-scatter optimisations attack
//! (Fig. 8).

use crate::config::{DataflowOptions, SpadeConfig};
use crate::gsu::{ActiveTileManager, TilePlan};
use crate::rgu::RuleGenerationUnit;
use serde::{Deserialize, Serialize};
use spade_nn::graph::LayerWorkload;
use spade_nn::ConvKind;

/// Per-layer performance result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Layer name.
    pub name: String,
    /// Convolution kind.
    pub kind: ConvKind,
    /// MXU (compute) cycles.
    pub mxu_cycles: u64,
    /// Exposed weight-load cycles.
    pub load_wgt_cycles: u64,
    /// Exposed partial-sum copy cycles.
    pub copy_psum_cycles: u64,
    /// Exposed scatter cycles (non-zero only when scatter cannot hide).
    pub scatter_cycles: u64,
    /// Exposed rule-generation cycles (first tile only; the rest is hidden).
    pub rulegen_cycles: u64,
    /// Total cycles including memory-bound stalls.
    pub total_cycles: u64,
    /// Multiply-accumulates actually executed.
    pub macs: u64,
    /// DRAM bytes moved (inputs + weights + outputs).
    pub dram_bytes: u64,
    /// SRAM bytes moved.
    pub sram_bytes: u64,
    /// The tile plan used.
    pub tiles: TilePlan,
}

impl LayerPerf {
    /// MXU utilisation: useful MACs over the MAC slots available during the
    /// layer's execution.
    #[must_use]
    pub fn mxu_utilization(&self, config: &SpadeConfig) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.total_cycles as f64 * config.num_pes() as f64)
    }
}

/// Schedules one layer on SPADE and returns its performance.
#[must_use]
pub fn schedule_layer(
    workload: &LayerWorkload,
    config: &SpadeConfig,
    opts: &DataflowOptions,
) -> LayerPerf {
    let spec = &workload.spec;
    let a = workload.input_coords.len().max(1) as u64;
    let q = workload.output_coords.len().max(1) as u64;
    let r = workload.rules.max(1);
    let c = spec.in_channels as u64;
    let m = spec.out_channels as u64;
    let k = spec.kernel.num_taps() as u64;

    let atm = ActiveTileManager::new(config.buf_in_kib, config.buf_out_kib);
    let mut tiles = atm.plan(workload);
    if !opts.adaptive_tiling {
        // Fixed conservative tile (half the buffer) when adaptive sizing is
        // disabled.
        tiles.input_tile = (tiles.input_tile / 2).max(1);
        tiles.num_tiles = (a as usize).div_ceil(tiles.input_tile);
    }

    // How effectively a gathered input tile is reused by the loaded weights.
    // Strided convolution without weight grouping and deconvolution without
    // ganged scatter both waste most of the gathered tile (Fig. 8).
    let reuse_eff = match spec.kind {
        ConvKind::SpStConv if !opts.weight_grouping => 0.30,
        ConvKind::SpStConv => 0.95,
        ConvKind::SpDeconv if !opts.ganged_scatter => 0.30,
        ConvKind::SpDeconv => 0.95,
        _ => 1.0,
    };
    let effective_tiles = ((tiles.num_tiles as f64) / reuse_eff).ceil() as u64;

    let ch_tiles_in = (c as usize).div_ceil(config.pe_rows) as u64;
    let ch_tiles_out = (m as usize).div_ceil(config.pe_cols) as u64;
    let ch_tiles = ch_tiles_in * ch_tiles_out;

    // Compute: each rule streams one pillar through the array per channel tile.
    let mxu_cycles = r * ch_tiles;
    // Weight loads: one per tap per channel tile per (effective) input tile,
    // each taking pe_rows cycles to fill the local register files.
    let load_wgt_cycles = k * ch_tiles * effective_tiles * config.pe_rows as u64;
    // Partial-sum copies between consecutive overlapping input tiles.
    let copy_psum_cycles = if matches!(spec.kind, ConvKind::SpDeconv) {
        0
    } else {
        (effective_tiles.saturating_sub(1)) * config.pe_cols as u64
    };
    // Scatter is double-buffered; it only becomes exposed for deconvolution
    // without ganged scatter, where every kernel's outputs are flushed densely.
    // Banking below the lane count serialises conflicting gather/scatter
    // accesses: each rule loses (lanes - banks)/lanes of a cycle to conflict
    // arbitration, integer-folded here so the default banking is exactly the
    // legacy model (zero added cycles).
    let lanes = u64::from(crate::config::GATHER_SCATTER_LANES);
    let banks = u64::from(config.sram_banks).min(lanes);
    let bank_stall_cycles = r * (lanes - banks) / lanes;
    let scatter_cycles = bank_stall_cycles
        + if matches!(spec.kind, ConvKind::SpDeconv) && !opts.ganged_scatter {
            q * ch_tiles_out / 4
        } else {
            0
        };
    // Rule generation overlaps computation after the first tile.
    let rgu = RuleGenerationUnit::new();
    let rulegen_total = rgu.cycles_for(a as usize, q as usize, r);
    let rulegen_cycles = (rulegen_total / tiles.num_tiles.max(1) as u64).max(16);

    let compute_cycles =
        mxu_cycles + load_wgt_cycles + copy_psum_cycles + scatter_cycles + rulegen_cycles;

    // DRAM traffic: thanks to the ATM every input, weight, and output element
    // moves exactly once; the interface can bound throughput for thin layers.
    let dram_bytes = tiles.input_bytes + tiles.weight_bytes + tiles.output_bytes;
    let dram_cycles = (dram_bytes as f64 / config.dram_bytes_per_cycle).ceil() as u64;

    let total_cycles = compute_cycles.max(dram_cycles);
    let macs = r * c * m;
    // SRAM: read the input vector per rule, update int32 partial sums per
    // rule, plus tile fills and drains.
    let sram_bytes = r * (c + 4 * m) + a * c + q * m;

    LayerPerf {
        name: spec.name.clone(),
        kind: spec.kind,
        mxu_cycles,
        load_wgt_cycles,
        copy_psum_cycles,
        scatter_cycles,
        rulegen_cycles,
        total_cycles,
        macs,
        dram_bytes,
        sram_bytes,
        tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_nn::LayerSpec;
    use spade_tensor::{GridShape, PillarCoord};

    fn workload(kind: ConvKind, active: usize, channels: usize) -> LayerWorkload {
        let grid = GridShape::new(256, 256);
        // Clustered pillars (adjacent columns), as LiDAR object returns are.
        let coords: Vec<PillarCoord> = (0..active)
            .map(|i| PillarCoord::new((i / 128) as u32, (i % 128) as u32))
            .collect();
        let spec = LayerSpec::new("L", kind, channels, channels);
        let out_grid = spec.output_grid(grid);
        let out_coords: Vec<PillarCoord> = coords
            .iter()
            .filter(|c| c.in_bounds(out_grid))
            .copied()
            .collect();
        let rules = spade_nn::graph::count_rules(&coords, grid, out_grid, kind, spec.kernel);
        LayerWorkload {
            spec,
            stage: 1,
            input_grid: grid,
            input_coords: coords.into(),
            output_grid: out_grid,
            output_coords: out_coords.into(),
            rules,
        }
    }

    #[test]
    fn spconv_utilization_is_high() {
        let w = workload(ConvKind::SpConvS, 8_000, 64);
        let cfg = SpadeConfig::high_end();
        let perf = schedule_layer(&w, &cfg, &DataflowOptions::all_enabled());
        let util = perf.mxu_utilization(&cfg);
        assert!(util > 0.85, "utilization {util}");
    }

    #[test]
    fn weight_grouping_improves_strided_utilization() {
        let w = workload(ConvKind::SpStConv, 8_000, 64);
        let cfg = SpadeConfig::high_end();
        let base = schedule_layer(&w, &cfg, &DataflowOptions::all_disabled());
        let opt = schedule_layer(&w, &cfg, &DataflowOptions::all_enabled());
        assert!(opt.total_cycles < base.total_cycles);
        assert!(opt.load_wgt_cycles < base.load_wgt_cycles);
    }

    #[test]
    fn ganged_scatter_removes_exposed_scatter() {
        let w = workload(ConvKind::SpDeconv, 4_000, 64);
        let cfg = SpadeConfig::high_end();
        let base = schedule_layer(&w, &cfg, &DataflowOptions::all_disabled());
        let opt = schedule_layer(&w, &cfg, &DataflowOptions::all_enabled());
        assert!(base.scatter_cycles > 0);
        assert_eq!(opt.scatter_cycles, 0);
        assert!(opt.total_cycles < base.total_cycles);
    }

    #[test]
    fn reduced_banking_adds_exposed_stall_cycles() {
        let w = workload(ConvKind::SpConv, 8_000, 64);
        let base_cfg = SpadeConfig::high_end();
        let base = schedule_layer(&w, &base_cfg, &DataflowOptions::all_enabled());
        assert_eq!(base.scatter_cycles, 0);
        let banked_cfg = base_cfg.with_sram_banks(8);
        let banked = schedule_layer(&w, &banked_cfg, &DataflowOptions::all_enabled());
        assert_eq!(banked.scatter_cycles, w.rules.max(1) / 2);
        assert!(banked.total_cycles >= base.total_cycles);
        // Banking above the lane count cannot help (every lane already has a
        // private bank).
        let over = schedule_layer(
            &w,
            &base_cfg.with_sram_banks(64),
            &DataflowOptions::all_enabled(),
        );
        assert_eq!(over.total_cycles, base.total_cycles);
    }

    #[test]
    fn cycles_scale_with_work() {
        let cfg = SpadeConfig::high_end();
        let small = schedule_layer(
            &workload(ConvKind::SpConv, 1_000, 64),
            &cfg,
            &DataflowOptions::all_enabled(),
        );
        let large = schedule_layer(
            &workload(ConvKind::SpConv, 8_000, 64),
            &cfg,
            &DataflowOptions::all_enabled(),
        );
        assert!(large.total_cycles > small.total_cycles * 4);
        assert!(large.macs > small.macs * 4);
    }

    #[test]
    fn low_end_is_slower_than_high_end() {
        let w = workload(ConvKind::SpConv, 8_000, 64);
        let he = schedule_layer(
            &w,
            &SpadeConfig::high_end(),
            &DataflowOptions::all_enabled(),
        );
        let le = schedule_layer(&w, &SpadeConfig::low_end(), &DataflowOptions::all_enabled());
        assert!(le.total_cycles > he.total_cycles);
    }

    #[test]
    fn dram_traffic_counts_each_tensor_once() {
        let w = workload(ConvKind::SpConvS, 2_000, 32);
        let perf = schedule_layer(
            &w,
            &SpadeConfig::high_end(),
            &DataflowOptions::all_enabled(),
        );
        let expected = 2_000 * 32 + 9 * 32 * 32 + w.output_coords.len() as u64 * 32;
        assert_eq!(perf.dram_bytes, expected);
    }
}
