//! The Rule Generation Unit (RGU).
//!
//! The RGU is a three-stage streaming pipeline (alignment, row merge,
//! column-wise dilation) that converts CPR-encoded input coordinates into the
//! per-tap rule buffers. Functionally it produces the same rule book as the
//! algorithm in [`spade_nn::rulegen::streaming`]; this module wraps that
//! algorithm with the unit's cycle cost and verifies the hardware-relevant
//! ordering invariant (monotone input and output indices per rule buffer).

use spade_nn::rule::RuleBook;
use spade_nn::rulegen::RuleGenMethod;
use spade_nn::{ConvKind, KernelShape};
use spade_tensor::{CprTensor, GridShape, PillarCoord};

/// The RGU model: produces rule books and their generation cycle counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleGenerationUnit;

/// The result of running the RGU on one layer.
#[derive(Debug, Clone)]
pub struct RuleGenResult {
    /// The generated rule book.
    pub rules: RuleBook,
    /// Cycles the streaming pipeline needs to produce it.
    // unit: cycles
    pub cycles: u64,
}

impl RuleGenerationUnit {
    /// Creates an RGU model.
    #[must_use]
    pub const fn new() -> Self {
        Self
    }

    /// Generates the rule book for a layer and reports the pipeline cycles.
    ///
    /// `input_coords` is the CPR-ordered active set of a [`LayerWorkload`]
    /// (unsorted input is tolerated and normalised first, but the fast path —
    /// like the hardware — expects CPR order).
    ///
    /// [`LayerWorkload`]: spade_nn::graph::LayerWorkload
    #[must_use]
    pub fn generate(
        &self,
        input_coords: &[PillarCoord],
        input_grid: GridShape,
        kind: ConvKind,
        kernel: KernelShape,
    ) -> RuleGenResult {
        // `from_coords` takes the sort-free `from_sorted_coords` path when
        // the input is already CPR-ordered.
        let tensor = CprTensor::from_coords(input_grid, 1, input_coords);
        let rules = spade_nn::rulegen::generate_rules(&tensor, kind, kernel);
        let cost = RuleGenMethod::StreamingRgu.cost(
            input_coords.len(),
            rules.num_outputs(),
            rules.num_rules(),
        );
        debug_assert!(
            rules.check_monotone(),
            "RGU output must keep per-tap indices monotone"
        );
        RuleGenResult {
            rules,
            cycles: cost.cycles,
        }
    }

    /// Cycle cost without materialising the rule book (used when only counts
    /// are known).
    #[must_use]
    pub fn cycles_for(&self, inputs: usize, outputs: usize, rules: u64) -> u64 {
        RuleGenMethod::StreamingRgu
            .cost(inputs, outputs, rules as usize)
            .cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_monotone_rules_and_linear_cycles() {
        let coords: Vec<PillarCoord> = (0..50)
            .map(|i| PillarCoord::new(i / 8, (i % 8) * 3))
            .collect();
        let rgu = RuleGenerationUnit::new();
        let res = rgu.generate(
            &coords,
            GridShape::new(32, 32),
            ConvKind::SpConv,
            KernelShape::k3x3(),
        );
        assert!(res.rules.check_monotone());
        assert!(res.rules.num_outputs() >= coords.len());
        // Streaming cost is linear-ish in the larger of inputs/outputs.
        assert!(res.cycles as usize >= res.rules.num_outputs());
        assert!(res.cycles as usize <= res.rules.num_outputs() + coords.len() + 64);
    }

    #[test]
    fn cycles_scale_linearly_with_pillars() {
        let rgu = RuleGenerationUnit::new();
        let small = rgu.cycles_for(1_000, 1_800, 9_000);
        let large = rgu.cycles_for(10_000, 18_000, 90_000);
        let ratio = large as f64 / small as f64;
        assert!(ratio > 8.0 && ratio < 12.0, "ratio {ratio}");
    }
}
