//! # spade-core
//!
//! The SPADE accelerator model (HPCA 2024): a weight-stationary 2D systolic
//! array (MXU) augmented with a streaming Rule Generation Unit (RGU), a
//! Gather-Scatter Unit (GSU) with an Active Tile Manager (ATM), and a
//! configurable seven-instruction dataflow with the paper's two optimisation
//! techniques (weight grouping for strided sparse convolution and ganged
//! scatter for sparse deconvolution).
//!
//! The model is a cycle-level performance/energy simulator: it consumes the
//! per-layer workloads produced by [`spade_nn::graph::execute_pattern`] and
//! reports cycles, MXU utilisation, DRAM traffic, and an energy breakdown per
//! layer and per network — the quantities behind Fig. 6–12 and 14–15 of the
//! paper.
//!
//! ## Example
//!
//! ```
//! use spade_core::{SpadeAccelerator, SpadeConfig};
//! use spade_nn::graph::LayerWorkload;
//! use spade_nn::{ConvKind, LayerSpec};
//! use spade_tensor::{GridShape, PillarCoord};
//!
//! let workload = LayerWorkload {
//!     spec: LayerSpec::new("B1C1", ConvKind::SpConv, 16, 16),
//!     stage: 1,
//!     input_grid: GridShape::new(64, 64),
//!     input_coords: vec![PillarCoord::new(3, 3), PillarCoord::new(10, 12)].into(),
//!     output_grid: GridShape::new(64, 64),
//!     output_coords: vec![PillarCoord::new(3, 3), PillarCoord::new(10, 12)].into(),
//!     rules: 18,
//! };
//! let acc = SpadeAccelerator::new(SpadeConfig::high_end());
//! let perf = acc.simulate_layer(&workload);
//! assert!(perf.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod config;
pub mod dataflow;
pub mod gsu;
pub mod report;
pub mod rgu;

pub use accelerator::{
    simulate_network_via_layers, Accelerator, NetworkPerf, SpadeAccelerator,
    ENCODER_MXU_UTILIZATION,
};
pub use config::{DataflowOptions, SpadeConfig, GATHER_SCATTER_LANES};
pub use dataflow::LayerPerf;
pub use gsu::ActiveTileManager;
pub use report::{AcceleratorReport, ReportTable, ReportValue};
pub use rgu::RuleGenerationUnit;
