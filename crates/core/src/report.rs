//! Area and efficiency reporting (Fig. 10).

use crate::accelerator::NetworkPerf;
use crate::config::SpadeConfig;
use serde::{Deserialize, Serialize};
use spade_sim::AreaModel;

/// Area breakdown and efficiency metrics of an accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorReport {
    /// Instance name (e.g. "SPADE.HE").
    pub name: String,
    /// PE array area (mm²).
    pub pe_array_mm2: f64,
    /// SRAM area (mm²).
    pub sram_mm2: f64,
    /// Control and miscellaneous area (mm²).
    pub control_mm2: f64,
    /// Sparsity-support area: RGU + GSU + pruning unit (mm²); zero for a
    /// dense-only accelerator.
    pub sparsity_support_mm2: f64,
    /// Total on-chip SRAM (KiB).
    pub sram_kib: u64,
    /// Peak throughput (GOPS).
    pub peak_gops: f64,
}

impl AcceleratorReport {
    /// Builds the report for a SPADE instance (includes the RGU/GSU area).
    #[must_use]
    pub fn for_spade(name: &str, config: &SpadeConfig) -> Self {
        let area = AreaModel::asic_32nm();
        let pe_array_mm2 = area.pe_array_mm2(config.num_pes());
        let sram_mm2 = area.sram_mm2(config.total_sram_kib());
        let control_mm2 = area.control_mm2;
        // The paper reports the added RGU/GSU/pruning hardware at ~4.3% of the
        // high-end design's total area; the absolute cost is dominated by the
        // rule buffers and coordinate FIFOs and is nearly independent of the
        // PE-array size.
        let sparsity_support_mm2 = 0.045 * (pe_array_mm2 + sram_mm2 + control_mm2).max(4.0);
        Self {
            name: name.to_owned(),
            pe_array_mm2,
            sram_mm2,
            control_mm2,
            sparsity_support_mm2,
            sram_kib: config.total_sram_kib(),
            peak_gops: config.peak_gops(),
        }
    }

    /// Builds the report for the dense-only variant (DenseAcc): same PE array
    /// and buffers, no sparsity support.
    #[must_use]
    pub fn for_dense(name: &str, config: &SpadeConfig) -> Self {
        let mut r = Self::for_spade(name, config);
        r.name = name.to_owned();
        r.sparsity_support_mm2 = 0.0;
        r
    }

    /// Total area (mm²).
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.pe_array_mm2 + self.sram_mm2 + self.control_mm2 + self.sparsity_support_mm2
    }

    /// Fraction of the total area spent on sparsity support.
    #[must_use]
    pub fn sparsity_support_fraction(&self) -> f64 {
        self.sparsity_support_mm2 / self.total_mm2()
    }

    /// Peak areal efficiency (GOPS/mm²).
    #[must_use]
    pub fn peak_gops_per_mm2(&self) -> f64 {
        self.peak_gops / self.total_mm2()
    }

    /// Peak power efficiency (GOPS/W) for a measured run.
    #[must_use]
    pub fn peak_gops_per_w(&self, perf: &NetworkPerf) -> f64 {
        let p = perf.average_power_w();
        if p <= 0.0 {
            0.0
        } else {
            self.peak_gops / p
        }
    }

    /// Effective power efficiency (GOPS/W) counting dense-equivalent
    /// operations completed per joule, the paper's "effective GOPS/W".
    #[must_use]
    pub fn effective_gops_per_w(&self, perf: &NetworkPerf, dense_ops: f64) -> f64 {
        let p = perf.average_power_w();
        if p <= 0.0 {
            0.0
        } else {
            perf.effective_gops(dense_ops) / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spade_sparsity_support_is_a_small_fraction() {
        let r = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        let frac = r.sparsity_support_fraction();
        assert!(frac > 0.01 && frac < 0.10, "fraction {frac}");
    }

    #[test]
    fn dense_report_has_no_sparsity_area() {
        let d = AcceleratorReport::for_dense("DenseAcc.HE", &SpadeConfig::high_end());
        assert_eq!(d.sparsity_support_mm2, 0.0);
        let s = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        assert!(s.total_mm2() > d.total_mm2());
        // But only slightly: peak GOPS/mm² is close.
        assert!(s.peak_gops_per_mm2() / d.peak_gops_per_mm2() > 0.9);
    }

    #[test]
    fn low_end_has_smaller_area_than_high_end() {
        let he = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        let le = AcceleratorReport::for_spade("SPADE.LE", &SpadeConfig::low_end());
        assert!(le.total_mm2() < he.total_mm2());
        assert!(le.peak_gops < he.peak_gops);
    }
}
