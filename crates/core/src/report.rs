//! Area and efficiency reporting (Fig. 10) and tabular result export.
//!
//! Besides the per-instance [`AcceleratorReport`], this module provides
//! [`ReportTable`] — a small schema'd table that serialises to CSV and JSON
//! without external dependencies — used by the design-space exploration
//! engine (and any future experiment) to export machine-readable results.

use crate::accelerator::NetworkPerf;
use crate::config::SpadeConfig;
use serde::{Deserialize, Serialize};
use spade_sim::AreaModel;
use std::fmt::Write as _;

/// Area breakdown and efficiency metrics of an accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorReport {
    /// Instance name (e.g. "SPADE.HE").
    pub name: String,
    /// PE array area (mm²).
    pub pe_array_mm2: f64,
    /// SRAM area (mm²).
    pub sram_mm2: f64,
    /// Control and miscellaneous area (mm²).
    pub control_mm2: f64,
    /// Sparsity-support area: RGU + GSU + pruning unit (mm²); zero for a
    /// dense-only accelerator.
    pub sparsity_support_mm2: f64,
    /// Total on-chip SRAM (KiB).
    pub sram_kib: u64,
    /// Peak throughput (GOPS).
    pub peak_gops: f64,
}

impl AcceleratorReport {
    /// Builds the report for a SPADE instance (includes the RGU/GSU area).
    #[must_use]
    pub fn for_spade(name: &str, config: &SpadeConfig) -> Self {
        let area = AreaModel::asic_32nm();
        let pe_array_mm2 = area.pe_array_mm2(config.num_pes());
        let sram_mm2 = area.sram_mm2(config.total_sram_kib());
        let control_mm2 = area.control_mm2;
        // The paper reports the added RGU/GSU/pruning hardware at ~4.3% of the
        // high-end design's total area; the absolute cost is dominated by the
        // rule buffers and coordinate FIFOs and is nearly independent of the
        // PE-array size.
        let sparsity_support_mm2 = 0.045
            * area
                .datapath_mm2(config.num_pes(), config.total_sram_kib())
                .max(4.0);
        Self {
            name: name.to_owned(),
            pe_array_mm2,
            sram_mm2,
            control_mm2,
            sparsity_support_mm2,
            sram_kib: config.total_sram_kib(),
            peak_gops: config.peak_gops(),
        }
    }

    /// Builds the report for the dense-only variant (DenseAcc): same PE array
    /// and buffers, no sparsity support.
    #[must_use]
    pub fn for_dense(name: &str, config: &SpadeConfig) -> Self {
        let mut r = Self::for_spade(name, config);
        r.name = name.to_owned();
        r.sparsity_support_mm2 = 0.0;
        r
    }

    /// Total area (mm²).
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.pe_array_mm2 + self.sram_mm2 + self.control_mm2 + self.sparsity_support_mm2
    }

    /// Fraction of the total area spent on sparsity support.
    #[must_use]
    pub fn sparsity_support_fraction(&self) -> f64 {
        self.sparsity_support_mm2 / self.total_mm2()
    }

    /// Peak areal efficiency (GOPS/mm²).
    #[must_use]
    pub fn peak_gops_per_mm2(&self) -> f64 {
        self.peak_gops / self.total_mm2()
    }

    /// Peak power efficiency (GOPS/W) for a measured run.
    #[must_use]
    pub fn peak_gops_per_w(&self, perf: &NetworkPerf) -> f64 {
        let p = perf.average_power_w();
        if p <= 0.0 {
            0.0
        } else {
            self.peak_gops / p
        }
    }

    /// Effective power efficiency (GOPS/W) counting dense-equivalent
    /// operations completed per joule, the paper's "effective GOPS/W".
    #[must_use]
    pub fn effective_gops_per_w(&self, perf: &NetworkPerf, dense_ops: f64) -> f64 {
        let p = perf.average_power_w();
        if p <= 0.0 {
            0.0
        } else {
            perf.effective_gops(dense_ops) / p
        }
    }
}

/// One value of a [`ReportTable`] cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportValue {
    /// A text cell.
    Text(String),
    /// A floating-point cell.
    Float(f64),
    /// An integer cell.
    Int(i64),
    /// A boolean cell.
    Bool(bool),
}

impl From<&str> for ReportValue {
    fn from(v: &str) -> Self {
        ReportValue::Text(v.to_owned())
    }
}
impl From<String> for ReportValue {
    fn from(v: String) -> Self {
        ReportValue::Text(v)
    }
}
impl From<f64> for ReportValue {
    fn from(v: f64) -> Self {
        ReportValue::Float(v)
    }
}
impl From<i64> for ReportValue {
    fn from(v: i64) -> Self {
        ReportValue::Int(v)
    }
}
impl From<usize> for ReportValue {
    fn from(v: usize) -> Self {
        ReportValue::Int(v as i64)
    }
}
impl From<bool> for ReportValue {
    fn from(v: bool) -> Self {
        ReportValue::Bool(v)
    }
}

/// A fixed-schema result table that serialises to CSV and JSON.
///
/// The vendored `serde` stub cannot serialise (see `vendor/serde`), so the
/// writers here are hand-rolled: CSV quotes fields containing commas, quotes,
/// or newlines; JSON emits an array of objects keyed by column name.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportTable {
    columns: Vec<String>,
    rows: Vec<Vec<ReportValue>>,
}

impl ReportTable {
    /// Creates an empty table with the given column names.
    #[must_use]
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the column count — a schema
    /// bug in the caller, not a runtime condition.
    pub fn push_row(&mut self, row: Vec<ReportValue>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The column names.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialises to CSV with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn csv_escape(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_escape(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    ReportValue::Text(t) => csv_escape(t),
                    ReportValue::Float(f) if f.is_finite() => format!("{f}"),
                    // CSV has no portable NaN/Infinity token; an empty cell
                    // is the tabular equivalent of the JSON writer's `null`,
                    // so both exports agree on non-finite values.
                    ReportValue::Float(_) => String::new(),
                    ReportValue::Int(i) => format!("{i}"),
                    ReportValue::Bool(b) => format!("{b}"),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Serialises to a JSON array of objects keyed by column name.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn json_escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (ci, (col, v)) in self.columns.iter().zip(row).enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": ", json_escape(col));
                match v {
                    ReportValue::Text(t) => {
                        let _ = write!(out, "\"{}\"", json_escape(t));
                    }
                    ReportValue::Float(f) if f.is_finite() => {
                        let _ = write!(out, "{f}");
                    }
                    // JSON has no NaN/Infinity literals.
                    ReportValue::Float(_) => out.push_str("null"),
                    ReportValue::Int(i) => {
                        let _ = write!(out, "{i}");
                    }
                    ReportValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Serialises a **one-row** table as a single JSON object keyed by
    /// column name — the shape service-metric snapshots take (`spade-serve`
    /// STATS exports, the `spade-loadgen` BENCH report), where an array
    /// wrapper around one measurement would only get in the way.
    ///
    /// # Panics
    ///
    /// Panics unless the table holds exactly one row — a schema bug in the
    /// caller, not a runtime condition.
    #[must_use]
    pub fn to_json_object(&self) -> String {
        assert_eq!(
            self.rows.len(),
            1,
            "to_json_object needs exactly one row, table has {}",
            self.rows.len()
        );
        let json = self.to_json();
        // Reuse the array writer's escaping and value formatting: strip the
        // `[\n  ` / `\n]\n` wrapper around the single object.
        let inner = json
            .trim_start_matches("[\n  ")
            .trim_end_matches('\n')
            .trim_end_matches(']')
            .trim_end()
            .to_owned();
        format!("{inner}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spade_sparsity_support_is_a_small_fraction() {
        let r = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        let frac = r.sparsity_support_fraction();
        assert!(frac > 0.01 && frac < 0.10, "fraction {frac}");
    }

    #[test]
    fn dense_report_has_no_sparsity_area() {
        let d = AcceleratorReport::for_dense("DenseAcc.HE", &SpadeConfig::high_end());
        assert_eq!(d.sparsity_support_mm2, 0.0);
        let s = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        assert!(s.total_mm2() > d.total_mm2());
        // But only slightly: peak GOPS/mm² is close.
        assert!(s.peak_gops_per_mm2() / d.peak_gops_per_mm2() > 0.9);
    }

    #[test]
    fn low_end_has_smaller_area_than_high_end() {
        let he = AcceleratorReport::for_spade("SPADE.HE", &SpadeConfig::high_end());
        let le = AcceleratorReport::for_spade("SPADE.LE", &SpadeConfig::low_end());
        assert!(le.total_mm2() < he.total_mm2());
        assert!(le.peak_gops < he.peak_gops);
    }

    #[test]
    fn table_serialises_to_csv_with_escaping() {
        let mut t = ReportTable::new(vec!["name", "latency_ms", "wins"]);
        t.push_row(vec!["plain".into(), 1.5.into(), true.into()]);
        t.push_row(vec!["a,\"b\"".into(), 2.0.into(), false.into()]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,latency_ms,wins"));
        assert_eq!(lines.next(), Some("plain,1.5,true"));
        assert_eq!(lines.next(), Some("\"a,\"\"b\"\"\",2,false"));
        assert_eq!(t.num_rows(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_serialises_to_json() {
        let mut t = ReportTable::new(vec!["k", "v"]);
        t.push_row(vec!["line\"1\"".into(), ReportValue::Int(7)]);
        let json = t.to_json();
        assert!(json.contains("\"k\": \"line\\\"1\\\"\""), "{json}");
        assert!(json.contains("\"v\": 7"), "{json}");
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn non_finite_floats_become_json_null() {
        let mut t = ReportTable::new(vec!["x"]);
        t.push_row(vec![f64::NAN.into()]);
        assert!(t.to_json().contains("\"x\": null"));
    }

    #[test]
    fn non_finite_floats_round_trip_as_missing_in_csv_and_json() {
        // Regression: CSV used to print `NaN`/`inf` while JSON mapped the
        // same cells to `null`; both now agree on "missing".
        let mut t = ReportTable::new(vec!["a", "b", "c", "d"]);
        t.push_row(vec![
            f64::NAN.into(),
            f64::INFINITY.into(),
            f64::NEG_INFINITY.into(),
            1.5.into(),
        ]);
        let csv = t.to_csv();
        let data_line = csv.lines().nth(1).unwrap();
        assert_eq!(data_line, ",,,1.5");
        // Round trip: a cell is empty in CSV exactly when it is null in
        // JSON, and finite values survive both writers unchanged.
        let json = t.to_json();
        let csv_cells: Vec<&str> = data_line.split(',').collect();
        for (col, cell) in t.columns().iter().zip(&csv_cells) {
            let json_null = json.contains(&format!("\"{col}\": null"));
            assert_eq!(cell.is_empty(), json_null, "column {col} disagrees");
        }
        assert!(json.contains("\"d\": 1.5"));
    }

    #[test]
    fn single_row_table_serialises_to_a_json_object() {
        let mut t = ReportTable::new(vec!["throughput_rps", "p99_ms", "note"]);
        t.push_row(vec![1250.5.into(), 3.25.into(), "warm \"cache\"".into()]);
        let obj = t.to_json_object();
        assert!(
            obj.starts_with('{') && obj.trim_end().ends_with('}'),
            "{obj}"
        );
        assert!(obj.contains("\"throughput_rps\": 1250.5"), "{obj}");
        assert!(obj.contains("\"p99_ms\": 3.25"), "{obj}");
        assert!(obj.contains("\"note\": \"warm \\\"cache\\\"\""), "{obj}");
    }

    #[test]
    #[should_panic(expected = "exactly one row")]
    fn to_json_object_rejects_multi_row_tables() {
        let mut t = ReportTable::new(vec!["x"]);
        t.push_row(vec![1.0.into()]);
        t.push_row(vec![2.0.into()]);
        let _ = t.to_json_object();
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_length_mismatch_panics() {
        let mut t = ReportTable::new(vec!["a", "b"]);
        t.push_row(vec![1.0.into()]);
    }
}
