//! SPADE accelerator configurations: the paper's high-end and low-end design
//! points, plus per-axis builders (`with_pe_array`, `with_sram_scale`,
//! `with_dram_bytes_per_cycle`, …) used by the design-space exploration
//! engine to grid the configuration space around them.

use serde::{Deserialize, Serialize};

/// Gather/scatter lane count of the GSU crossbar — the SRAM banking level at
/// which every lane has a private bank and scatter never conflicts. This is
/// the default (and the paper's) banking; sweeping `sram_banks` below it
/// models cheaper crossbars that serialise conflicting accesses.
pub const GATHER_SCATTER_LANES: u32 = 16;

/// Hardware configuration of a SPADE instance.
///
/// The paper evaluates two design points: a high-end 64×64 MXU (8 TOPS at
/// 1 GHz) and a low-end 16×16 MXU (512 GOPS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpadeConfig {
    /// PE array rows (input-channel dimension).
    pub pe_rows: usize,
    /// PE array columns (output-channel dimension).
    pub pe_cols: usize,
    /// Clock frequency (GHz).
    pub freq_ghz: f64,
    /// Input activation buffer capacity (KiB).
    pub buf_in_kib: u64,
    /// Output/partial-sum buffer capacity (KiB).
    pub buf_out_kib: u64,
    /// Weight buffer capacity (KiB).
    pub buf_wgt_kib: u64,
    /// Rule buffer capacity (KiB).
    pub rule_buf_kib: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Fraction of the input+output buffer pool given to the input buffer.
    /// `0.0` is the sentinel for "keep the base design's split" (the only
    /// value the paper evaluates); a positive fraction redistributes
    /// `buf_in_kib + buf_out_kib` while keeping their sum — and therefore
    /// total SRAM and area — unchanged.
    pub buffer_split: f64,
    /// Number of SRAM banks behind the GSU crossbar. At the default
    /// ([`GATHER_SCATTER_LANES`]) every lane has a private bank; fewer banks
    /// serialise conflicting scatter accesses into exposed stall cycles.
    pub sram_banks: u32,
}

impl SpadeConfig {
    /// The high-end configuration: 64×64 PE array, 8 TOPS at 1 GHz.
    #[must_use]
    pub fn high_end() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 64,
            freq_ghz: 1.0,
            buf_in_kib: 128,
            buf_out_kib: 256,
            buf_wgt_kib: 64,
            rule_buf_kib: 32,
            dram_bytes_per_cycle: 25.6,
            buffer_split: 0.0,
            sram_banks: GATHER_SCATTER_LANES,
        }
    }

    /// The low-end configuration: 16×16 PE array, 512 GOPS at 1 GHz.
    #[must_use]
    pub fn low_end() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            freq_ghz: 1.0,
            buf_in_kib: 32,
            buf_out_kib: 64,
            buf_wgt_kib: 32,
            rule_buf_kib: 16,
            dram_bytes_per_cycle: 12.8,
            buffer_split: 0.0,
            sram_banks: GATHER_SCATTER_LANES,
        }
    }

    /// Returns this configuration with a different PE array shape.
    ///
    /// One of the sweep axes of the design-space exploration engine; the
    /// other builders below cover the remaining axes so a grid of
    /// configurations can be expressed as chained edits of a base point.
    #[must_use]
    pub const fn with_pe_array(mut self, rows: usize, cols: usize) -> Self {
        self.pe_rows = rows;
        self.pe_cols = cols;
        self
    }

    /// Returns this configuration with a different DRAM bandwidth
    /// (bytes per cycle).
    #[must_use]
    pub fn with_dram_bytes_per_cycle(mut self, bytes_per_cycle: f64) -> Self {
        self.dram_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// Returns this configuration with every on-chip buffer scaled by
    /// `scale` (each buffer is floored at 1 KiB so a small scale can never
    /// produce a zero-capacity buffer).
    #[must_use]
    pub fn with_sram_scale(mut self, scale: f64) -> Self {
        let scaled = |kib: u64| (((kib as f64) * scale).round() as u64).max(1);
        self.buf_in_kib = scaled(self.buf_in_kib);
        self.buf_out_kib = scaled(self.buf_out_kib);
        self.buf_wgt_kib = scaled(self.buf_wgt_kib);
        self.rule_buf_kib = scaled(self.rule_buf_kib);
        self
    }

    /// Returns this configuration with a different clock frequency (GHz).
    #[must_use]
    pub fn with_freq_ghz(mut self, freq_ghz: f64) -> Self {
        self.freq_ghz = freq_ghz;
        self
    }

    /// Returns this configuration with `frac` of the input+output buffer
    /// pool given to the input buffer (each side floored at 1 KiB, the pool
    /// total — and therefore total SRAM and area — preserved). `frac <= 0`
    /// is the sentinel for the base design's split and leaves the buffers
    /// untouched.
    #[must_use]
    pub fn with_buffer_split(mut self, frac: f64) -> Self {
        if frac <= 0.0 {
            self.buffer_split = 0.0;
            return self;
        }
        let pool = self.buf_in_kib + self.buf_out_kib;
        let input = (((pool as f64) * frac).round() as u64).clamp(1, pool.saturating_sub(1).max(1));
        self.buf_in_kib = input;
        self.buf_out_kib = (pool - input).max(1);
        self.buffer_split = frac;
        self
    }

    /// Returns this configuration with a different SRAM bank count behind
    /// the GSU crossbar (floored at 1).
    #[must_use]
    pub fn with_sram_banks(mut self, banks: u32) -> Self {
        self.sram_banks = banks.max(1);
        self
    }

    /// Compact label identifying this design point in sweep output, e.g.
    /// `"32x32/240KiB/1GHz/12.8Bpc"` — form factor, then clock, then
    /// bandwidth, so labels of axis-insensitive models can drop trailing
    /// tokens.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}x{}/{}KiB/{}GHz/{}Bpc",
            self.pe_rows,
            self.pe_cols,
            self.total_sram_kib(),
            self.freq_ghz,
            self.dram_bytes_per_cycle
        );
        // Non-default buffer split / banking append their own tokens so every
        // legacy label (and every golden export that pins one) stays
        // byte-identical.
        if self.buffer_split > 0.0 {
            label.push_str(&format!("/bs{}", self.buffer_split));
        }
        if self.sram_banks != GATHER_SCATTER_LANES {
            label.push_str(&format!("/{}bk", self.sram_banks));
        }
        label
    }

    /// Number of processing elements.
    #[must_use]
    pub const fn num_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Peak throughput in GOPS (two operations per MAC per cycle).
    #[must_use]
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.num_pes() as f64 * self.freq_ghz
    }

    /// Total on-chip SRAM capacity (KiB).
    #[must_use]
    pub const fn total_sram_kib(&self) -> u64 {
        self.buf_in_kib + self.buf_out_kib + self.buf_wgt_kib + self.rule_buf_kib
    }
}

/// Dataflow optimisation switches (Sec. III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowOptions {
    /// Weight grouping for strided sparse convolution (Fig. 8(a)).
    pub weight_grouping: bool,
    /// Ganged scatter for sparse deconvolution (Fig. 8(b)).
    pub ganged_scatter: bool,
    /// Adaptive active-tile sizing in the GSU.
    pub adaptive_tiling: bool,
}

impl Default for DataflowOptions {
    fn default() -> Self {
        Self::all_enabled()
    }
}

impl DataflowOptions {
    /// All optimisations enabled (the SPADE design point).
    #[must_use]
    pub const fn all_enabled() -> Self {
        Self {
            weight_grouping: true,
            ganged_scatter: true,
            adaptive_tiling: true,
        }
    }

    /// All optimisations disabled (the ablation baseline of Fig. 8(c) and
    /// Fig. 11(d)).
    #[must_use]
    pub const fn all_disabled() -> Self {
        Self {
            weight_grouping: false,
            ganged_scatter: false,
            adaptive_tiling: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_end_is_8_tops() {
        let c = SpadeConfig::high_end();
        assert_eq!(c.num_pes(), 4096);
        assert!((c.peak_gops() - 8192.0).abs() < 1e-9);
    }

    #[test]
    fn low_end_is_512_gops() {
        let c = SpadeConfig::low_end();
        assert_eq!(c.num_pes(), 256);
        assert!((c.peak_gops() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn sram_total_sums_buffers() {
        let c = SpadeConfig::high_end();
        assert_eq!(
            c.total_sram_kib(),
            c.buf_in_kib + c.buf_out_kib + c.buf_wgt_kib + c.rule_buf_kib
        );
    }

    #[test]
    fn builders_edit_one_axis_at_a_time() {
        let base = SpadeConfig::high_end();
        let c = base
            .with_pe_array(32, 32)
            .with_dram_bytes_per_cycle(12.8)
            .with_sram_scale(0.5);
        assert_eq!(c.num_pes(), 1024);
        assert!((c.dram_bytes_per_cycle - 12.8).abs() < 1e-12);
        assert_eq!(c.total_sram_kib(), base.total_sram_kib() / 2);
        // Untouched axes keep the base values.
        assert!((c.freq_ghz - base.freq_ghz).abs() < 1e-12);
    }

    #[test]
    fn sram_scale_floors_at_one_kib() {
        let c = SpadeConfig::low_end().with_sram_scale(0.001);
        assert!(c.buf_in_kib >= 1 && c.rule_buf_kib >= 1);
    }

    #[test]
    fn label_names_the_design_point() {
        let label = SpadeConfig::high_end().label();
        assert!(label.contains("64x64"), "{label}");
        assert!(label.contains("480KiB"), "{label}");
        assert!(label.contains("1GHz"), "{label}");
        assert!(label.contains("25.6Bpc"), "{label}");
        let overclocked = SpadeConfig::high_end().with_freq_ghz(1.5).label();
        assert!(overclocked.contains("1.5GHz"), "{overclocked}");
    }

    #[test]
    fn buffer_split_preserves_pool_and_area_inputs() {
        let base = SpadeConfig::high_end();
        let pool = base.buf_in_kib + base.buf_out_kib;
        for frac in [0.125, 0.25, 0.5, 0.75] {
            let c = base.with_buffer_split(frac);
            assert_eq!(c.buf_in_kib + c.buf_out_kib, pool, "frac {frac}");
            assert_eq!(c.total_sram_kib(), base.total_sram_kib(), "frac {frac}");
            assert!(c.buf_in_kib >= 1 && c.buf_out_kib >= 1);
        }
        // The sentinel keeps the base split and the legacy label.
        let sentinel = base.with_buffer_split(0.0);
        assert_eq!(sentinel, base);
        assert_eq!(sentinel.label(), base.label());
    }

    #[test]
    fn non_default_axes_extend_the_label() {
        let c = SpadeConfig::high_end()
            .with_buffer_split(0.25)
            .with_sram_banks(8);
        assert!(c.label().ends_with("/bs0.25/8bk"), "{}", c.label());
        let banks_only = SpadeConfig::high_end().with_sram_banks(4);
        assert!(
            banks_only.label().ends_with("/4bk"),
            "{}",
            banks_only.label()
        );
        let default_banks = SpadeConfig::high_end().with_sram_banks(GATHER_SCATTER_LANES);
        assert_eq!(default_banks.label(), SpadeConfig::high_end().label());
    }

    #[test]
    fn option_presets() {
        assert!(DataflowOptions::all_enabled().weight_grouping);
        assert!(!DataflowOptions::all_disabled().ganged_scatter);
        assert_eq!(DataflowOptions::default(), DataflowOptions::all_enabled());
    }
}
