//! SPADE accelerator configurations (high-end and low-end).

use serde::{Deserialize, Serialize};

/// Hardware configuration of a SPADE instance.
///
/// The paper evaluates two design points: a high-end 64×64 MXU (8 TOPS at
/// 1 GHz) and a low-end 16×16 MXU (512 GOPS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpadeConfig {
    /// PE array rows (input-channel dimension).
    pub pe_rows: usize,
    /// PE array columns (output-channel dimension).
    pub pe_cols: usize,
    /// Clock frequency (GHz).
    pub freq_ghz: f64,
    /// Input activation buffer capacity (KiB).
    pub buf_in_kib: u64,
    /// Output/partial-sum buffer capacity (KiB).
    pub buf_out_kib: u64,
    /// Weight buffer capacity (KiB).
    pub buf_wgt_kib: u64,
    /// Rule buffer capacity (KiB).
    pub rule_buf_kib: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
}

impl SpadeConfig {
    /// The high-end configuration: 64×64 PE array, 8 TOPS at 1 GHz.
    #[must_use]
    pub fn high_end() -> Self {
        Self {
            pe_rows: 64,
            pe_cols: 64,
            freq_ghz: 1.0,
            buf_in_kib: 128,
            buf_out_kib: 256,
            buf_wgt_kib: 64,
            rule_buf_kib: 32,
            dram_bytes_per_cycle: 25.6,
        }
    }

    /// The low-end configuration: 16×16 PE array, 512 GOPS at 1 GHz.
    #[must_use]
    pub fn low_end() -> Self {
        Self {
            pe_rows: 16,
            pe_cols: 16,
            freq_ghz: 1.0,
            buf_in_kib: 32,
            buf_out_kib: 64,
            buf_wgt_kib: 32,
            rule_buf_kib: 16,
            dram_bytes_per_cycle: 12.8,
        }
    }

    /// Number of processing elements.
    #[must_use]
    pub const fn num_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Peak throughput in GOPS (two operations per MAC per cycle).
    #[must_use]
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.num_pes() as f64 * self.freq_ghz
    }

    /// Total on-chip SRAM capacity (KiB).
    #[must_use]
    pub const fn total_sram_kib(&self) -> u64 {
        self.buf_in_kib + self.buf_out_kib + self.buf_wgt_kib + self.rule_buf_kib
    }
}

/// Dataflow optimisation switches (Sec. III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowOptions {
    /// Weight grouping for strided sparse convolution (Fig. 8(a)).
    pub weight_grouping: bool,
    /// Ganged scatter for sparse deconvolution (Fig. 8(b)).
    pub ganged_scatter: bool,
    /// Adaptive active-tile sizing in the GSU.
    pub adaptive_tiling: bool,
}

impl Default for DataflowOptions {
    fn default() -> Self {
        Self::all_enabled()
    }
}

impl DataflowOptions {
    /// All optimisations enabled (the SPADE design point).
    #[must_use]
    pub const fn all_enabled() -> Self {
        Self {
            weight_grouping: true,
            ganged_scatter: true,
            adaptive_tiling: true,
        }
    }

    /// All optimisations disabled (the ablation baseline of Fig. 8(c) and
    /// Fig. 11(d)).
    #[must_use]
    pub const fn all_disabled() -> Self {
        Self {
            weight_grouping: false,
            ganged_scatter: false,
            adaptive_tiling: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_end_is_8_tops() {
        let c = SpadeConfig::high_end();
        assert_eq!(c.num_pes(), 4096);
        assert!((c.peak_gops() - 8192.0).abs() < 1e-9);
    }

    #[test]
    fn low_end_is_512_gops() {
        let c = SpadeConfig::low_end();
        assert_eq!(c.num_pes(), 256);
        assert!((c.peak_gops() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn sram_total_sums_buffers() {
        let c = SpadeConfig::high_end();
        assert_eq!(
            c.total_sram_kib(),
            c.buf_in_kib + c.buf_out_kib + c.buf_wgt_kib + c.rule_buf_kib
        );
    }

    #[test]
    fn option_presets() {
        assert!(DataflowOptions::all_enabled().weight_grouping);
        assert!(!DataflowOptions::all_disabled().ganged_scatter);
        assert_eq!(DataflowOptions::default(), DataflowOptions::all_enabled());
    }
}
