//! Source model shared by the passes: lexed files, extracted functions,
//! `#[cfg(test)] mod … { … }` ranges, `lint:allow` annotations, and findings.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use std::ops::Range;

/// The annotation kinds `// lint:allow(<lint>): <reason>` may name.
/// `lock-order`, `schema-drift`, and `taint-coverage` findings are
/// deliberately not suppressible.
pub const ALLOW_LINTS: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "panic",
    "unseeded-rng",
    "unit-mismatch",
    "unit-missing",
];

/// One reported defect. Sorted by file then line for stable output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A parsed `lint:allow` annotation. `line..=last_line` spans the comment
/// block itself (multi-line reasons continue on consecutive comment lines).
#[derive(Debug, Clone)]
pub struct Allow {
    pub lint: String,
    pub reason: String,
    pub line: usize,
    pub last_line: usize,
}

/// A function item: its name and the token-index range of its brace-delimited
/// body (inclusive of both braces).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub body: Range<usize>,
    pub line: usize,
    /// Token index of the `fn` keyword (the signature start).
    pub fn_tok: usize,
    /// Whether the item is `pub` (bare `pub` only; `pub(crate)` and friends
    /// count as private for the unit-annotation audit).
    pub is_pub: bool,
}

/// One lexed file with everything the passes pattern-match over.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used verbatim in findings and the summary.
    pub rel: String,
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
    /// Token ranges of `#[cfg(test)]` / `mod tests` bodies. Test code is out
    /// of scope for every pass: tests exercise invariant *violations* on
    /// purpose (the lockdep regression test inverts the lock order).
    pub test_ranges: Vec<Range<usize>>,
    pub allows: Vec<Allow>,
    /// Annotations that failed to parse become findings immediately.
    pub malformed: Vec<Finding>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let fns = functions(&lexed.toks);
        let test_ranges = test_mod_ranges(&lexed.toks);
        let (allows, malformed) = parse_allows(rel, &lexed.comments);
        SourceFile {
            rel: rel.to_string(),
            lexed,
            fns,
            test_ranges,
            allows,
            malformed,
        }
    }

    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    pub fn in_tests(&self, tok_index: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&tok_index))
    }

    /// Non-test functions, the only ones any pass analyzes.
    pub fn production_fns(&self) -> impl Iterator<Item = &FnItem> {
        self.fns.iter().filter(|f| !self.in_tests(f.body.start))
    }

    /// True when a finding of kind `lint` on `line` is covered by an
    /// annotation. An annotation covers its own comment block plus the
    /// statement that follows it: tokens from the first one at or below the
    /// annotation up to the next `;`, `{`, or `}` (so a rustfmt-wrapped
    /// method chain is covered in full, while a multi-line block body that
    /// follows is deliberately not).
    pub fn allowed(&self, lint: &str, line: usize) -> bool {
        self.allows
            .iter()
            .filter(|a| a.lint == lint)
            .any(|a| self.allow_coverage(a).contains(&line))
    }

    fn allow_coverage(&self, allow: &Allow) -> std::ops::RangeInclusive<usize> {
        let toks = self.toks();
        let Some(start) = toks.iter().position(|t| t.line >= allow.line) else {
            return allow.line..=allow.last_line;
        };
        let mut end_line = toks[start].line;
        for t in &toks[start..] {
            end_line = t.line;
            if matches!(t.kind, TokKind::Punct(';' | '{' | '}')) {
                break;
            }
        }
        allow.line..=end_line.max(allow.last_line)
    }
}

/// Extracts every `fn name … { … }` item, including ones nested in impl
/// blocks and test modules (callers filter via [`SourceFile::in_tests`]).
fn functions(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Walk the signature for the body brace; a `;` at bracket depth zero
        // first means a bodyless trait-method declaration.
        let mut nest = 0i32;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 2) {
            match t.kind {
                TokKind::Punct('(' | '[') => nest += 1,
                TokKind::Punct(')' | ']') => nest -= 1,
                TokKind::Punct('{') if nest == 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(';') if nest == 0 => break,
                _ => {}
            }
        }
        if let Some(open) = open {
            let close = matching_brace(toks, open);
            fns.push(FnItem {
                name: name_tok.text.clone(),
                body: open..close + 1,
                line: name_tok.line,
                fn_tok: i,
                is_pub: i >= 1 && toks[i - 1].is_ident("pub"),
            });
        }
    }
    fns
}

/// Index of the `}` matching the `{` at `open` (last token if unbalanced).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Token ranges of modules that are test-only: `mod tests { … }` or any
/// `mod` directly preceded by a `#[cfg(test)]` attribute.
fn test_mod_ranges(toks: &[Tok]) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("mod") {
            continue;
        }
        let named_tests = toks.get(i + 1).is_some_and(|t| t.is_ident("tests"));
        let cfg_test = i >= 7
            && toks[i - 1].is_punct(']')
            && toks[i - 3].is_ident("test")
            && toks[i - 5].is_ident("cfg")
            && toks[i - 7].is_punct('#');
        if !(named_tests || cfg_test) {
            continue;
        }
        if let Some(open) = toks[i + 1..].iter().position(|t| t.is_punct('{')) {
            let open = i + 1 + open;
            ranges.push(open..matching_brace(toks, open) + 1);
        }
    }
    ranges
}

/// Parses `lint:allow(<lint>): <reason>` out of the comment stream. The
/// directive must open the comment (prose *mentioning* the syntax, like this
/// sentence, is not an annotation). A reason may continue across
/// directly-consecutive comment lines; an annotation with an unknown lint
/// name or an empty reason is a (non-suppressible) `annotation` finding.
fn parse_allows(rel: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows: Vec<Allow> = Vec::new();
    let mut malformed = Vec::new();
    let mut idx = 0;
    while idx < comments.len() {
        let comment = &comments[idx];
        let Some(rest) = comment.text.trim_start().strip_prefix("lint:allow(") else {
            idx += 1;
            continue;
        };
        let Some((lint, after)) = rest.split_once(')') else {
            malformed.push(Finding {
                file: rel.to_string(),
                line: comment.line,
                lint: "annotation",
                message: "malformed lint:allow — missing closing ')'".to_string(),
            });
            idx += 1;
            continue;
        };
        if !ALLOW_LINTS.contains(&lint) {
            malformed.push(Finding {
                file: rel.to_string(),
                line: comment.line,
                lint: "annotation",
                message: format!(
                    "lint:allow names unknown lint '{lint}' (expected one of: {})",
                    ALLOW_LINTS.join(", ")
                ),
            });
            idx += 1;
            continue;
        }
        let mut reason = after.trim_start_matches(':').trim().to_string();
        let mut last_line = comment.line;
        // Swallow the continuation lines of a multi-line reason.
        while let Some(next) = comments.get(idx + 1) {
            if next.line != last_line + 1 || next.text.trim_start().starts_with("lint:allow(") {
                break;
            }
            reason.push(' ');
            reason.push_str(next.text.trim_start_matches(['/', '!']).trim());
            last_line = next.line;
            idx += 1;
        }
        if reason.trim().is_empty() {
            malformed.push(Finding {
                file: rel.to_string(),
                line: comment.line,
                lint: "annotation",
                message: format!("lint:allow({lint}) requires a non-empty justification after ':'"),
            });
        } else {
            allows.push(Allow {
                lint: lint.to_string(),
                reason,
                line: comment.line,
                last_line,
            });
        }
        idx += 1;
    }
    (allows, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_test_mods_are_extracted() {
        let src = r#"
            fn outer() { inner(); }
            impl Foo { fn method(&self) -> u32 { 1 } }
            trait T { fn decl(&self); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        "#;
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "method", "helper"]);
        let prod: Vec<_> = f.production_fns().map(|f| f.name.as_str()).collect();
        assert_eq!(prod, ["outer", "method"]);
    }

    #[test]
    fn allow_covers_the_following_statement() {
        let src = "fn f() {\n    // lint:allow(panic): justified\n    // because reasons.\n    value\n        .unwrap();\n    other.unwrap();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].reason, "justified because reasons.");
        assert!(f.allowed("panic", 5), "wrapped chain line covered");
        assert!(!f.allowed("panic", 6), "next statement not covered");
        assert!(!f.allowed("hash-iter", 5), "other lints not covered");
    }

    #[test]
    fn malformed_annotations_are_findings() {
        let src = "// lint:allow(panic):\n// lint:allow(bogus): reason\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows.is_empty());
        assert_eq!(f.malformed.len(), 2);
    }
}
