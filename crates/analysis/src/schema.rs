//! Export-schema drift detection.
//!
//! The sweep exporters hand-build their column sets (`vec!["workload", …]`
//! plus conditional `headers.push("…")` extensions) and the serve loop
//! hand-formats its `STATS` body as `key={}\n` lines. Nothing ties either
//! to the committed golden CSVs or to the keys the integration tests and
//! `spade-loadgen` read back, so a renamed or added column only surfaces as
//! a confusing downstream diff. This pass extracts both schemas statically
//! from the string literals and diffs them:
//!
//! * **Table columns** — the base `vec![…]` column list of an exporter fn
//!   must match the committed golden CSV's header line exactly; conditional
//!   `push`es may only *append* (the golden captures the legacy set, which
//!   default runs must keep byte-identical).
//! * **STATS keys** — every `key=` line produced by the serve formatters
//!   must appear in the committed key list, and every key a consumer
//!   `.get("…")`s must actually be produced.
//!
//! `schema-drift` findings are not suppressible: the fix is regenerating
//! the golden, never an annotation.

use crate::lexer::TokKind;
use crate::source::{Finding, SourceFile};
use std::collections::BTreeSet;

/// The column list an exporter fn builds: the base `vec![…]` literal plus
/// every `<headers>.push("…")` on the same variable, in token order.
#[derive(Debug, Default, Clone)]
pub struct TableColumns {
    pub base: Vec<String>,
    pub pushed: Vec<String>,
    pub line: usize,
}

/// Extracts the column list from `fn_name` in `file`. Returns `None` when
/// the fn is missing or builds no all-string `vec![…]` — callers treat that
/// as drift (the extractor must keep up with the exporter's shape).
pub fn table_columns(file: &SourceFile, fn_name: &str) -> Option<TableColumns> {
    let toks = file.toks();
    let func = file.production_fns().find(|f| f.name == fn_name)?;
    let body = func.body.clone();
    let mut out = TableColumns::default();
    let mut vec_var: Option<String> = None;
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        // `let [mut] NAME = vec ! [ "a" , "b" , … ]` — all-string elements.
        if out.base.is_empty()
            && t.is_ident("vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            if let Some(cols) = string_vec_elements(file, i + 2) {
                out.base = cols;
                out.line = t.line;
                vec_var = (1..=4)
                    .filter_map(|back| toks.get(i.checked_sub(back + 1)?))
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("let"))
                    .map(|t| t.text.clone());
            }
        }
        // `NAME . push ( "col" )`
        if let (Some(var), TokKind::Ident) = (&vec_var, t.kind) {
            if t.text == *var
                && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("push"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 4).is_some_and(|t| t.kind == TokKind::Str)
            {
                out.pushed.push(toks[i + 4].text.clone());
            }
        }
        i += 1;
    }
    (!out.base.is_empty()).then_some(out)
}

/// The string elements of a `[ "a" , "b" ]` starting at the `[` token, or
/// `None` when any element is not a plain string literal.
fn string_vec_elements(file: &SourceFile, open: usize) -> Option<Vec<String>> {
    let toks = file.toks();
    if !toks.get(open)?.is_punct('[') {
        return None;
    }
    let mut cols = Vec::new();
    let mut j = open + 1;
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct(']') => return (!cols.is_empty()).then_some(cols),
            TokKind::Punct(',') => j += 1,
            TokKind::Str => {
                cols.push(t.text.clone());
                j += 1;
            }
            _ => return None,
        }
    }
}

/// Diffs an extracted column list against a golden CSV header line.
pub fn check_table_against_golden(
    rel: &str,
    fn_name: &str,
    cols: &TableColumns,
    golden_rel: &str,
    golden_header: &str,
) -> Vec<Finding> {
    let golden: Vec<&str> = golden_header.trim().split(',').collect();
    let mut findings = Vec::new();
    for (pos, (got, want)) in cols
        .base
        .iter()
        .map(String::as_str)
        .zip(golden.iter().copied())
        .enumerate()
    {
        if got != want {
            findings.push(Finding {
                file: rel.to_string(),
                line: cols.line,
                lint: "schema-drift",
                message: format!(
                    "`{fn_name}` column {pos} is `{got}` but {golden_rel} has `{want}` — \
                     regenerate the golden or fix the exporter"
                ),
            });
        }
    }
    if cols.base.len() != golden.len() {
        let (longer, who) = if cols.base.len() > golden.len() {
            (cols.base[golden.len()..].join(", "), "exporter adds")
        } else {
            (golden[cols.base.len()..].join(", "), "golden still lists")
        };
        findings.push(Finding {
            file: rel.to_string(),
            line: cols.line,
            lint: "schema-drift",
            message: format!(
                "`{fn_name}` base columns ({}) and {golden_rel} header ({}) disagree: \
                 {who} [{longer}]",
                cols.base.len(),
                golden.len(),
            ),
        });
    }
    // Conditional pushes may only append new names, never shadow the base.
    for pushed in &cols.pushed {
        if cols.base.contains(pushed) {
            findings.push(Finding {
                file: rel.to_string(),
                line: cols.line,
                lint: "schema-drift",
                message: format!("`{fn_name}` pushes duplicate column `{pushed}`"),
            });
        }
    }
    findings
}

/// `key=` names produced by the multi-line `key={}\n…` format strings in
/// `file`, production code only. Only literals containing an escaped
/// newline count, so one-line metadata strings (`"index={} delta={}"`)
/// stay out of the key namespace.
pub fn keys_produced(file: &SourceFile) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for (i, t) in file.toks().iter().enumerate() {
        if t.kind != TokKind::Str || !t.text.contains("\\n") || file.in_tests(i) {
            continue;
        }
        for segment in t.text.split("\\n") {
            let Some((key, _)) = segment.split_once('=') else {
                continue;
            };
            if !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                keys.insert(key.to_string());
            }
        }
    }
    keys
}

/// Keys a consumer file reads back via `.get("…")`.
pub fn keys_consumed(file: &SourceFile) -> BTreeSet<String> {
    let toks = file.toks();
    let mut keys = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("get"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            keys.insert(toks[i + 3].text.clone());
        }
    }
    keys
}

/// Diffs produced STATS keys against the committed golden key list and every
/// consumer's read set.
pub fn check_stats_keys(
    producer_rel: &str,
    produced: &BTreeSet<String>,
    golden_rel: &str,
    golden: &BTreeSet<String>,
    consumers: &[(&str, BTreeSet<String>)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for key in produced.difference(golden) {
        findings.push(Finding {
            file: producer_rel.to_string(),
            line: 1,
            lint: "schema-drift",
            message: format!(
                "serve formatters produce key `{key}` missing from {golden_rel} — \
                 regenerate the golden key list"
            ),
        });
    }
    for key in golden.difference(produced) {
        findings.push(Finding {
            file: producer_rel.to_string(),
            line: 1,
            lint: "schema-drift",
            message: format!("{golden_rel} lists key `{key}` no formatter produces"),
        });
    }
    for (consumer_rel, consumed) in consumers {
        for key in consumed.iter() {
            if !produced.contains(key) {
                findings.push(Finding {
                    file: (*consumer_rel).to_string(),
                    line: 1,
                    lint: "schema-drift",
                    message: format!(
                        "consumer reads key `{key}` that {producer_rel} never produces"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPORTER: &str = r#"
        pub fn to_table(&self) -> ReportTable {
            let mut headers = vec!["workload", "pe_rows", "latency_ms"];
            if self.delta {
                headers.push("delta_speedup");
            }
            ReportTable::new(headers)
        }
    "#;

    #[test]
    fn columns_extracted_with_conditional_pushes() {
        let file = SourceFile::parse("dse.rs", EXPORTER);
        let cols = table_columns(&file, "to_table").expect("extracted");
        assert_eq!(cols.base, ["workload", "pe_rows", "latency_ms"]);
        assert_eq!(cols.pushed, ["delta_speedup"]);
    }

    #[test]
    fn matching_golden_is_clean_and_drift_is_flagged() {
        let file = SourceFile::parse("dse.rs", EXPORTER);
        let cols = table_columns(&file, "to_table").unwrap();
        let clean = check_table_against_golden(
            "dse.rs",
            "to_table",
            &cols,
            "g.csv",
            "workload,pe_rows,latency_ms",
        );
        assert!(clean.is_empty(), "{clean:?}");
        let renamed = check_table_against_golden(
            "dse.rs",
            "to_table",
            &cols,
            "g.csv",
            "workload,pe_cols,latency_ms",
        );
        assert_eq!(renamed.len(), 1);
        assert!(renamed[0].message.contains("pe_rows"));
        let added =
            check_table_against_golden("dse.rs", "to_table", &cols, "g.csv", "workload,pe_rows");
        assert_eq!(added.len(), 1, "{added:?}");
        assert!(added[0].message.contains("exporter adds"));
    }

    #[test]
    fn stats_keys_from_format_strings_and_consumers() {
        let producer = SourceFile::parse(
            "serve.rs",
            "fn stats() -> String { format!(\"requests_total={}\\ncache_hits={}\", a, b) }\n\
             fn meta() -> String { format!(\"index={} delta={}\", i, d) }",
        );
        let produced = keys_produced(&producer);
        assert_eq!(
            produced.iter().map(String::as_str).collect::<Vec<_>>(),
            ["cache_hits", "requests_total"]
        );
        let consumer = SourceFile::parse(
            "it.rs",
            "fn t(m: &Map) { m.get(\"cache_hits\"); m.get(\"bogus_key\"); }",
        );
        let consumed = keys_consumed(&consumer);
        let golden: BTreeSet<String> = produced.clone();
        let findings = check_stats_keys(
            "serve.rs",
            &produced,
            "g.txt",
            &golden,
            &[("it.rs", consumed)],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("bogus_key"));
    }

    #[test]
    fn golden_key_drift_both_directions() {
        let produced: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let golden: BTreeSet<String> = ["b", "c"].iter().map(|s| s.to_string()).collect();
        let findings = check_stats_keys("serve.rs", &produced, "g.txt", &golden, &[]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains('a'));
        assert!(findings[1].message.contains('c'));
    }
}
