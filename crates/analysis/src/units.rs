//! Units-of-measure lint over the cost models.
//!
//! The roofline/energy/area models mix cycles, nanoseconds, picojoules,
//! millijoules, mm², bytes, and GHz across many files. This pass infers a
//! unit for every name from two places and flags quantities of *different*
//! units that are added, subtracted, or compared:
//!
//! * **Name conventions** — a trailing `_<unit>` segment: `_cycles`, `_ns`,
//!   `_ms`, `_s`, `_pj`, `_mj`, `_mw`, `_mm2`, `_bytes`, `_kib`, `_mib`,
//!   `_ghz`, `_gops`, `_volts` (a bare `cycles` / `bytes` name counts too).
//!   Different scales of one dimension (pJ vs mJ, bytes vs KiB, ns vs
//!   cycles) are deliberately *distinct* units: adding them unconverted is
//!   exactly the bug class this pass exists for.
//! * **`// unit: <unit>` annotations** — placed on the line(s) above a
//!   struct field or `fn`, they bind that field/function name to a unit
//!   explicitly, covering names the suffix convention cannot (`r`, `stall`,
//!   lookup tables).
//!
//! Two findings:
//!
//! * `unit-mismatch` — `a + b`, `a - b`, `a < b`, … (incl. `+=`, `-=`, and
//!   `==`/`!=`) where both operands carry different known units.
//! * `unit-missing` — a `pub fn` whose body just returns one unit-carrying
//!   name but whose own name declares no unit and has no `// unit:`
//!   annotation: callers lose the unit at the API boundary.
//!
//! Multiplication and division are unconstrained (they *derive* units —
//! `bytes / cycle`, `pJ × count` — which this lattice does not track).

use crate::lexer::{Tok, TokKind};
use crate::source::{Finding, SourceFile};
use std::collections::BTreeMap;

/// The unit lattice. One variant per (dimension, scale) pair that appears in
/// the models; `Dimensionless` is represented by absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    Cycles,
    Ns,
    Ms,
    Seconds,
    Pj,
    Mj,
    Mw,
    Mm2,
    Bytes,
    Kib,
    Mib,
    Ghz,
    Gops,
    Volts,
}

/// `(suffix, unit)` — checked against the last `_`-separated segment.
const SUFFIXES: &[(&str, Unit)] = &[
    ("cycles", Unit::Cycles),
    ("ns", Unit::Ns),
    ("ms", Unit::Ms),
    ("pj", Unit::Pj),
    ("mj", Unit::Mj),
    ("mw", Unit::Mw),
    ("mm2", Unit::Mm2),
    ("bytes", Unit::Bytes),
    ("kib", Unit::Kib),
    ("mib", Unit::Mib),
    ("ghz", Unit::Ghz),
    ("gops", Unit::Gops),
    ("volts", Unit::Volts),
];

impl Unit {
    pub fn name(self) -> &'static str {
        SUFFIXES
            .iter()
            .find(|(_, u)| *u == self)
            .map(|(s, _)| *s)
            .unwrap_or("s")
    }

    fn parse(name: &str) -> Option<Unit> {
        if name == "s" {
            return Some(Unit::Seconds);
        }
        SUFFIXES.iter().find(|(s, _)| *s == name).map(|(_, u)| *u)
    }
}

/// The unit a bare name carries by convention, if any.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    let segment = name.rsplit('_').next()?;
    // A bare one-segment name only counts for the unambiguous spellings
    // (`cycles`, `bytes`); a trailing `_s` or `_ms` segment always counts.
    if segment == name && !matches!(segment, "cycles" | "bytes") {
        return None;
    }
    // `_s` only as an explicit suffix (`time_s`), never a bare `s`.
    if segment == name {
        return Unit::parse(segment).filter(|u| !matches!(u, Unit::Seconds));
    }
    Unit::parse(segment)
}

/// Per-file `// unit:` annotation table: bound name → unit.
pub struct UnitAnnotations {
    pub by_name: BTreeMap<String, Unit>,
    pub malformed: Vec<Finding>,
}

/// Parses `// unit: <unit>` comments and binds each to the next declared
/// name at or below it: the `fn` name or the `field:`-style identifier.
pub fn parse_annotations(file: &SourceFile) -> UnitAnnotations {
    let mut anns = UnitAnnotations {
        by_name: BTreeMap::new(),
        malformed: Vec::new(),
    };
    let toks = file.toks();
    for comment in &file.lexed.comments {
        let trimmed = comment.text.trim();
        let Some(rest) = trimmed.strip_prefix("unit:") else {
            continue;
        };
        let unit_name = rest.trim();
        let Some(unit) = Unit::parse(unit_name) else {
            anns.malformed.push(Finding {
                file: file.rel.clone(),
                line: comment.line,
                lint: "annotation",
                message: format!(
                    "`// unit: {unit_name}` names no known unit (expected one of: {})",
                    SUFFIXES
                        .iter()
                        .map(|(s, _)| *s)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
            continue;
        };
        match annotated_name(toks, comment.line) {
            Some(name) => {
                anns.by_name.insert(name, unit);
            }
            None => anns.malformed.push(Finding {
                file: file.rel.clone(),
                line: comment.line,
                lint: "annotation",
                message: "`// unit:` annotation binds to no field or fn declaration".to_string(),
            }),
        }
    }
    anns
}

/// The declared name the annotation on `line` binds to: the first `fn name`
/// or `name :`-shaped identifier on a later line (within a few lines).
fn annotated_name(toks: &[Tok], line: usize) -> Option<String> {
    let start = toks.iter().position(|t| t.line > line)?;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.line > line + 4 {
            return None;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("fn") {
            return toks.get(j + 1).map(|n| n.text.clone());
        }
        if t.is_ident("pub") {
            continue;
        }
        // `name : Type` (not `name ::`)
        if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// The unit of the name ending the identifier chain just before token `op_i`
/// (e.g. `self . total_pj` → `total_pj`), or just after it. Annotations win
/// over the suffix convention.
fn operand_unit_before(
    toks: &[Tok],
    op_i: usize,
    anns: &BTreeMap<String, Unit>,
) -> Option<(String, Unit)> {
    let t = toks.get(op_i.checked_sub(1)?)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    lookup(&t.text, anns).map(|u| (t.text.clone(), u))
}

fn operand_unit_after(
    toks: &[Tok],
    mut j: usize,
    anns: &BTreeMap<String, Unit>,
) -> Option<(String, Unit)> {
    // Walk a `self . a . b`-style chain and take its last identifier, as
    // long as the chain is plain idents and dots.
    let mut last: Option<String> = None;
    loop {
        let t = toks.get(j)?;
        if t.kind != TokKind::Ident {
            break;
        }
        last = Some(t.text.clone());
        if toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && !toks.get(j + 3).is_some_and(|t| t.is_punct('('))
        {
            j += 2;
        } else {
            break;
        }
    }
    let name = last?;
    lookup(&name, anns).map(|u| (name, u))
}

fn lookup(name: &str, anns: &BTreeMap<String, Unit>) -> Option<Unit> {
    anns.get(name).copied().or_else(|| unit_of_name(name))
}

/// Runs the units pass over one file.
pub fn units_pass(file: &SourceFile) -> Vec<Finding> {
    let anns = parse_annotations(file);
    let mut findings = anns.malformed.clone();
    for func in file.production_fns() {
        mismatches_in(file, func.body.clone(), &anns.by_name, &mut findings);
    }
    unannotated_pub_fns(file, &anns.by_name, &mut findings);
    findings
}

/// Operator shapes that demand unit agreement: the token chars after the
/// first operator char, e.g. `<` + `=` for `<=`. `..` ranges and generics
/// are excluded by requiring ident operands on both sides.
fn comparison_len(toks: &[Tok], i: usize) -> Option<usize> {
    match toks.get(i)?.kind {
        TokKind::Punct('+') | TokKind::Punct('-') => {
            // `+` / `-` / `+=` / `-=`; exclude `->`.
            if toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                None
            } else if toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
                Some(2)
            } else {
                Some(1)
            }
        }
        TokKind::Punct('<') | TokKind::Punct('>') => {
            // `<` / `>` / `<=` / `>=`; exclude shifts `<<` / `>>`.
            if toks
                .get(i + 1)
                .is_some_and(|t| t.is_punct('<') || t.is_punct('>'))
            {
                None
            } else if toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
                Some(2)
            } else {
                Some(1)
            }
        }
        TokKind::Punct('=') | TokKind::Punct('!') => {
            // Only `==` / `!=`.
            toks.get(i + 1)
                .is_some_and(|t| t.is_punct('='))
                .then_some(2)
        }
        _ => None,
    }
}

fn mismatches_in(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    anns: &BTreeMap<String, Unit>,
    findings: &mut Vec<Finding>,
) {
    let toks = file.toks();
    for i in body {
        let Some(op_len) = comparison_len(toks, i) else {
            continue;
        };
        // `a == b` would double-report at the `=`+`=` pair; only fire on the
        // first operator char.
        if i >= 1 && comparison_len(toks, i - 1) == Some(2) {
            continue;
        }
        let Some((lhs, lu)) = operand_unit_before(toks, i, anns) else {
            continue;
        };
        let Some((rhs, ru)) = operand_unit_after(toks, i + op_len, anns) else {
            continue;
        };
        if lu != ru {
            let op: String = (0..op_len)
                .filter_map(|k| match toks[i + k].kind {
                    TokKind::Punct(c) => Some(c),
                    _ => None,
                })
                .collect();
            findings.push(Finding {
                file: file.rel.clone(),
                line: toks[i].line,
                lint: "unit-mismatch",
                message: format!(
                    "`{lhs} {op} {rhs}` mixes units {} and {} without conversion",
                    lu.name(),
                    ru.name()
                ),
            });
        }
    }
}

/// Flags `pub fn`s whose body is a bare unit-carrying name (`{ self.x_pj }`)
/// but whose own name and annotations declare no unit.
fn unannotated_pub_fns(
    file: &SourceFile,
    anns: &BTreeMap<String, Unit>,
    findings: &mut Vec<Finding>,
) {
    let toks = file.toks();
    for func in file.production_fns() {
        if !func.is_pub || lookup(&func.name, anns).is_some() {
            continue;
        }
        // Body tokens between the braces: `self . name` or `name`.
        let inner: Vec<&Tok> = toks[func.body.start + 1..func.body.end.saturating_sub(1)]
            .iter()
            .collect();
        let returned = match inner.as_slice() {
            [a] if a.kind == TokKind::Ident => Some(&a.text),
            [s, d, a] if s.is_ident("self") && d.is_punct('.') && a.kind == TokKind::Ident => {
                Some(&a.text)
            }
            _ => None,
        };
        let Some(unit) = returned.and_then(|name| lookup(name, anns)) else {
            continue;
        };
        findings.push(Finding {
            file: file.rel.clone(),
            line: func.line,
            lint: "unit-missing",
            message: format!(
                "pub fn `{}` returns a quantity in {} but neither its name nor a `// unit:` \
                 annotation says so",
                func.name,
                unit.name()
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        units_pass(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn suffix_inference_and_bare_names() {
        assert_eq!(unit_of_name("total_pj"), Some(Unit::Pj));
        assert_eq!(unit_of_name("mean_latency_ms"), Some(Unit::Ms));
        assert_eq!(unit_of_name("cycles"), Some(Unit::Cycles));
        assert_eq!(unit_of_name("time_s"), Some(Unit::Seconds));
        assert_eq!(unit_of_name("s"), None, "bare `s` is not a unit name");
        assert_eq!(unit_of_name("rows"), None);
        assert_eq!(unit_of_name("pe_rows"), None);
    }

    #[test]
    fn cross_unit_addition_and_comparison_flagged() {
        let findings = run("fn f(a_pj: f64, b_cycles: f64, c_pj: f64) -> f64 {\n\
             let x = a_pj + b_cycles;\n\
             if a_pj < b_cycles { return x; }\n\
             a_pj + c_pj\n}");
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == "unit-mismatch"));
        assert!(findings[0].message.contains("pj") && findings[0].message.contains("cycles"));
    }

    #[test]
    fn compound_assignment_and_field_chains() {
        let findings = run("struct S { total_mj: f64, leak_pj: f64 }\n\
             impl S { fn add(&mut self, x_pj: f64) { self.total_mj += self.leak_pj; } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("+="), "{findings:?}");
    }

    #[test]
    fn annotations_override_and_malformed_is_reported() {
        let findings = run(
            "struct T {\n    // unit: cycles\n    stall: u64,\n    dram_cycles: u64,\n}\n\
             fn ok(t: &T) -> u64 { t.stall + t.dram_cycles }\n\
             // unit: parsecs\nfn bad() {}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "annotation");
        assert!(findings[0].message.contains("parsecs"));
    }

    #[test]
    fn annotated_mismatch_is_flagged() {
        let findings = run("struct T {\n    // unit: cycles\n    stall: u64,\n}\n\
             fn f(t: &T, lat_ns: u64) -> u64 { t.stall + lat_ns }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "unit-mismatch");
    }

    #[test]
    fn pub_fn_unit_laundering_is_flagged() {
        let findings = run("struct S { mac_pj: f64 }\n\
             impl S {\n\
                 pub fn mac_energy(&self) -> f64 { self.mac_pj }\n\
                 pub fn mac_energy_pj(&self) -> f64 { self.mac_pj }\n\
                 // unit: pj\n\
                 pub fn per_op(&self) -> f64 { self.mac_pj }\n\
             }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, "unit-missing");
        assert!(findings[0].message.contains("mac_energy"));
    }

    #[test]
    fn generics_shifts_and_ranges_do_not_trip() {
        let findings = run(
            "fn f(map: Vec<u64>, x_bytes: u64, n_cycles: u64) -> u64 {\n\
             let v: Vec<u64> = Vec::new();\n\
             let y = x_bytes << 2;\n\
             for i in 0..x_bytes { }\n\
             x_bytes * n_cycles\n}",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
