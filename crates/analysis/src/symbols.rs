//! Workspace-wide symbol index: every `fn` item across the loaded files,
//! attributed to its `impl` type where one encloses it and to its lexically
//! enclosing function when it is a nested local `fn`.
//!
//! The index is the substrate the call graph resolves against. It stays at
//! the lexer's altitude on purpose: names and brace ranges, no types beyond
//! the `impl` header's last path segment. Where that is ambiguous the call
//! graph falls back to every same-name candidate, which is conservative for
//! all downstream passes (reachability can only over-approximate).

use crate::lexer::TokKind;
use crate::source::{matching_brace, SourceFile};
use std::collections::BTreeMap;
use std::ops::Range;

/// One function symbol: `(file, fn index)` plus resolution metadata.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into the file slice the index was built over.
    pub file: usize,
    /// Index into that file's `SourceFile::fns`.
    pub fn_idx: usize,
    pub name: String,
    /// Last path segment of the enclosing `impl` header's self type
    /// (`impl Trait for Type` attributes to `Type`).
    pub self_type: Option<String>,
    /// Symbol index of the lexically enclosing function for nested local
    /// `fn` items; calls inside the parent prefer these over same-name
    /// items elsewhere (shadowing).
    pub parent_fn: Option<usize>,
    /// Defined inside a `#[cfg(test)]` / `mod tests` region.
    pub is_test: bool,
}

/// Name-keyed lookup over every function in the analyzed file set.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    pub syms: Vec<FnSym>,
    /// Production (non-test) symbols by bare name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Production symbols by `(self type, method name)`.
    by_type_method: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolIndex {
    pub fn build(files: &[SourceFile]) -> SymbolIndex {
        let mut index = SymbolIndex::default();
        for (fi, file) in files.iter().enumerate() {
            let impls = impl_ranges(file);
            for (gi, func) in file.fns.iter().enumerate() {
                let self_type = impls
                    .iter()
                    .filter(|(range, _)| range.contains(&func.body.start))
                    .min_by_key(|(range, _)| range.end - range.start)
                    .map(|(_, ty)| ty.clone());
                index.syms.push(FnSym {
                    file: fi,
                    fn_idx: gi,
                    name: func.name.clone(),
                    self_type,
                    parent_fn: None,
                    is_test: file.in_tests(func.body.start),
                });
            }
        }
        // Nested local fns: the parent is the smallest enclosing body in the
        // same file. Symbols are pushed in file order, so a linear scan per
        // file suffices.
        let parents: Vec<Option<usize>> = index
            .syms
            .iter()
            .map(|sym| {
                let body = &files[sym.file].fns[sym.fn_idx].body;
                index
                    .syms
                    .iter()
                    .enumerate()
                    .filter(|(_, other)| {
                        other.file == sym.file && {
                            let ob = &files[other.file].fns[other.fn_idx].body;
                            ob.start < body.start && body.end <= ob.end
                        }
                    })
                    .min_by_key(|(_, other)| {
                        let ob = &files[other.file].fns[other.fn_idx].body;
                        ob.end - ob.start
                    })
                    .map(|(si, _)| si)
            })
            .collect();
        for (sym, parent) in index.syms.iter_mut().zip(parents) {
            sym.parent_fn = parent;
        }
        for (si, sym) in index.syms.iter().enumerate() {
            if sym.is_test {
                continue;
            }
            index.by_name.entry(sym.name.clone()).or_default().push(si);
            if let Some(ty) = &sym.self_type {
                index
                    .by_type_method
                    .entry((ty.clone(), sym.name.clone()))
                    .or_default()
                    .push(si);
            }
        }
        index
    }

    /// All production symbols with the given bare name.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Production symbols for `Type::method`.
    pub fn by_type_method(&self, ty: &str, method: &str) -> &[usize] {
        self.by_type_method
            .get(&(ty.to_string(), method.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// The nested local fn named `name` defined directly inside `caller`,
    /// if any — local definitions shadow the workspace-wide namespace.
    pub fn local_fn(&self, caller: usize, name: &str) -> Option<usize> {
        self.syms
            .iter()
            .position(|s| s.parent_fn == Some(caller) && s.name == name)
    }
}

/// `(body token range, self-type last segment)` for every `impl` block.
/// Handles `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`, and stops at
/// a `where` clause; trait-object and primitive impls resolve to their last
/// identifier segment, which is all the call graph keys on.
fn impl_ranges(file: &SourceFile) -> Vec<(Range<usize>, String)> {
    let toks = file.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("impl") {
            continue;
        }
        let mut angle = 0i64;
        let mut candidate: Option<String> = None;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('{') if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(';') if angle <= 0 => break,
                TokKind::Ident if angle <= 0 => {
                    if t.is_ident("where") {
                        break;
                    }
                    if t.is_ident("for") {
                        candidate = None;
                    } else {
                        candidate = Some(t.text.clone());
                    }
                }
                _ => {}
            }
            if j > i + 128 {
                break;
            }
        }
        if let (Some(open), Some(ty)) = (open, candidate) {
            out.push((open..matching_brace(toks, open) + 1, ty));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolIndex) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let index = SymbolIndex::build(&files);
        (files, index)
    }

    #[test]
    fn impl_blocks_attribute_methods_including_trait_impls() {
        let (_, index) = index_of(&[(
            "a.rs",
            r#"
            struct Foo;
            impl Foo { fn direct(&self) {} }
            trait Run { fn go(&self); }
            impl Run for Foo { fn go(&self) {} }
            impl<T: Clone> Wrapper<T> { fn generic(&self) {} }
            "#,
        )]);
        assert_eq!(index.by_type_method("Foo", "direct").len(), 1);
        assert_eq!(
            index.by_type_method("Foo", "go").len(),
            1,
            "`impl Trait for Type` must attribute to Type, not Trait"
        );
        assert!(index.by_type_method("Run", "go").is_empty());
        assert_eq!(index.by_type_method("Wrapper", "generic").len(), 1);
    }

    #[test]
    fn nested_local_fns_get_a_parent() {
        let (_, index) = index_of(&[(
            "a.rs",
            "fn outer() { fn helper() {} helper(); }\nfn helper() {}",
        )]);
        let outer = index.by_name("outer")[0];
        let local = index.local_fn(outer, "helper").expect("local fn indexed");
        assert_eq!(index.syms[local].parent_fn, Some(outer));
        assert_eq!(index.by_name("helper").len(), 2);
    }

    #[test]
    fn test_mod_fns_are_indexed_but_not_resolvable() {
        let (_, index) = index_of(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}",
        )]);
        assert!(index.by_name("helper").is_empty());
        assert_eq!(index.by_name("real").len(), 1);
        assert!(index.syms.iter().any(|s| s.name == "helper" && s.is_test));
    }
}
