//! Lock-order analysis over the serve-path sources.
//!
//! The repo declares one total acquisition order — `state → stream-entry →
//! inflight-slot`, with the worker-pool budget tokens as a leaf class that
//! never nests — and this pass checks every function against it with a
//! scope-nesting approximation of guard lifetimes:
//!
//! * An acquisition site is either the blessed wrapper
//!   `lock_ranked(&…, Rank::X)` (classified by the rank identifier) or a raw
//!   `recv.lock()` call (classified by the receiver's last path segment).
//!   A receiver the pass cannot classify is itself a finding.
//! * A `let`-bound guard lives to the end of its enclosing brace scope; an
//!   `if let` / `while let` / `match` binding attaches to the block that
//!   follows; an unbound (temporary) guard lives to the end of its
//!   statement; `drop(guard)` kills a guard early.
//! * Acquiring class `B` while a guard of class `A` is live records edge
//!   `A → B`. Any edge that does not strictly increase in rank is an
//!   inversion finding, and the cross-function edge graph is searched for
//!   cycles — the PR-7 ABBA deadlock shows up as both.
//!
//! Limitation (by design): guards are tracked per function body, so an
//! inversion split across a call boundary is invisible here — that is what
//! the runtime lockdep witness in `serve.rs` is for.

use crate::lexer::{Tok, TokKind};
use crate::source::{Finding, FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Lock classes in declared acquisition order (rank = discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    State = 0,
    StreamEntry = 1,
    InflightSlot = 2,
    /// `ConcurrencyBudget.tokens` in `pool.rs`: a leaf — nothing may be held
    /// while it is taken, and it ranks after everything else.
    BudgetTokens = 3,
}

impl LockClass {
    fn name(self) -> &'static str {
        match self {
            LockClass::State => "state",
            LockClass::StreamEntry => "stream-entry",
            LockClass::InflightSlot => "inflight-slot",
            LockClass::BudgetTokens => "budget-tokens",
        }
    }

    fn rank(self) -> u8 {
        self as u8
    }
}

pub const DECLARED_ORDER: &str = "state → stream-entry → inflight-slot → budget-tokens";

/// Receiver last-segment → class, for raw `recv.lock()` sites. A suffix like
/// `entry_a` classifies as `entry`.
const RECEIVER_CLASSES: &[(&str, LockClass)] = &[
    ("state", LockClass::State),
    ("entry", LockClass::StreamEntry),
    ("slot", LockClass::InflightSlot),
    ("tokens", LockClass::BudgetTokens),
];

/// `Rank::X` identifier → class, for `lock_ranked(&…, Rank::X)` sites.
const RANK_CLASSES: &[(&str, LockClass)] = &[
    ("State", LockClass::State),
    ("StreamEntry", LockClass::StreamEntry),
    ("InflightSlot", LockClass::InflightSlot),
];

#[derive(Debug, Clone)]
struct Guard {
    class: LockClass,
    var: Option<String>,
    /// Brace depth whose closing `}` releases this guard.
    scope_depth: usize,
    /// Waiting for the next `{` (an `if let` / `while let` / `match` head).
    pending_block: bool,
    /// Unbound temporary: released at the end of the statement.
    temp: bool,
    line: usize,
}

/// A held-while-acquiring observation, kept for cycle reporting.
#[derive(Debug, Clone)]
struct Edge {
    held: LockClass,
    acquired: LockClass,
    file: String,
    func: String,
    line: usize,
}

pub fn lock_order_pass(files: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for file in files {
        for func in file.production_fns() {
            // The wrapper is the one blessed site whose raw `.lock()` has a
            // generic receiver; its discipline is the witness's job.
            if func.name == "lock_ranked" {
                continue;
            }
            analyze_fn(file, func, &mut findings, &mut edges);
        }
    }
    findings.extend(cycle_findings(&edges));
    findings
}

fn analyze_fn(
    file: &SourceFile,
    func: &FnItem,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<Edge>,
) {
    let toks = file.toks();
    let body = func.body.clone();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = body.start;
    while i < body.end {
        let tok = &toks[i];
        match tok.kind {
            TokKind::Punct('{') => {
                depth += 1;
                for g in &mut guards {
                    if g.pending_block {
                        g.scope_depth = depth;
                        g.pending_block = false;
                    }
                }
            }
            TokKind::Punct('}') => {
                guards.retain(|g| g.pending_block || g.scope_depth < depth);
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') => {
                guards.retain(|g| !g.temp);
            }
            TokKind::Ident => {
                if let Some((class, span)) = acquisition_at(file, func, toks, i, findings) {
                    record_acquisition(
                        file,
                        func,
                        toks,
                        body.start,
                        i,
                        class,
                        depth,
                        &mut guards,
                        findings,
                        edges,
                    );
                    i = span;
                    continue;
                }
                if tok.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    if let (Some(var), Some(close)) = (toks.get(i + 2), toks.get(i + 3)) {
                        if var.kind == TokKind::Ident && close.is_punct(')') {
                            if let Some(pos) = guards
                                .iter()
                                .rposition(|g| g.var.as_deref() == Some(var.text.as_str()))
                            {
                                guards.remove(pos);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Classifies an acquisition site at token `i`, if any. Returns the class
/// and the token index to resume scanning from.
fn acquisition_at(
    file: &SourceFile,
    func: &FnItem,
    toks: &[Tok],
    i: usize,
    findings: &mut Vec<Finding>,
) -> Option<(LockClass, usize)> {
    let tok = &toks[i];
    if tok.is_ident("lock_ranked") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        let close = matching_paren(toks, i + 1);
        for j in i + 2..close {
            if toks[j].is_ident("Rank") {
                if let Some(rank_ident) = toks.get(j + 3) {
                    if let Some(&(_, class)) = RANK_CLASSES
                        .iter()
                        .find(|(name, _)| rank_ident.is_ident(name))
                    {
                        return Some((class, close));
                    }
                }
            }
        }
        findings.push(Finding {
            file: file.rel.clone(),
            line: tok.line,
            lint: "lock-order",
            message: format!(
                "lock_ranked call in `{}` has no recognizable Rank::… argument",
                func.name
            ),
        });
        return None;
    }
    // recv.lock(…)
    if tok.is_ident("lock")
        && i >= 2
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        let recv = &toks[i - 2];
        if recv.kind != TokKind::Ident {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "lock-order",
                message: format!(
                    "`.lock()` in `{}` on an expression receiver the lock pass cannot classify; \
                     bind the mutex to a named local first",
                    func.name
                ),
            });
            return None;
        }
        let classified = RECEIVER_CLASSES.iter().find(|(key, _)| {
            recv.text == *key
                || recv
                    .text
                    .strip_prefix(key)
                    .is_some_and(|r| r.starts_with('_'))
        });
        match classified {
            Some(&(_, class)) => return Some((class, i + 1)),
            None => {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: tok.line,
                    lint: "lock-order",
                    message: format!(
                        "`.lock()` in `{}` on receiver `{}` which maps to no declared lock class \
                         (known: state, entry, slot, tokens)",
                        func.name, recv.text
                    ),
                });
                return None;
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    file: &SourceFile,
    func: &FnItem,
    toks: &[Tok],
    body_start: usize,
    i: usize,
    class: LockClass,
    depth: usize,
    guards: &mut Vec<Guard>,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<Edge>,
) {
    let line = toks[i].line;
    for g in guards.iter() {
        edges.push(Edge {
            held: g.class,
            acquired: class,
            file: file.rel.clone(),
            func: func.name.clone(),
            line,
        });
        if g.class.rank() >= class.rank() {
            findings.push(Finding {
                file: file.rel.clone(),
                line,
                lint: "lock-order",
                message: format!(
                    "`{}` acquires '{}' while holding '{}' (taken line {}); declared order: {}",
                    func.name,
                    class.name(),
                    g.class.name(),
                    g.line,
                    DECLARED_ORDER
                ),
            });
        }
    }
    // Statement shape: walk back to the nearest `;` / `{` / `}`.
    let mut stmt_first = i;
    let mut j = i;
    while j > body_start {
        j -= 1;
        if matches!(toks[j].kind, TokKind::Punct(';' | '{' | '}')) {
            break;
        }
        stmt_first = j;
    }
    let head = &toks[stmt_first];
    let conditional = head.is_ident("if") || head.is_ident("while") || head.is_ident("match");
    let var = (stmt_first..i)
        .find(|&k| toks[k].is_ident("let"))
        .and_then(|let_at| bound_var(toks, let_at, i));
    let bound = var.is_some();
    guards.push(Guard {
        class,
        var,
        scope_depth: depth,
        pending_block: conditional,
        temp: !bound && !conditional,
        line,
    });
}

/// The variable a `let` at `let_at` binds, unwrapping one layer of
/// `Ok(…)` / `Some(…)` / `Err(…)` patterns and skipping `mut`.
fn bound_var(toks: &[Tok], let_at: usize, limit: usize) -> Option<String> {
    let mut k = let_at + 1;
    while k < limit && (toks[k].is_ident("mut") || toks[k].kind != TokKind::Ident) {
        k += 1;
    }
    let first = toks.get(k)?;
    if matches!(first.text.as_str(), "Ok" | "Some" | "Err")
        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
    {
        let mut inner = k + 2;
        while inner < limit && toks[inner].is_ident("mut") {
            inner += 1;
        }
        return toks.get(inner).map(|t| t.text.clone());
    }
    Some(first.text.clone())
}

fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Reports each elementary cycle in the class-level edge graph once, with an
/// example site per edge.
fn cycle_findings(edges: &[Edge]) -> Vec<Finding> {
    let mut adjacency: BTreeMap<LockClass, BTreeSet<LockClass>> = BTreeMap::new();
    let mut example: BTreeMap<(LockClass, LockClass), &Edge> = BTreeMap::new();
    for e in edges {
        if e.held == e.acquired {
            continue; // self-edges are already inversion findings
        }
        adjacency.entry(e.held).or_default().insert(e.acquired);
        example.entry((e.held, e.acquired)).or_insert(e);
    }
    let nodes: Vec<LockClass> = adjacency.keys().copied().collect();
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<LockClass>> = BTreeSet::new();
    for &start in &nodes {
        let mut path = vec![start];
        dfs_cycles(&adjacency, start, start, &mut path, &mut reported);
    }
    for cycle in reported {
        let mut names: Vec<&str> = cycle.iter().map(|c| c.name()).collect();
        names.push(cycle[0].name());
        let sites: Vec<String> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(a, b)| example.get(&(*a, *b)))
            .map(|e| format!("{}:{} in `{}`", e.file, e.line, e.func))
            .collect();
        let first = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(a, b)| example.get(&(*a, *b)))
            .map(|e| e.line)
            .min()
            .unwrap_or(0);
        findings.push(Finding {
            file: example
                .get(&(cycle[0], cycle[1 % cycle.len()]))
                .map(|e| e.file.clone())
                .unwrap_or_default(),
            line: first,
            lint: "lock-order",
            message: format!(
                "lock-order cycle: {} (edges: {})",
                names.join(" → "),
                sites.join(", ")
            ),
        });
    }
    findings
}

fn dfs_cycles(
    adjacency: &BTreeMap<LockClass, BTreeSet<LockClass>>,
    start: LockClass,
    at: LockClass,
    path: &mut Vec<LockClass>,
    reported: &mut BTreeSet<Vec<LockClass>>,
) {
    let Some(nexts) = adjacency.get(&at) else {
        return;
    };
    for &next in nexts {
        if next == start {
            // Canonicalize: rotate so the smallest class leads.
            let min_at = path
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut canon = path[min_at..].to_vec();
            canon.extend_from_slice(&path[..min_at]);
            reported.insert(canon);
        } else if !path.contains(&next) {
            path.push(next);
            dfs_cycles(adjacency, start, next, path, reported);
            path.pop();
        }
    }
}
