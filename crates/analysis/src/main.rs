//! `spade-lint` CLI. Exit codes: 0 clean, 1 findings, 2 usage/io error.
//!
//! ```text
//! spade-lint [--root DIR]                  # all passes over the workspace
//! spade-lint [--root DIR] --summary        # render the allowlist (stdout)
//! spade-lint [--root DIR] --json           # machine-readable run report
//! spade-lint --lock-order FILE...          # lock pass only, explicit files
//! spade-lint --determinism FILE...         # taint pass only
//! spade-lint --panics FILE...              # panic-surface pass only
//! spade-lint --units FILE...               # units-of-measure pass only
//! spade-lint --schema GOLDEN.csv FILE...   # table schema vs a golden header
//! ```

use spade_analysis::{analyze_files, analyze_tree, render_json, render_summary, Analysis, Pass};
use std::path::PathBuf;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: spade-lint [--root DIR] [--summary] [--json] \
         [--lock-order|--determinism|--panics|--units FILE...] \
         [--schema GOLDEN FILE...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut root = PathBuf::from(".");
    let mut summary = false;
    let mut json = false;
    let mut pass: Option<(Pass, Vec<String>)> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage_error("--root expects a directory")),
                )
            }
            "--summary" => summary = true,
            "--json" => json = true,
            "--lock-order" => pass = Some((Pass::LockOrder, it.by_ref().collect())),
            "--determinism" => pass = Some((Pass::Determinism, it.by_ref().collect())),
            "--panics" => pass = Some((Pass::Panics, it.by_ref().collect())),
            "--units" => pass = Some((Pass::Units, it.by_ref().collect())),
            "--schema" => {
                let golden = it
                    .next()
                    .unwrap_or_else(|| usage_error("--schema expects a golden CSV then files"));
                pass = Some((Pass::Schema(golden), it.by_ref().collect()));
            }
            flag => usage_error(&format!("unknown flag: {flag}")),
        }
    }
    let analysis = match &pass {
        Some((which, files)) if !files.is_empty() => analyze_files(files, which),
        Some(_) => usage_error("pass flags expect at least one file"),
        None => analyze_tree(&root),
    };
    let analysis: Analysis = analysis.unwrap_or_else(|e| {
        eprintln!("spade-lint: {e}");
        std::process::exit(2);
    });
    if summary {
        print!("{}", render_summary(&analysis));
        return;
    }
    if json {
        print!("{}", render_json(&analysis));
        if !analysis.findings.is_empty() {
            std::process::exit(1);
        }
        return;
    }
    for finding in &analysis.findings {
        println!("{}", finding.render());
    }
    if analysis.findings.is_empty() {
        println!(
            "spade-lint: clean — 0 findings across {} files ({} sites suppressed by {} annotations)",
            analysis.files_analyzed,
            analysis.suppressed,
            analysis.allows.len()
        );
    } else {
        println!(
            "spade-lint: {} finding(s) ({} suppressed by annotations)",
            analysis.findings.len(),
            analysis.suppressed
        );
        std::process::exit(1);
    }
}
