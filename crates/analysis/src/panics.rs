//! Panic-surface audit of the request-handling call graph.
//!
//! A panic in a handler thread kills one connection silently (or poisons a
//! lock for everyone else), so every potentially-panicking site reachable
//! from the serve path must carry a `// lint:allow(panic): reason`
//! annotation stating why it cannot fire on malformed input.
//!
//! Reachability is computed over the functions defined in the audited files
//! (`serve.rs`, `protocol.rs`): edges are `name(…)` / `.name(…)` calls that
//! match a defined function name (macros — `name!(…)` — excluded), rooted at
//! `handle_connection`, `accept_loop`, and every `fn drop` (Drop impls run
//! on handler unwind paths). Test-module functions are out of scope. Calls
//! into other crates are deliberately not followed: the audit bounds the
//! serve layer itself, not the simulator underneath it.

use crate::lexer::TokKind;
use crate::source::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub const PANIC_ROOTS: &[&str] = &["handle_connection", "accept_loop", "drop"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn panic_pass(files: &[&SourceFile]) -> Vec<Finding> {
    // name → every production definition site (collisions union, which is
    // conservative: a flagged site is never hidden by a same-named sibling).
    let mut defs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, func) in file.fns.iter().enumerate() {
            if !file.in_tests(func.body.start) {
                defs.entry(func.name.as_str()).or_default().push((fi, gi));
            }
        }
    }
    // BFS from the roots, remembering one parent per function for the
    // "reachable via …" chain in messages.
    let mut parent: BTreeMap<(usize, usize), Option<(usize, usize)>> = BTreeMap::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for root in PANIC_ROOTS {
        for &site in defs.get(root).into_iter().flatten() {
            parent.entry(site).or_insert(None);
            queue.push_back(site);
        }
    }
    while let Some(site) = queue.pop_front() {
        let (fi, gi) = site;
        for callee in calls_in(files[fi], gi) {
            for &next in defs.get(callee.as_str()).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some(site));
                    queue.push_back(next);
                }
            }
        }
    }
    let mut findings = Vec::new();
    for &site in parent.keys() {
        let (fi, gi) = site;
        let file = files[fi];
        let func = &file.fns[gi];
        let chain = root_chain(&parent, files, site);
        let toks = file.toks();
        for i in func.body.clone() {
            let tok = &toks[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let method_panic = matches!(tok.text.as_str(), "unwrap" | "expect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            let macro_panic = PANIC_MACROS.contains(&tok.text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if method_panic || macro_panic {
                let what = if method_panic {
                    format!(".{}()", tok.text)
                } else {
                    format!("{}!", tok.text)
                };
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: tok.line,
                    lint: "panic",
                    message: format!(
                        "`{what}` in the request-handling path ({chain}); annotate with \
                         lint:allow(panic) or return an error",
                    ),
                });
            }
        }
    }
    findings
}

/// Callee names invoked from function `gi` of `file`: identifiers followed
/// by `(`, excluding macro invocations and the definition's own `fn` name.
fn calls_in(file: &SourceFile, gi: usize) -> BTreeSet<String> {
    let func = &file.fns[gi];
    let toks = file.toks();
    let mut out = BTreeSet::new();
    for i in func.body.clone() {
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !(i >= 1 && toks[i - 1].is_ident("fn"))
        {
            out.insert(toks[i].text.clone());
        }
    }
    out
}

/// Renders `reachable via accept_loop → handle_sweep → fulfil`.
fn root_chain(
    parent: &BTreeMap<(usize, usize), Option<(usize, usize)>>,
    files: &[&SourceFile],
    site: (usize, usize),
) -> String {
    let mut names = Vec::new();
    let mut at = Some(site);
    while let Some(s) = at {
        names.push(files[s.0].fns[s.1].name.clone());
        at = parent.get(&s).copied().flatten();
        if names.len() > 16 {
            break;
        }
    }
    names.reverse();
    format!("reachable via {}", names.join(" → "))
}
