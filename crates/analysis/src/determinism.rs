//! Determinism lints over result-affecting modules.
//!
//! The repo pins byte-identical exports (CSV/JSON reports, rule books,
//! protocol payloads), so two things are banned in the modules that feed
//! them unless explicitly annotated:
//!
//! * **Hash-order iteration** — any `.iter()`-family call or `for` loop over
//!   a `HashMap`/`HashSet` named local, field, or static. Iteration order is
//!   randomized per process, so it may only feed order-insensitive
//!   reductions or sorted collections, stated via
//!   `// lint:allow(hash-iter): reason`.
//! * **Wall-clock reads** — `SystemTime::now()`, `Instant::now()`, and
//!   thread-id reads. Timing-only uses (deadlines, throughput reports) are
//!   annotated with `// lint:allow(wall-clock): reason`.
//!
//! Hash-typed names are discovered syntactically: a `name: …HashMap…` field
//! or typed binding, or a `let name = …HashMap/HashSet…;` initializer.

use crate::lexer::TokKind;
use crate::source::{Finding, SourceFile};
use std::collections::BTreeSet;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

pub fn determinism_pass(file: &SourceFile) -> Vec<Finding> {
    let names = hash_names(file);
    let mut findings = Vec::new();
    let toks = file.toks();
    for i in 0..toks.len() {
        if file.in_tests(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let tok = &toks[i];
        // name.iter() / recv.name.keys() / …
        if ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks[i - 2].kind == TokKind::Ident
            && names.contains(&toks[i - 2].text)
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "hash-iter",
                message: format!(
                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic order in a \
                     result-affecting module",
                    toks[i - 2].text,
                    tok.text
                ),
            });
        }
        // for pat in name { … }
        if tok.is_ident("for") {
            if let Some(name_line) = for_loop_over(file, i, &names) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: name_line.1,
                    lint: "hash-iter",
                    message: format!(
                        "`for … in {}` iterates a HashMap/HashSet in nondeterministic order in a \
                         result-affecting module",
                        name_line.0
                    ),
                });
            }
        }
        // SystemTime::now() / Instant::now()
        if (tok.is_ident("SystemTime") || tok.is_ident("Instant"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "wall-clock",
                message: format!(
                    "`{}::now()` read in a result-affecting module; annotate timing-only uses",
                    tok.text
                ),
            });
        }
        // thread::current().id()
        if tok.is_ident("current")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
            && toks.get(i + 4).is_some_and(|t| t.is_ident("id"))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "wall-clock",
                message: "thread-id read in a result-affecting module".to_string(),
            });
        }
    }
    findings
}

/// If the `for` at token `i` loops directly over a hash-named variable,
/// returns (name, line of the name token).
fn for_loop_over(file: &SourceFile, i: usize, names: &BTreeSet<String>) -> Option<(String, usize)> {
    let toks = file.toks();
    let mut nest = 0i64;
    let mut j = i + 1;
    // Find the `in` of this loop header (patterns may contain parens).
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct('(' | '[') => nest += 1,
            TokKind::Punct(')' | ']') => nest -= 1,
            TokKind::Punct('{' | ';') => return None,
            TokKind::Ident if nest == 0 && t.is_ident("in") => break,
            _ => {}
        }
        j += 1;
        if j > i + 32 {
            return None;
        }
    }
    let mut k = j + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        k += 1;
    }
    let name = toks.get(k)?;
    if name.kind == TokKind::Ident
        && names.contains(&name.text)
        && toks.get(k + 1).is_some_and(|t| t.is_punct('{'))
    {
        return Some((name.text.clone(), name.line));
    }
    None
}

/// Names whose type or initializer mentions `HashMap`/`HashSet`, outside
/// test modules: struct fields, typed bindings/params, and `let` inits.
fn hash_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = file.toks();
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if file.in_tests(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: …HashMap…` up to a delimiter at angle-depth zero.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut angle = 0i64;
            for j in i + 2..(i + 64).min(toks.len()) {
                match toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct(',' | ';' | '{' | '}' | ')' | '=') if angle <= 0 => break,
                    TokKind::Ident
                        if toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet") =>
                    {
                        names.insert(toks[i].text.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] name = … HashMap/HashSet …;`
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            while toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k) else { continue };
            if name.kind != TokKind::Ident {
                continue;
            }
            for t in &toks[k + 1..(k + 128).min(toks.len())] {
                match t.kind {
                    TokKind::Punct(';') => break,
                    TokKind::Ident if t.is_ident("HashMap") || t.is_ident("HashSet") => {
                        names.insert(name.text.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    names
}
