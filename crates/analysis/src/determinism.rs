//! Determinism taint: source→sink propagation over the workspace call graph.
//!
//! The repo pins byte-identical exports (CSV/JSON reports, rule books,
//! protocol payloads, cache keys). Instead of a hand-maintained list of
//! "result-affecting modules", this pass computes which functions can feed
//! those exports and flags nondeterminism *sources* inside them:
//!
//! * **Sources** — hash-container iteration (`map.iter()`, `for … in set`),
//!   wall-clock/thread-id reads, and unseeded RNG construction
//!   (`thread_rng()`, `from_entropy()`, `rand::random()`).
//! * **Sinks** — [`ReportTable`] cell writes (`push_row`), protocol response
//!   encoding (`Response::ok` / `Response::encode`, `encode_params`,
//!   `encode_request`), `cache_key`, and rule-book construction
//!   (`RuleBook::streamed` / `push_output` / `push`).
//!
//! A function is **covered** when a sink transitively reaches it through the
//! call graph in either direction: it can *reach a sink* (its return value
//! or side effects feed an export) or it is *called beneath* such a function
//! (its output flows upward into one). Every source site in a covered
//! function is a finding, reported with the full chain — e.g.
//! `HashMap::iter in X → called by Y → feeds push_row` — so a new module is
//! covered the moment any export path touches it, with no list to maintain.
//!
//! Suppression stays per-site: `// lint:allow(hash-iter|wall-clock|
//! unseeded-rng): reason`.
//!
//! [`ReportTable`]: ../../spade_core/report/struct.ReportTable.html

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::source::{Finding, SourceFile};
use crate::symbols::SymbolIndex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Unseeded RNG constructors: all randomness in this repo must come from
/// seeded SplitMix64 streams.
const RNG_SOURCES: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// `(receiver type constraint, callee name)` pairs that count as export
/// sinks. A `None` constraint matches any receiver.
const SINK_CALLS: &[(Option<&str>, &str)] = &[
    (None, "push_row"),
    (None, "cache_key"),
    (None, "encode_params"),
    (None, "encode_request"),
    (Some("Response"), "ok"),
    (Some("Response"), "encode"),
    (Some("RuleBook"), "streamed"),
    (Some("RuleBook"), "push_output"),
    (Some("RuleBook"), "push"),
];

/// Everything the taint pass computes: findings plus the per-file coverage
/// set the legacy-list regression check asserts against.
#[derive(Debug, Default)]
pub struct TaintAnalysis {
    pub findings: Vec<Finding>,
    /// Workspace-relative paths of files with at least one covered
    /// production function.
    pub covered_files: BTreeSet<String>,
}

/// How a covered function connects to a sink, for chain rendering.
struct Coverage {
    /// `sym → (next sym toward the sink, sink callee name if this sym holds
    /// the sink site itself)`.
    toward_sink: BTreeMap<usize, (Option<usize>, Option<String>)>,
    /// For descendants of sink-reaching functions: the caller one step
    /// closer to the sink-reaching set.
    via_caller: BTreeMap<usize, usize>,
}

pub fn taint_pass(files: &[SourceFile], index: &SymbolIndex, graph: &CallGraph) -> TaintAnalysis {
    let coverage = compute_coverage(index, graph);
    let mut analysis = TaintAnalysis::default();
    for (si, sym) in index.syms.iter().enumerate() {
        if sym.is_test || !is_covered(&coverage, si) {
            continue;
        }
        let file = &files[sym.file];
        analysis.covered_files.insert(file.rel.clone());
        let chain = render_chain(index, &coverage, si);
        source_sites(file, sym.fn_idx, &chain, &mut analysis.findings);
    }
    analysis
}

fn is_covered(coverage: &Coverage, si: usize) -> bool {
    coverage.toward_sink.contains_key(&si) || coverage.via_caller.contains_key(&si)
}

/// Files with at least one covered production fn, without scanning for
/// sources — used by `analyze_tree`'s legacy-list cross-check.
pub fn covered_files(
    files: &[SourceFile],
    index: &SymbolIndex,
    graph: &CallGraph,
) -> BTreeSet<String> {
    let coverage = compute_coverage(index, graph);
    index
        .syms
        .iter()
        .enumerate()
        .filter(|(si, sym)| !sym.is_test && is_covered(&coverage, *si))
        .map(|(_, sym)| files[sym.file].rel.clone())
        .collect()
}

fn compute_coverage(index: &SymbolIndex, graph: &CallGraph) -> Coverage {
    let mut coverage = Coverage {
        toward_sink: BTreeMap::new(),
        via_caller: BTreeMap::new(),
    };
    // Seed: functions containing a sink call site.
    let mut queue: VecDeque<usize> = VecDeque::new();
    for site in &graph.sites {
        let matches = SINK_CALLS.iter().any(|(ty, name)| {
            site.name == *name && ty.is_none_or(|t| site.recv_type.as_deref() == Some(t))
        });
        if matches && !coverage.toward_sink.contains_key(&site.caller) {
            coverage
                .toward_sink
                .insert(site.caller, (None, Some(site.name.clone())));
            queue.push_back(site.caller);
        }
    }
    // Backward over callers: anything that calls a sink-reaching fn reaches
    // the sink itself.
    while let Some(at) = queue.pop_front() {
        for &caller in &graph.callers[at] {
            if let std::collections::btree_map::Entry::Vacant(e) =
                coverage.toward_sink.entry(caller)
            {
                e.insert((Some(at), None));
                queue.push_back(caller);
            }
        }
    }
    // Forward over callees: helpers invoked beneath a sink-reaching fn feed
    // their results upward into it.
    let mut fwd: VecDeque<usize> = coverage.toward_sink.keys().copied().collect();
    while let Some(at) = fwd.pop_front() {
        for &callee in &graph.callees[at] {
            if index.syms[callee].is_test {
                continue;
            }
            if !coverage.toward_sink.contains_key(&callee)
                && !coverage.via_caller.contains_key(&callee)
            {
                coverage.via_caller.insert(callee, at);
                fwd.push_back(callee);
            }
        }
    }
    coverage
}

/// Renders the call chain from `si` to the sink it is covered by, e.g.
/// `collect_rows → called by export_table → feeds push_row`.
fn render_chain(index: &SymbolIndex, coverage: &Coverage, si: usize) -> String {
    let mut parts: Vec<String> = vec![format!("`{}`", index.syms[si].name)];
    let mut at = si;
    let mut hops = 0;
    // Climb callers until we land in the sink-reaching set.
    while let Some(&caller) = coverage.via_caller.get(&at) {
        parts.push(format!("called by `{}`", index.syms[caller].name));
        at = caller;
        hops += 1;
        if hops > 12 {
            break;
        }
    }
    // Walk the sink-reaching chain forward to the sink site.
    loop {
        match coverage.toward_sink.get(&at) {
            Some((_, Some(sink_name))) => {
                parts.push(format!("feeds `{sink_name}`"));
                break;
            }
            Some((Some(next), None)) => {
                parts.push(format!("calls `{}`", index.syms[*next].name));
                at = *next;
            }
            _ => break,
        }
        hops += 1;
        if hops > 24 {
            parts.push("…".to_string());
            break;
        }
    }
    parts.join(" → ")
}

/// Scans one production fn body for nondeterminism source sites.
fn source_sites(file: &SourceFile, fn_idx: usize, chain: &str, findings: &mut Vec<Finding>) {
    let names = hash_names(file);
    let toks = file.toks();
    let body = file.fns[fn_idx].body.clone();
    // Skip tokens belonging to nested local fns: they are covered (or not)
    // as their own symbols.
    let nested: Vec<std::ops::Range<usize>> = file
        .fns
        .iter()
        .enumerate()
        .filter(|(gi, f)| *gi != fn_idx && body.contains(&f.body.start) && f.body.end <= body.end)
        .map(|(_, f)| f.body.clone())
        .collect();
    for i in body.clone() {
        if nested.iter().any(|r| r.contains(&i)) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let tok = &toks[i];
        // name.iter() / recv.name.keys() / …
        if ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks[i - 2].kind == TokKind::Ident
            && names.contains(&toks[i - 2].text)
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "hash-iter",
                message: format!(
                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic order on an \
                     export-feeding path: {chain}",
                    toks[i - 2].text,
                    tok.text
                ),
            });
        }
        // for pat in name { … }
        if tok.is_ident("for") {
            if let Some((name, line)) = for_loop_over(file, i, &names) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    lint: "hash-iter",
                    message: format!(
                        "`for … in {name}` iterates a HashMap/HashSet in nondeterministic order \
                         on an export-feeding path: {chain}"
                    ),
                });
            }
        }
        // SystemTime::now() / Instant::now()
        if (tok.is_ident("SystemTime") || tok.is_ident("Instant"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "wall-clock",
                message: format!(
                    "`{}::now()` read on an export-feeding path ({chain}); annotate timing-only \
                     uses",
                    tok.text
                ),
            });
        }
        // thread::current().id()
        if tok.is_ident("current")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
            && toks.get(i + 4).is_some_and(|t| t.is_ident("id"))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "wall-clock",
                message: format!("thread-id read on an export-feeding path: {chain}"),
            });
        }
        // thread_rng() / from_entropy() / rand::random()
        if (RNG_SOURCES.contains(&tok.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
            || (tok.is_ident("random")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("rand")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                lint: "unseeded-rng",
                message: format!(
                    "`{}()` constructs an unseeded RNG on an export-feeding path ({chain}); use \
                     a seeded stream",
                    tok.text
                ),
            });
        }
    }
}

/// If the `for` at token `i` loops directly over a hash-named variable,
/// returns (name, line of the name token).
fn for_loop_over(file: &SourceFile, i: usize, names: &BTreeSet<String>) -> Option<(String, usize)> {
    let toks = file.toks();
    let mut nest = 0i64;
    let mut j = i + 1;
    // Find the `in` of this loop header (patterns may contain parens).
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct('(' | '[') => nest += 1,
            TokKind::Punct(')' | ']') => nest -= 1,
            TokKind::Punct('{' | ';') => return None,
            TokKind::Ident if nest == 0 && t.is_ident("in") => break,
            _ => {}
        }
        j += 1;
        if j > i + 32 {
            return None;
        }
    }
    let mut k = j + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        k += 1;
    }
    let name = toks.get(k)?;
    if name.kind == TokKind::Ident
        && names.contains(&name.text)
        && toks.get(k + 1).is_some_and(|t| t.is_punct('{'))
    {
        return Some((name.text.clone(), name.line));
    }
    None
}

/// Names whose type or initializer mentions `HashMap`/`HashSet`, outside
/// test modules: struct fields, typed bindings/params, and `let` inits.
fn hash_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = file.toks();
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if file.in_tests(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: …HashMap…` up to a delimiter at angle-depth zero.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut angle = 0i64;
            for j in i + 2..(i + 64).min(toks.len()) {
                match toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct(',' | ';' | '{' | '}' | ')' | '=') if angle <= 0 => break,
                    TokKind::Ident
                        if toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet") =>
                    {
                        names.insert(toks[i].text.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] name = … HashMap/HashSet …;`
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            while toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k) else { continue };
            if name.kind != TokKind::Ident {
                continue;
            }
            for t in &toks[k + 1..(k + 128).min(toks.len())] {
                match t.kind {
                    TokKind::Punct(';') => break,
                    TokKind::Ident if t.is_ident("HashMap") || t.is_ident("HashSet") => {
                        names.insert(name.text.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    names
}
