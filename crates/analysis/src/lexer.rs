//! A minimal Rust lexer: just enough surface syntax to hand the lint passes
//! a comment- and string-free token stream with correct line attribution.
//!
//! This is deliberately not a grammar. The passes only pattern-match over
//! identifiers and punctuation, so the lexer's real job is getting the
//! *hard* parts of Rust's lexical layer right: nested block comments, raw
//! strings with `#` fences, byte/char literals, and the `'a` lifetime vs
//! `'a'` char-literal ambiguity. Everything it cannot classify becomes a
//! single-character punctuation token.

/// Token class. Normal string-literal payloads are kept under `Str` (the
/// schema-drift pass reads column names and format strings out of them);
/// raw/byte strings and char literals become empty `Str`/`Literal` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct(char),
    /// Numeric or char literal; payload kept for numbers only.
    Literal,
    /// String literal; payload is the raw source between the quotes
    /// (escapes unprocessed), empty for raw and byte strings.
    Str,
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct(ch)
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// A comment with its starting line; the `//` / `/* */` fences are stripped
/// but inner doc-comment markers (`/`, `!`) are kept.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// Token stream plus the comment sidecar the annotation parser reads.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let end = i.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: chars[start..end.min(chars.len())].iter().collect(),
                line: start_line,
            });
        } else if c == '"' {
            let start_line = line;
            let start = i + 1;
            i = skip_string(&chars, i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i.saturating_sub(1).max(start)]
                    .iter()
                    .collect(),
                line: start_line,
            });
        } else if c == '\'' {
            i = lex_quote(&chars, i, line, &mut out.toks);
        } else if let Some(next) = raw_string_start(&chars, i) {
            let start_line = line;
            i = skip_raw_string(&chars, next, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
        } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
            i = skip_string(&chars, i + 1, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            i = skip_number(&chars, i);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else {
            out.toks.push(Tok {
                kind: TokKind::Punct(c),
                text: String::new(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Detects `r"`, `r#…#"`, `br"`, `br#…#"` at `i`; returns the index of the
/// first `#`-or-quote character of the raw string when it is one.
fn raw_string_start(chars: &[char], i: usize) -> Option<usize> {
    let body = match chars.get(i)? {
        'r' => i + 1,
        'b' if chars.get(i + 1) == Some(&'r') => i + 2,
        _ => return None,
    };
    let mut j = body;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(body)
}

/// Skips a raw string whose fence starts at `start` (at the hashes or the
/// opening quote); returns the index just past the closing fence.
fn skip_raw_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a normal (escape-aware, possibly multi-line) string starting at the
/// opening quote `i`; returns the index just past the closing quote.
fn skip_string(chars: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal) at the
/// quote index `i`; pushes the token and returns the index past it.
fn lex_quote(chars: &[char], i: usize, line: usize, toks: &mut Vec<Tok>) -> usize {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: skip the escape head, then run to the quote
        // (covers `'\u{…}'` too).
        let mut j = i + 3;
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        toks.push(Tok {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
        return j + 1;
    }
    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).is_some_and(|c| *c != '\'') {
        toks.push(Tok {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
        return i + 3;
    }
    // Lifetime: `'` followed by an identifier, no closing quote.
    let start = i + 1;
    let mut j = start;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    toks.push(Tok {
        kind: TokKind::Lifetime,
        text: chars[start..j].iter().collect(),
        line,
    });
    j
}

/// Skips a numeric literal; consumes a decimal point only when a digit
/// follows, so `0..10` lexes as `0` `.` `.` `10`.
fn skip_number(chars: &[char], i: usize) -> usize {
    let mut j = i;
    let mut seen_dot = false;
    while j < chars.len() {
        let c = chars[j];
        if c.is_alphanumeric() || c == '_' {
            j += 1;
        } else if c == '.' && !seen_dot && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
            seen_dot = true;
            j += 1;
        } else {
            break;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // let fake = m.lock(); /* also fake */
            /* nested /* block */ still comment */
            let real = r#"string with .lock() inside"#;
            let s = "escaped \" quote .lock()";
        "##;
        let names = idents(src);
        assert_eq!(names.iter().filter(|n| *n == "lock").count(), 0);
        assert_eq!(names.iter().filter(|n| *n == "let").count(), 2);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text.is_empty()));
    }

    #[test]
    fn raw_and_byte_strings_are_str_tokens_without_payload() {
        let lexed = lex("let a = r#\"raw\"#; let b = b\"bytes\"; let n = 42;");
        let kinds: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str | TokKind::Literal))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            [
                (TokKind::Str, String::new()),
                (TokKind::Str, String::new()),
                (TokKind::Literal, "42".to_string()),
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"one\nlong\nstring\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn string_literal_payloads_are_kept() {
        let lexed = lex("let h = vec![\"workload\", \"pe_rows\"];");
        let lits: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["workload", "pe_rows"]);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let lexed = lex("for i in 0..10 {}");
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
