//! `spade-lint`: a dependency-free static analyzer for this repository's
//! concurrency, determinism, unit, and schema invariants.
//!
//! All passes run over a hand-rolled token stream (no `syn`; the build
//! container has no registry access). A workspace-wide [`symbols::SymbolIndex`]
//! and name-based [`callgraph::CallGraph`] underpin the cross-file passes:
//!
//! 1. **Lock order** ([`locks`]) — mutex acquisitions must follow the
//!    declared order `state → stream-entry → inflight-slot → budget-tokens`.
//!    Every workspace file that acquires a ranked lock is discovered and
//!    walked; inversions and cross-function cycles are findings.
//! 2. **Determinism taint** ([`determinism`]) — source→sink propagation over
//!    the call graph: hash-container iteration, wall-clock/thread-id reads,
//!    and unseeded RNG construction are flagged in any function that can
//!    feed a pinned export (report tables, rule books, protocol payloads,
//!    cache keys), with the full call chain in the message. The old
//!    hand-maintained file list survives only as a regression cross-check:
//!    taint coverage must stay a superset of it.
//! 3. **Panic surface** ([`panics`]) — potential panics reachable from the
//!    request-handling call graph must be individually justified.
//! 4. **Units of measure** ([`units`]) — cost-model quantities (cycles, ns,
//!    pJ, mJ, mm², bytes, GHz, …) inferred from name suffixes and `// unit:`
//!    annotations may not be added or compared across units.
//! 5. **Export schema** ([`schema`]) — exporter column lists and `STATS`
//!    keys are extracted statically and diffed against the committed goldens
//!    and the keys consumers actually read.
//!
//! Suppressions use `// lint:allow(<lint>): <reason>` with a mandatory
//! reason; `spade-lint --summary` renders them all for the committed
//! allowlist (`crates/analysis/ALLOWLIST.md`) that CI diffs against.
//! `lock-order`, `schema-drift`, and `taint-coverage` findings are not
//! suppressible by design.

pub mod callgraph;
pub mod determinism;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod schema;
pub mod source;
pub mod symbols;
pub mod units;

use callgraph::CallGraph;
use source::{Finding, SourceFile};
use std::collections::BTreeSet;
use std::path::Path;
use symbols::SymbolIndex;

/// Files known to acquire ranked locks. Discovery over the workspace must
/// find at least these; a miss is a hard error (the discovery heuristic has
/// gone stale, not the code).
pub const LOCK_FILES: &[&str] = &["crates/bench/src/serve.rs", "crates/bench/src/pool.rs"];

/// The pre-call-graph determinism scope: result-affecting modules as they
/// were hand-maintained. Kept only as a regression cross-check — the taint
/// pass must report every one of these as sink-reachable, or it emits a
/// non-suppressible `taint-coverage` finding.
pub const DETERMINISM_FILES: &[&str] = &[
    "crates/baselines/src/pointacc.rs",
    "crates/bench/src/adaptive.rs",
    "crates/bench/src/dse.rs",
    "crates/bench/src/loadgen.rs",
    "crates/bench/src/protocol.rs",
    "crates/bench/src/serve.rs",
    "crates/bench/src/workload.rs",
    "crates/core/src/report.rs",
    "crates/nn/src/graph.rs",
    "crates/nn/src/pruning.rs",
    "crates/nn/src/rulegen/delta.rs",
    "crates/nn/src/rulegen/hash.rs",
    "crates/nn/src/rulegen/mod.rs",
    "crates/nn/src/rulegen/sort.rs",
    "crates/nn/src/rulegen/streaming.rs",
    "crates/tensor/src/coord.rs",
];

/// Files whose call graph the panic-surface audit covers.
pub const PANIC_FILES: &[&str] = &["crates/bench/src/serve.rs", "crates/bench/src/protocol.rs"];

/// `(exporter file, exporter fn, golden CSV)` triples the table-schema check
/// walks: the fn's base column list must match the golden's header line.
pub const TABLE_SCHEMAS: &[(&str, &str, &str)] = &[(
    "crates/bench/src/dse.rs",
    "to_table",
    "tests/golden/dse_legacy_reduced.csv",
)];

/// The serve-loop formatter file whose `key={}\n` strings define the STATS
/// namespace, the committed golden key list, and the consumers that read
/// keys back.
pub const STATS_PRODUCER: &str = "crates/bench/src/serve.rs";
pub const STATS_GOLDEN: &str = "tests/golden/stats_keys.txt";
pub const STATS_CONSUMERS: &[&str] = &["tests/serve_integration.rs", "crates/bench/src/loadgen.rs"];

/// Everything one full run produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Count of findings an annotation suppressed.
    pub suppressed: usize,
    /// `(file, lint, reason)` of every parsed annotation, for the summary.
    pub allows: Vec<(String, String, String)>,
    /// Workspace-relative paths the run analyzed (diagnostics / `--json`).
    pub files_analyzed: usize,
}

/// Production `.rs` files the cross-file passes walk: every workspace
/// crate's `src/` tree plus the root facade — not `vendor/` (stub code),
/// not `crates/analysis/fixtures/` (deliberate violations), not `tests/`
/// (integration tests are loaded separately as schema consumers only), and
/// not `examples/` (demo code feeds no pinned export).
pub fn walk_workspace(root: &Path) -> Result<Vec<String>, String> {
    let mut rels = vec!["src/lib.rs".to_string()];
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(root, &src, &mut rels)?;
        }
    }
    rels.sort();
    Ok(rels)
}

fn collect_rs(root: &Path, dir: &Path, rels: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs(root, &path, rels)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            rels.push(rel);
        }
    }
    Ok(())
}

/// Runs every pass over the workspace at `root`.
pub fn analyze_tree(root: &Path) -> Result<Analysis, String> {
    let rels = walk_workspace(root)?;
    // A listed file the walk did not find is a hard error, never a silent
    // skip: a rename must update the list (or the list is stale — either way
    // a human decides).
    let missing: Vec<&str> = LOCK_FILES
        .iter()
        .chain(DETERMINISM_FILES)
        .chain(PANIC_FILES)
        .chain(TABLE_SCHEMAS.iter().map(|(f, _, _)| f))
        .copied()
        .filter(|rel| !rels.iter().any(|r| r == rel))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "listed file(s) missing from the workspace walk: {} — update the lists in \
             crates/analysis/src/lib.rs to match the tree",
            missing.join(", ")
        ));
    }
    let mut files = Vec::new();
    for rel in &rels {
        files.push(load(root, rel)?);
    }

    let index = SymbolIndex::build(&files);
    let graph = CallGraph::build(&files, &index);
    let mut analysis = Analysis {
        files_analyzed: files.len(),
        ..Analysis::default()
    };
    let mut raw: Vec<Finding> = Vec::new();

    // 1. Lock order, over every file that acquires a ranked lock.
    let lock_rels = discover_lock_files(&files);
    for listed in LOCK_FILES {
        if !lock_rels.iter().any(|r| r == listed) {
            return Err(format!(
                "lock-site discovery no longer finds {listed} — the acquisition heuristic \
                 in crates/analysis/src/lib.rs has gone stale"
            ));
        }
    }
    let lock_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| lock_rels.contains(&f.rel))
        .collect();
    raw.extend(locks::lock_order_pass(&lock_files));

    // 2. Determinism taint over the call graph, plus the legacy-list
    //    regression cross-check.
    let taint = determinism::taint_pass(&files, &index, &graph);
    for rel in DETERMINISM_FILES {
        if !taint.covered_files.contains(*rel) {
            raw.push(Finding {
                file: (*rel).to_string(),
                line: 1,
                lint: "taint-coverage",
                message: format!(
                    "{rel} was in the hand-maintained determinism scope but taint analysis \
                     no longer reaches it from any export sink — a sink pattern or call \
                     edge went missing"
                ),
            });
        }
    }
    raw.extend(taint.findings);

    // 3. Panic surface over the serve-path files.
    let panic_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| PANIC_FILES.contains(&f.rel.as_str()))
        .collect();
    raw.extend(panics::panic_pass(&panic_files));

    // 4. Units of measure, workspace-wide.
    for file in &files {
        raw.extend(units::units_pass(file));
    }

    // 5. Export schemas vs goldens and consumers.
    raw.extend(schema_pass(root, &files)?);

    for file in &files {
        raw.extend(file.malformed.iter().cloned());
        for a in &file.allows {
            analysis
                .allows
                .push((file.rel.clone(), a.lint.clone(), a.reason.clone()));
        }
    }
    finish(&files, raw, &mut analysis);
    Ok(analysis)
}

/// Files with at least one ranked-lock acquisition in production code:
/// a `lock_ranked(…)` call or a `recv.lock(…)` site.
fn discover_lock_files(files: &[SourceFile]) -> Vec<String> {
    let mut rels = Vec::new();
    for file in files {
        let toks = file.toks();
        let acquires = file.production_fns().any(|func| {
            func.body.clone().any(|i| {
                let t = &toks[i];
                (t.is_ident("lock_ranked") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
                    || (t.is_ident("lock")
                        && i >= 1
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
            })
        });
        if acquires {
            rels.push(file.rel.clone());
        }
    }
    rels
}

/// The schema-drift pass over the real tree: exporter columns vs golden CSV
/// headers, and STATS keys vs the golden list and consumer reads.
fn schema_pass(root: &Path, files: &[SourceFile]) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let by_rel = |rel: &str| files.iter().find(|f| f.rel == rel);
    for (exporter_rel, fn_name, golden_rel) in TABLE_SCHEMAS {
        let file = by_rel(exporter_rel)
            .ok_or_else(|| format!("{exporter_rel}: not in the workspace walk"))?;
        let golden = read_rel(root, golden_rel)?;
        let header = golden
            .lines()
            .next()
            .ok_or_else(|| format!("{golden_rel}: empty golden"))?;
        match schema::table_columns(file, fn_name) {
            Some(cols) => findings.extend(schema::check_table_against_golden(
                exporter_rel,
                fn_name,
                &cols,
                golden_rel,
                header,
            )),
            None => {
                return Err(format!(
                    "{exporter_rel}: fn `{fn_name}` builds no all-string `vec![…]` column \
                     list the schema extractor recognizes — update the extractor with the \
                     exporter's new shape"
                ))
            }
        }
    }
    let producer = by_rel(STATS_PRODUCER)
        .ok_or_else(|| format!("{STATS_PRODUCER}: not in the workspace walk"))?;
    let produced = schema::keys_produced(producer);
    let golden: BTreeSet<String> = read_rel(root, STATS_GOLDEN)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    let mut consumers = Vec::new();
    for rel in STATS_CONSUMERS {
        // Consumers may live outside the production walk (integration tests).
        let consumed = match by_rel(rel) {
            Some(f) => schema::keys_consumed(f),
            None => schema::keys_consumed(&load(root, rel)?),
        };
        consumers.push((*rel, consumed));
    }
    findings.extend(schema::check_stats_keys(
        STATS_PRODUCER,
        &produced,
        STATS_GOLDEN,
        &golden,
        &consumers,
    ));
    Ok(findings)
}

/// Runs a single pass over explicit file paths (fixtures, ad-hoc checks).
pub enum Pass {
    LockOrder,
    /// The determinism taint pass, with the symbol index and call graph
    /// built over exactly the given files.
    Determinism,
    Panics,
    Units,
    /// Table-schema check: the golden CSV whose header the fixture exporter
    /// fns (`fn to_table`) are diffed against.
    Schema(String),
}

pub fn analyze_files(paths: &[String], pass: &Pass) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        files.push(SourceFile::parse(p, &src));
    }
    let refs: Vec<&SourceFile> = files.iter().collect();
    let mut raw = match pass {
        Pass::LockOrder => locks::lock_order_pass(&refs),
        Pass::Determinism => {
            let index = SymbolIndex::build(&files);
            let graph = CallGraph::build(&files, &index);
            determinism::taint_pass(&files, &index, &graph).findings
        }
        Pass::Panics => panics::panic_pass(&refs),
        Pass::Units => files.iter().flat_map(units::units_pass).collect(),
        Pass::Schema(golden_path) => {
            let golden =
                std::fs::read_to_string(golden_path).map_err(|e| format!("{golden_path}: {e}"))?;
            let header = golden
                .lines()
                .next()
                .ok_or_else(|| format!("{golden_path}: empty golden"))?;
            let mut findings = Vec::new();
            for file in &files {
                let Some(cols) = schema::table_columns(file, "to_table") else {
                    return Err(format!("{}: no `to_table` column list found", file.rel));
                };
                findings.extend(schema::check_table_against_golden(
                    &file.rel,
                    "to_table",
                    &cols,
                    golden_path,
                    header,
                ));
            }
            findings
        }
    };
    for file in &files {
        raw.extend(file.malformed.iter().cloned());
    }
    let mut analysis = Analysis {
        files_analyzed: files.len(),
        ..Analysis::default()
    };
    for file in &files {
        for a in &file.allows {
            analysis
                .allows
                .push((file.rel.clone(), a.lint.clone(), a.reason.clone()));
        }
    }
    finish(&files, raw, &mut analysis);
    Ok(analysis)
}

fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
    Ok(SourceFile::parse(rel, &read_rel(root, rel)?))
}

fn read_rel(root: &Path, rel: &str) -> Result<String, String> {
    let path = root.join(rel);
    std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Applies annotation suppression and sorts what remains.
fn finish(files: &[SourceFile], raw: Vec<Finding>, analysis: &mut Analysis) {
    for finding in raw {
        let allowed = source::ALLOW_LINTS.contains(&finding.lint)
            && files
                .iter()
                .find(|f| f.rel == finding.file)
                .is_some_and(|f| f.allowed(finding.lint, finding.line));
        if allowed {
            analysis.suppressed += 1;
        } else {
            analysis.findings.push(finding);
        }
    }
    analysis.findings.sort();
    analysis.findings.dedup();
    analysis.allows.sort();
}

/// Renders the committed allowlist. Deliberately line-number-free so the
/// file stays stable under unrelated edits; CI diffs it to make every new
/// suppression visible in review.
pub fn render_summary(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("# spade-lint allowlist\n\n");
    out.push_str(
        "Every `lint:allow` annotation in the tree, by file. Regenerate with:\n\n\
         ```\n\
         cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md\n\
         ```\n\n",
    );
    let mut last_file = "";
    for (file, lint, reason) in &analysis.allows {
        if file != last_file {
            out.push_str(&format!("\n## {file}\n\n"));
            last_file = file;
        }
        out.push_str(&format!("- **{lint}** — {reason}\n"));
    }
    out.push_str(&format!(
        "\n---\n{} annotations across {} files.\n",
        analysis.allows.len(),
        analysis
            .allows
            .iter()
            .map(|(f, _, _)| f)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    ));
    out
}

/// Renders one run as a JSON object (machine-readable CI artifact). Emitted
/// by hand — the analyzer is deliberately dependency-free.
pub fn render_json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.lint),
            json_str(&f.message)
        ));
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"allows\": [");
    for (i, (file, lint, reason)) in analysis.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"lint\": {}, \"reason\": {}}}",
            json_str(file),
            json_str(lint),
            json_str(reason)
        ));
    }
    if !analysis.allows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"files_analyzed\": {}\n}}\n",
        analysis.suppressed, analysis.files_analyzed
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
