//! `spade-lint`: a dependency-free static analyzer for this repository's
//! concurrency and determinism invariants.
//!
//! Three passes run over a hand-rolled token stream (no `syn`; the build
//! container has no registry access, and the passes only pattern-match):
//!
//! 1. **Lock order** ([`locks`]) — serve-path mutex acquisitions must follow
//!    the declared order `state → stream-entry → inflight-slot` (budget
//!    tokens are a leaf). Inversions and cross-function cycles are findings.
//! 2. **Determinism** ([`determinism`]) — result-affecting modules may not
//!    iterate hash containers or read wall clocks without an annotation.
//! 3. **Panic surface** ([`panics`]) — potential panics reachable from the
//!    request-handling call graph must be individually justified.
//!
//! Suppressions use `// lint:allow(<lint>): <reason>` with a mandatory
//! reason; `spade-lint --summary` renders them all for the committed
//! allowlist (`crates/analysis/ALLOWLIST.md`) that CI diffs against.

pub mod determinism;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;

use source::{Finding, SourceFile};
use std::path::Path;

/// Files the lock-order pass walks.
pub const LOCK_FILES: &[&str] = &["crates/bench/src/serve.rs", "crates/bench/src/pool.rs"];

/// Result-affecting modules: anything that feeds a pinned byte-identical
/// export (reports, rule books, protocol payloads, DSE tables).
pub const DETERMINISM_FILES: &[&str] = &[
    "crates/baselines/src/pointacc.rs",
    "crates/bench/src/adaptive.rs",
    "crates/bench/src/dse.rs",
    "crates/bench/src/loadgen.rs",
    "crates/bench/src/protocol.rs",
    "crates/bench/src/serve.rs",
    "crates/bench/src/workload.rs",
    "crates/core/src/report.rs",
    "crates/nn/src/graph.rs",
    "crates/nn/src/pruning.rs",
    "crates/nn/src/rulegen/delta.rs",
    "crates/nn/src/rulegen/hash.rs",
    "crates/nn/src/rulegen/mod.rs",
    "crates/nn/src/rulegen/sort.rs",
    "crates/nn/src/rulegen/streaming.rs",
    "crates/tensor/src/coord.rs",
];

/// Files whose call graph the panic-surface audit covers.
pub const PANIC_FILES: &[&str] = &["crates/bench/src/serve.rs", "crates/bench/src/protocol.rs"];

/// Everything one full run produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Count of findings an annotation suppressed.
    pub suppressed: usize,
    /// `(file, lint, reason)` of every parsed annotation, for the summary.
    pub allows: Vec<(String, String, String)>,
}

/// Runs all three passes over the workspace at `root`.
pub fn analyze_tree(root: &Path) -> Result<Analysis, String> {
    let mut rels: Vec<&str> = LOCK_FILES
        .iter()
        .chain(DETERMINISM_FILES)
        .chain(PANIC_FILES)
        .copied()
        .collect();
    rels.sort_unstable();
    rels.dedup();
    let mut files = Vec::new();
    for rel in rels {
        files.push(load(root, rel)?);
    }
    let by_rel = |rel: &str| files.iter().position(|f| f.rel == rel);

    let mut analysis = Analysis::default();
    let lock_files: Vec<&SourceFile> = LOCK_FILES
        .iter()
        .filter_map(|r| by_rel(r))
        .map(|i| &files[i])
        .collect();
    let panic_files: Vec<&SourceFile> = PANIC_FILES
        .iter()
        .filter_map(|r| by_rel(r))
        .map(|i| &files[i])
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(locks::lock_order_pass(&lock_files));
    for rel in DETERMINISM_FILES {
        if let Some(i) = by_rel(rel) {
            raw.extend(determinism::determinism_pass(&files[i]));
        }
    }
    raw.extend(panics::panic_pass(&panic_files));
    for file in &files {
        raw.extend(file.malformed.iter().cloned());
        for a in &file.allows {
            analysis
                .allows
                .push((file.rel.clone(), a.lint.clone(), a.reason.clone()));
        }
    }
    finish(&files, raw, &mut analysis);
    Ok(analysis)
}

/// Runs a single pass over explicit file paths (fixtures, ad-hoc checks).
pub enum Pass {
    LockOrder,
    Determinism,
    Panics,
}

pub fn analyze_files(paths: &[String], pass: &Pass) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        files.push(SourceFile::parse(p, &src));
    }
    let refs: Vec<&SourceFile> = files.iter().collect();
    let mut raw = match pass {
        Pass::LockOrder => locks::lock_order_pass(&refs),
        Pass::Determinism => refs
            .iter()
            .flat_map(|f| determinism::determinism_pass(f))
            .collect(),
        Pass::Panics => panics::panic_pass(&refs),
    };
    for file in &files {
        raw.extend(file.malformed.iter().cloned());
    }
    let mut analysis = Analysis::default();
    for file in &files {
        for a in &file.allows {
            analysis
                .allows
                .push((file.rel.clone(), a.lint.clone(), a.reason.clone()));
        }
    }
    finish(&files, raw, &mut analysis);
    Ok(analysis)
}

fn load(root: &Path, rel: &str) -> Result<SourceFile, String> {
    let path = root.join(rel);
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(SourceFile::parse(rel, &src))
}

/// Applies annotation suppression and sorts what remains.
fn finish(files: &[SourceFile], raw: Vec<Finding>, analysis: &mut Analysis) {
    for finding in raw {
        let allowed = files
            .iter()
            .find(|f| f.rel == finding.file)
            .is_some_and(|f| f.allowed(finding.lint, finding.line));
        if allowed {
            analysis.suppressed += 1;
        } else {
            analysis.findings.push(finding);
        }
    }
    analysis.findings.sort();
    analysis.findings.dedup();
    analysis.allows.sort();
}

/// Renders the committed allowlist. Deliberately line-number-free so the
/// file stays stable under unrelated edits; CI diffs it to make every new
/// suppression visible in review.
pub fn render_summary(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("# spade-lint allowlist\n\n");
    out.push_str(
        "Every `lint:allow` annotation in the tree, by file. Regenerate with:\n\n\
         ```\n\
         cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md\n\
         ```\n\n",
    );
    let mut last_file = "";
    for (file, lint, reason) in &analysis.allows {
        if file != last_file {
            out.push_str(&format!("\n## {file}\n\n"));
            last_file = file;
        }
        out.push_str(&format!("- **{lint}** — {reason}\n"));
    }
    out.push_str(&format!(
        "\n---\n{} annotations across {} files.\n",
        analysis.allows.len(),
        analysis
            .allows
            .iter()
            .map(|(f, _, _)| f)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    ));
    out
}
