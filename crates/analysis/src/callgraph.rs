//! Name-based call graph over the [`SymbolIndex`].
//!
//! Each production function body is scanned for call sites and every site is
//! resolved to candidate definitions:
//!
//! * `Type::method(…)` — the `(Type, method)` entry when the index has one,
//!   else all same-name candidates.
//! * `self.method(…)` — the enclosing `impl` type's method when it exists.
//! * `var.method(…)` — the receiver's type when a `let var: Type` or
//!   `let var = Type::new(…)`-shaped binding in the same body names it.
//! * `name(…)` / `name::<T>(…)` — a nested local `fn name` shadows the
//!   workspace namespace; otherwise all same-name candidates (conservative:
//!   reachability over-approximates, it never misses).
//!
//! Macro invocation bodies are opaque: no call edges are extracted from the
//! token tree of `mac!(…)` — macro-expanded code is not in the token stream,
//! so pretending to resolve its surface tokens would attribute calls to the
//! wrong functions. (Site-level passes, e.g. hash-iteration detection, still
//! scan those tokens.)

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use std::collections::BTreeMap;

/// One call site inside a production function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Symbol index of the enclosing function.
    pub caller: usize,
    /// Bare callee name as written.
    pub name: String,
    /// Receiver type the site resolved against, when the lexer could see
    /// one (`Type::method`, `self.method`, or a typed local).
    pub recv_type: Option<String>,
    /// Resolved candidate symbols (empty when the name matches nothing).
    pub resolved: Vec<usize>,
    pub line: usize,
}

/// Call graph: sites plus per-symbol adjacency in both directions.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub sites: Vec<CallSite>,
    pub callees: Vec<Vec<usize>>,
    pub callers: Vec<Vec<usize>>,
}

const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "fn", "move", "else",
    "unsafe", "where", "impl", "dyn",
];

impl CallGraph {
    pub fn build(files: &[SourceFile], index: &SymbolIndex) -> CallGraph {
        let mut graph = CallGraph {
            sites: Vec::new(),
            callees: vec![Vec::new(); index.syms.len()],
            callers: vec![Vec::new(); index.syms.len()],
        };
        for (si, sym) in index.syms.iter().enumerate() {
            if sym.is_test {
                continue;
            }
            extract_sites(files, index, si, &mut graph.sites);
        }
        for site in &graph.sites {
            for &callee in &site.resolved {
                if !graph.callees[site.caller].contains(&callee) {
                    graph.callees[site.caller].push(callee);
                }
                if !graph.callers[callee].contains(&site.caller) {
                    graph.callers[callee].push(site.caller);
                }
            }
        }
        graph
    }
}

fn extract_sites(files: &[SourceFile], index: &SymbolIndex, si: usize, out: &mut Vec<CallSite>) {
    let sym = &index.syms[si];
    let file = &files[sym.file];
    let func = &file.fns[sym.fn_idx];
    let toks = file.toks();
    // Token ranges of nested local fns: their calls belong to them, not us.
    let nested: Vec<std::ops::Range<usize>> = index
        .syms
        .iter()
        .filter(|other| other.parent_fn == Some(si))
        .map(|other| files[other.file].fns[other.fn_idx].body.clone())
        .collect();
    let locals = local_types(toks, func.body.clone());
    let mut i = func.body.start;
    while i < func.body.end {
        if nested.iter().any(|r| r.contains(&i)) {
            i += 1;
            continue;
        }
        let tok = &toks[i];
        if tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation: skip its whole token tree.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(open) = toks.get(i + 2) {
                if let Some(close_ch) = match open.kind {
                    TokKind::Punct('(') => Some((')', '(')),
                    TokKind::Punct('[') => Some((']', '[')),
                    TokKind::Punct('{') => Some(('}', '{')),
                    _ => None,
                } {
                    i = matching_delim(toks, i + 2, close_ch.1, close_ch.0) + 1;
                    continue;
                }
            }
            i += 2;
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&tok.text.as_str()) || (i >= 1 && toks[i - 1].is_ident("fn"))
        {
            i += 1;
            continue;
        }
        // A call is `name (` or `name ::< … > (` (turbofish).
        let after = match call_args_open(toks, i) {
            Some(open) => open,
            None => {
                i += 1;
                continue;
            }
        };
        let (recv_type, resolved) = resolve(index, si, toks, i, &tok.text, &locals);
        out.push(CallSite {
            caller: si,
            name: tok.text.clone(),
            recv_type,
            resolved,
            line: tok.line,
        });
        // Resume inside the argument list: nested calls are sites too.
        i = after + 1;
    }
}

/// If token `i` heads a call, returns the index of its opening `(` —
/// directly adjacent or after a `::<…>` turbofish.
fn call_args_open(toks: &[Tok], i: usize) -> Option<usize> {
    let next = toks.get(i + 1)?;
    if next.is_punct('(') {
        return Some(i + 1);
    }
    // name ::< T, Vec<U> > ( … )
    if next.is_punct(':') && toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
        let lt = toks.get(i + 3)?;
        if !lt.is_punct('<') {
            return None;
        }
        let mut depth = 0i64;
        for (j, t) in toks.iter().enumerate().skip(i + 3) {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return toks
                            .get(j + 1)
                            .is_some_and(|t| t.is_punct('('))
                            .then_some(j + 1);
                    }
                }
                TokKind::Punct('(' | ')' | ';' | '{') => return None,
                _ => {}
            }
            if j > i + 64 {
                return None;
            }
        }
        return None;
    }
    None
}

fn resolve(
    index: &SymbolIndex,
    caller: usize,
    toks: &[Tok],
    i: usize,
    name: &str,
    locals: &BTreeMap<String, String>,
) -> (Option<String>, Vec<usize>) {
    // Type::name(…) — the path segment right before the `::`.
    if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        if let Some(seg) = toks.get(i - 3).filter(|t| t.kind == TokKind::Ident) {
            let typed = index.by_type_method(&seg.text, name);
            if !typed.is_empty() {
                return (Some(seg.text.clone()), typed.to_vec());
            }
            return (Some(seg.text.clone()), index.by_name(name).to_vec());
        }
    }
    // recv.name(…)
    if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokKind::Ident {
        let recv = &toks[i - 2].text;
        let recv_type = if recv == "self" {
            index.syms[caller].self_type.clone()
        } else {
            locals.get(recv).cloned()
        };
        if let Some(ty) = &recv_type {
            let typed = index.by_type_method(ty, name);
            if !typed.is_empty() {
                return (recv_type, typed.to_vec());
            }
        }
        return (recv_type, index.by_name(name).to_vec());
    }
    // Chained receiver (`foo().name()`, `a.b.name()`): method call on an
    // expression — fall back to every candidate.
    if i >= 1 && toks[i - 1].is_punct('.') {
        return (None, index.by_name(name).to_vec());
    }
    // Bare name(…): a nested local fn shadows everything else.
    if let Some(local) = index.local_fn(caller, name) {
        return (None, vec![local]);
    }
    (None, index.by_name(name).to_vec())
}

/// `let [mut] var : Type` and `let [mut] var = Type::…` bindings in a body,
/// keyed by variable name. Last binding wins, which matches shadowing for
/// straight-line code (the only precision this pass aims for).
fn local_types(toks: &[Tok], body: std::ops::Range<usize>) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for i in body.clone() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        while toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(var) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // `let var: Type …` — first ident after the colon.
        if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(ty) = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                out.insert(var.text.clone(), ty.text.clone());
                continue;
            }
        }
        // `let var = Type::…` — constructor-style init.
        if toks.get(k + 1).is_some_and(|t| t.is_punct('='))
            && toks.get(k + 3).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 4).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(ty) = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                out.insert(var.text.clone(), ty.text.clone());
            }
        }
    }
    out
}

fn matching_delim(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolIndex, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let index = SymbolIndex::build(&files);
        let graph = CallGraph::build(&files, &index);
        (files, index, graph)
    }

    fn edge(index: &SymbolIndex, graph: &CallGraph, from: &str, to: &str) -> bool {
        index
            .by_name(from)
            .iter()
            .any(|&f| graph.callees[f].iter().any(|&c| index.syms[c].name == to))
    }

    #[test]
    fn turbofish_call_sites_are_edges() {
        let (_, index, graph) = graph_of(&[(
            "a.rs",
            "fn parse<T>(s: &str) -> T { todo() }\nfn todo<T>() -> T { loop {} }\n\
             fn main2() { let _: u32 = parse::<Vec<u32>>(\"x\"); }",
        )]);
        assert!(
            edge(&index, &graph, "main2", "parse"),
            "turbofish edge lost"
        );
    }

    #[test]
    fn macro_invocation_bodies_are_opaque() {
        let (_, index, graph) = graph_of(&[(
            "a.rs",
            "fn compute() -> u32 { 1 }\nfn log_it() { my_macro!(compute()); }",
        )]);
        assert!(
            !edge(&index, &graph, "log_it", "compute"),
            "macro token trees must not contribute edges"
        );
    }

    #[test]
    fn shadowed_local_fn_wins_resolution() {
        let (_, index, graph) = graph_of(&[(
            "a.rs",
            "fn helper() { external(); }\nfn external() {}\n\
             fn outer() { fn helper() {} helper(); }",
        )]);
        let outer = index.by_name("outer")[0];
        assert_eq!(graph.callees[outer].len(), 1);
        let callee = graph.callees[outer][0];
        assert_eq!(
            index.syms[callee].parent_fn,
            Some(outer),
            "local fn shadows"
        );
        // The top-level helper's own edge is unaffected.
        assert!(edge(&index, &graph, "helper", "external"));
    }

    #[test]
    fn receiver_types_disambiguate_same_name_methods() {
        let src = r#"
            struct A; struct B;
            impl A { fn run(&self) { a_only(); } }
            impl B { fn run(&self) { b_only(); } }
            fn a_only() {} fn b_only() {}
            fn use_a() { let x = A::make(); x.run(); }
            fn use_typed(b: u32) { let y: B = make_b(); y.run(); }
            fn make_b() -> B { B }
            impl A { fn make() -> A { A } }
        "#;
        let (_, index, graph) = graph_of(&[("a.rs", src)]);
        let use_a = index.by_name("use_a")[0];
        let a_run = index.by_type_method("A", "run")[0];
        let b_run = index.by_type_method("B", "run")[0];
        assert!(graph.callees[use_a].contains(&a_run));
        assert!(!graph.callees[use_a].contains(&b_run));
        let use_typed = index.by_name("use_typed")[0];
        assert!(graph.callees[use_typed].contains(&b_run));
        assert!(!graph.callees[use_typed].contains(&a_run));
    }

    #[test]
    fn unknown_receivers_fall_back_to_all_candidates() {
        let src = "struct A; struct B;\n\
                   impl A { fn run(&self) {} }\n\
                   impl B { fn run(&self) {} }\n\
                   fn choose(x: &dyn Fn()) { opaque().run(); }\n\
                   fn opaque() -> A { A }";
        let (_, index, graph) = graph_of(&[("a.rs", src)]);
        let choose = index.by_name("choose")[0];
        let runs: Vec<usize> = graph.callees[choose]
            .iter()
            .copied()
            .filter(|&c| index.syms[c].name == "run")
            .collect();
        assert_eq!(runs.len(), 2, "expression receivers resolve conservatively");
    }
}
