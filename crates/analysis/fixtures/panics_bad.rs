//! Known-bad fixture for the panic-surface audit: unannotated panics
//! reachable from `handle_connection`, one of them through a helper.

fn handle_connection(buf: &[u8]) -> u32 {
    // BUG: malformed input kills the handler thread.
    let first = parse(buf).unwrap();
    first + checksum(buf)
}

fn parse(buf: &[u8]) -> Option<u32> {
    if buf.len() > 64 {
        panic!("oversized request");
    }
    buf.first().map(|b| u32::from(*b))
}

fn checksum(buf: &[u8]) -> u32 {
    buf.iter().map(|b| u32::from(*b)).sum()
}

/// Setup-path code is not reachable from the handler roots: this unwrap
/// must NOT be flagged.
fn build_server() -> Vec<u32> {
    let capacity: u32 = "64".parse().unwrap();
    Vec::with_capacity(capacity as usize)
}
