//! Known-good fixture for the units pass: conversions go through
//! multiplication (which derives units and is deliberately unchecked),
//! same-unit arithmetic is fine, and `// unit:` annotations carry units the
//! naming convention can't.

pub struct CostModel {
    pub compute_pj: f64,
    pub leakage_pj: f64,
    /// Bank-conflict stall, tabulated.
    // unit: cycles
    pub stall: u64,
    pub budget_cycles: u64,
}

impl CostModel {
    /// Same unit on both sides: fine.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.leakage_pj
    }

    /// Annotated name compares against a suffixed one of the same unit.
    pub fn stalled_out(&self) -> bool {
        self.stall > self.budget_cycles
    }

    /// The public getter keeps the unit in its name.
    pub fn compute_energy_pj(&self) -> f64 {
        self.compute_pj
    }
}

/// Multiplication derives a new unit and is unconstrained by the lattice.
fn cycles_to_ns(cycles: u64, period_ns: f64) -> f64 {
    cycles as f64 * period_ns
}
