//! Known-bad fixture for the units pass: picojoules added to cycles, a
//! comparison across time scales, and a `pub fn` that launders a unit away
//! at its API boundary.

pub struct CostModel {
    pub total_pj: f64,
    pub stall_cycles: f64,
    pub mac_pj: f64,
}

impl CostModel {
    /// BUG: adds energy to a cycle count — dimensionally meaningless.
    pub fn broken_total(&self) -> f64 {
        self.total_pj + self.stall_cycles
    }

    /// BUG: the unit vanishes at the public API; callers can't know this is
    /// picojoules.
    pub fn mac_energy(&self) -> f64 {
        self.mac_pj
    }
}

/// BUG: compares nanoseconds against cycles without converting.
fn deadline_hit(elapsed_ns: u64, budget_cycles: u64) -> bool {
    elapsed_ns > budget_cycles
}
