//! Known-bad fixture: the exact pre-fix PR-7 ABBA shape.
//!
//! `handle_sweep` took the global state lock and then a per-stream entry
//! lock (state → stream-entry, the declared direction), while `handle_frame`
//! took the entry lock first and re-entered the state lock to merge stats
//! (stream-entry → state). Two threads running one function each deadlock.
//! `spade-lint --lock-order` must report both the inversion edge and the
//! `state → stream-entry → state` cycle.

use std::sync::{Arc, Mutex};

struct Shared {
    state: Mutex<u64>,
}

fn handle_sweep(shared: &Shared, entry: &Arc<Mutex<u64>>) -> u64 {
    let mut state = shared.state.lock().unwrap();
    *state += 1;
    // Declared direction: stream-entry is taken under state. Legal on its
    // own, but it arms one half of the ABBA pair.
    let mut slot = entry.lock().unwrap();
    *slot += *state;
    *slot
}

fn handle_frame(shared: &Shared, entry: &Arc<Mutex<u64>>) -> u64 {
    let mut frame = entry.lock().unwrap();
    *frame += 1;
    // BUG: stats merge re-enters the global lock while the per-stream guard
    // is still live — the inverted half of the deadlock.
    let mut state = shared.state.lock().unwrap();
    *state += *frame;
    *state
}
