//! Known-bad fixture for the determinism taint pass: hash-order iteration
//! and wall-clock reads inside functions that reach an export sink through
//! the call graph.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

struct Table;

impl Table {
    fn push_row(&mut self, _row: Vec<u32>) {}
}

/// Sink-site function: contains the `push_row` call, so it seeds coverage.
fn export_report(table: &HashMap<u32, u32>, out: &mut Table) {
    // BUG: emitted in hash order straight into the report.
    for v in table.values() {
        out.push_row(vec![*v]);
    }
}

/// Covered as a callee of `assemble` (its result flows up into the export).
fn hashed_keys(table: &HashMap<u32, u32>) -> Vec<u32> {
    let seen: HashSet<u32> = table.keys().copied().collect();
    let mut out = Vec::new();
    // BUG: hash-order loop two hops from the sink.
    for key in seen {
        out.push(key);
    }
    out
}

/// Covered as a callee of `assemble`.
fn stamp() -> (u128, u64) {
    let wall = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis();
    let mono = Instant::now().elapsed().as_nanos() as u64;
    (wall, mono)
}

/// Sink-reaching: calls `export_report`, which holds the sink site.
fn assemble(table: &HashMap<u32, u32>, out: &mut Table) {
    let _keys = hashed_keys(table);
    let _t = stamp();
    export_report(table, out);
}
