//! Known-bad fixture for the determinism pass: hash-order iteration feeding
//! an export, plus unannotated wall-clock reads.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

fn export_rows(table: &HashMap<u32, u32>) -> Vec<u32> {
    let mut rows = Vec::new();
    // BUG: emitted in hash order — byte-identical export is impossible.
    for (_k, v) in table.iter() {
        rows.push(*v);
    }
    rows
}

fn export_keys(table: &HashMap<u32, u32>) -> Vec<u32> {
    let seen: HashSet<u32> = table.keys().copied().collect();
    let mut out = Vec::new();
    for key in seen {
        out.push(key);
    }
    out
}

fn stamp_report() -> (u128, u64) {
    let wall = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis();
    let mono = Instant::now().elapsed().as_nanos() as u64;
    (wall, mono)
}
