//! Known-good fixture: the post-fix PR-7 serve-path lock discipline.
//!
//! Exercises every guard-lifetime shape the lock pass models: block-scoped
//! guards, explicit `drop(...)`, `if let` bindings attached to their block,
//! an in-order three-class chain, and the budget-tokens leaf.

use std::sync::{Arc, Mutex};

struct Shared {
    state: Mutex<u64>,
    tokens: Mutex<u64>,
}

fn handle_frame(shared: &Shared, entry: &Arc<Mutex<u64>>) -> u64 {
    // Identity is resolved under the state lock alone, inside a block whose
    // end releases the guard before the entry lock is taken.
    let seed = {
        let mut state = shared.state.lock().unwrap();
        *state += 1;
        *state
    };
    let mut frame = entry.lock().unwrap();
    *frame += seed;
    let stats = *frame;
    // The per-stream guard dies before the stats merge re-enters state.
    drop(frame);
    let mut state = shared.state.lock().unwrap();
    *state += stats;
    *state
}

fn handle_sweep(shared: &Shared, entry: &Arc<Mutex<u64>>, slot: &Mutex<u64>) -> u64 {
    // The full declared chain, strictly increasing in rank.
    let state = shared.state.lock().unwrap();
    let entry = entry.lock().unwrap();
    let mut slot = slot.lock().unwrap();
    *slot += *state + *entry;
    *slot
}

fn recover(shared: &Shared) -> u64 {
    // An `if let` guard attaches to the block that follows it and is gone
    // once that block closes.
    if let Ok(mut state) = shared.state.lock() {
        *state += 1;
    }
    let mut tokens = shared.tokens.lock().unwrap();
    *tokens += 1;
    *tokens
}
