//! Known-good fixture for the schema-drift pass: the base column list
//! matches `schema_golden.csv` exactly; the conditional push only appends.

pub struct Sweep {
    pub delta: bool,
}

impl Sweep {
    pub fn to_table(&self) -> Vec<&'static str> {
        let mut headers = vec!["workload", "pe_rows", "latency_ms"];
        if self.delta {
            headers.push("delta_speedup");
        }
        headers
    }
}
