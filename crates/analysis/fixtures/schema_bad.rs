//! Known-bad fixture for the schema-drift pass: a column was added to the
//! exporter's base list (`rows_swept`) without regenerating
//! `schema_golden.csv`, and a conditional push duplicates a base column.

pub struct Sweep {
    pub delta: bool,
}

impl Sweep {
    pub fn to_table(&self) -> Vec<&'static str> {
        let mut headers = vec!["workload", "pe_rows", "latency_ms", "rows_swept"];
        if self.delta {
            headers.push("pe_rows");
        }
        headers
    }
}
