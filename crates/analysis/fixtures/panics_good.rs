//! Known-good fixture for the panic-surface audit: the handler path either
//! returns errors or carries a justified annotation.

fn handle_connection(buf: &[u8]) -> Result<u32, String> {
    let first = parse(buf)?;
    // lint:allow(panic): the length guard in `parse` bounds the slice, so
    // the division is by a non-zero constant.
    let scaled = first.checked_div(4).expect("constant divisor");
    Ok(scaled + checksum(buf))
}

fn parse(buf: &[u8]) -> Result<u32, String> {
    match buf.first() {
        Some(b) => Ok(u32::from(*b)),
        None => Err("empty request".to_string()),
    }
}

fn checksum(buf: &[u8]) -> u32 {
    buf.iter().map(|b| u32::from(*b)).sum()
}
