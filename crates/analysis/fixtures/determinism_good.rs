//! Known-good fixture for the determinism taint pass: the same export-
//! reaching shape as the bad fixture, but hash containers are used only for
//! membership and order-insensitive reductions, annotated where hash
//! iteration is genuinely harmless, and the wall clock is annotated as
//! timing-only.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

struct Table;

impl Table {
    fn push_row(&mut self, _row: Vec<u32>) {}
}

/// Covered: called beneath `emit`, which holds the sink site.
fn sorted_rows(table: &HashMap<u32, u32>) -> Vec<u32> {
    // lint:allow(hash-iter): collected then sorted — iteration order never
    // reaches the output.
    let mut rows: Vec<u32> = table.values().copied().collect();
    rows.sort_unstable();
    rows
}

/// Covered: membership tests don't depend on iteration order.
fn count_members(keys: &[u32], seen: &HashSet<u32>) -> usize {
    keys.iter().filter(|k| seen.contains(k)).count()
}

/// Covered: the deadline never reaches the export.
fn bounded_wait() -> bool {
    // lint:allow(wall-clock): deadline bookkeeping only; nothing exported.
    let started = Instant::now();
    started.elapsed().as_millis() < 10
}

/// Sink-site function tying everything into taint coverage.
fn emit(table: &HashMap<u32, u32>, seen: &HashSet<u32>, out: &mut Table) {
    let rows = sorted_rows(table);
    let _n = count_members(&rows, seen);
    while bounded_wait() {}
    out.push_row(rows);
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_out_of_scope() {
        let set: HashSet<u32> = (0..4).collect();
        let mut total = 0;
        for v in set.iter() {
            total += v;
        }
        assert!(total > 0);
    }
}
