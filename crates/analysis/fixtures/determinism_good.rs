//! Known-good fixture for the determinism pass: hash containers used only
//! for membership and order-insensitive reductions, annotated where hash
//! iteration is genuinely harmless, wall clock annotated as timing-only.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn export_rows(table: &HashMap<u32, u32>) -> Vec<u32> {
    // lint:allow(hash-iter): collected then sorted — iteration order never
    // reaches the output.
    let mut rows: Vec<u32> = table.values().copied().collect();
    rows.sort_unstable();
    rows
}

fn count_members(keys: &[u32], seen: &HashSet<u32>) -> usize {
    keys.iter().filter(|k| seen.contains(k)).count()
}

fn bounded_wait() -> bool {
    // lint:allow(wall-clock): deadline bookkeeping only; nothing exported.
    let started = Instant::now();
    started.elapsed().as_millis() < 10
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_out_of_scope() {
        let set: HashSet<u32> = (0..4).collect();
        let mut total = 0;
        for v in set.iter() {
            total += v;
        }
        assert!(total > 0);
    }
}
