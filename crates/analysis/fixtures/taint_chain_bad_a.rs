//! Cross-file taint fixture, file A: the export side. `write_report` holds
//! the sink site; `collect_cells` reaches it and pulls values from file B
//! (`taint_chain_bad_b.rs`), so the nondeterminism source over there is two
//! call hops from the sink and in a different file.

struct Table;

impl Table {
    fn push_row(&mut self, _row: Vec<u64>) {}
}

fn write_report(out: &mut Table, vals: Vec<u64>) {
    out.push_row(vals);
}

fn collect_cells(out: &mut Table) {
    let vals = gather_values();
    write_report(out, vals);
}
