//! Cross-file taint fixture, file B: the source side. `gather_values` is
//! covered only because file A's `collect_cells` calls it on the way to
//! `push_row` — the finding's chain must cross the file boundary.

use std::collections::HashMap;

fn gather_values() -> Vec<u64> {
    let table: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    // BUG: hash-order iteration, two hops (and one file) from the sink.
    for (_k, v) in table.iter() {
        out.push(*v);
    }
    out
}
