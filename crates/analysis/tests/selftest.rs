//! `spade-lint` self-tests: every pass against its committed known-good /
//! known-bad fixture, plus the gate the repo actually relies on — the
//! current tree reports zero unannotated findings.

use spade_analysis::{analyze_files, analyze_tree, render_summary, Analysis, Pass};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Vec<String> {
    fixtures(&[name])
}

fn fixtures(names: &[&str]) -> Vec<String> {
    names
        .iter()
        .map(|name| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("fixtures")
                .join(name)
                .to_string_lossy()
                .into_owned()
        })
        .collect()
}

fn run(name: &str, pass: Pass) -> Analysis {
    analyze_files(&fixture(name), &pass).expect("fixture readable")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn bad_lock_fixture_reports_the_pr7_abba_cycle() {
    let analysis = run("lock_order_bad.rs", Pass::LockOrder);
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("acquires 'state' while holding 'stream-entry'")),
        "inversion edge missing: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("lock-order cycle: state → stream-entry → state")),
        "ABBA cycle missing: {rendered:?}"
    );
    assert!(
        rendered.iter().all(|f| f.contains("[lock-order]")),
        "unexpected non-lock findings: {rendered:?}"
    );
}

#[test]
fn good_lock_fixture_is_clean() {
    let analysis = run("lock_order_good.rs", Pass::LockOrder);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
}

#[test]
fn bad_determinism_fixture_flags_hash_iteration_and_wall_clock() {
    let analysis = run("determinism_bad.rs", Pass::Determinism);
    let by_lint = |lint: &str| analysis.findings.iter().filter(|f| f.lint == lint).count();
    assert_eq!(by_lint("hash-iter"), 3, "{:?}", analysis.findings);
    assert_eq!(by_lint("wall-clock"), 2, "{:?}", analysis.findings);
    // Every finding carries its chain to the sink.
    assert!(
        analysis
            .findings
            .iter()
            .all(|f| f.message.contains("feeds `push_row`")),
        "{:?}",
        analysis.findings
    );
}

#[test]
fn taint_chain_crosses_files_with_at_least_two_hops() {
    let analysis = analyze_files(
        &fixtures(&["taint_chain_bad_a.rs", "taint_chain_bad_b.rs"]),
        &Pass::Determinism,
    )
    .expect("fixtures readable");
    assert_eq!(analysis.findings.len(), 1, "{:?}", analysis.findings);
    let f = &analysis.findings[0];
    assert!(f.file.ends_with("taint_chain_bad_b.rs"), "{f:?}");
    assert_eq!(f.lint, "hash-iter");
    // The chain walks out of file B, through file A's collector, into the
    // sink: `gather_values` → called by `collect_cells` → calls
    // `write_report` → feeds `push_row` — two call hops before the sink.
    for hop in [
        "`gather_values`",
        "called by `collect_cells`",
        "calls `write_report`",
        "feeds `push_row`",
    ] {
        assert!(f.message.contains(hop), "missing hop {hop}: {}", f.message);
    }
}

#[test]
fn taint_coverage_is_a_superset_of_the_legacy_determinism_list() {
    use spade_analysis::source::SourceFile;
    use spade_analysis::{callgraph::CallGraph, determinism, symbols::SymbolIndex};
    let root = workspace_root();
    let rels = spade_analysis::walk_workspace(&root).expect("workspace walkable");
    let files: Vec<SourceFile> = rels
        .iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(rel)).expect("listed file readable");
            SourceFile::parse(rel, &src)
        })
        .collect();
    let index = SymbolIndex::build(&files);
    let graph = CallGraph::build(&files, &index);
    let covered = determinism::covered_files(&files, &index, &graph);
    for rel in spade_analysis::DETERMINISM_FILES {
        assert!(
            covered.contains(*rel),
            "{rel} was in the hand-maintained determinism scope but taint analysis does \
             not reach it from any sink"
        );
    }
}

#[test]
fn good_determinism_fixture_is_clean_and_annotations_counted() {
    let analysis = run("determinism_good.rs", Pass::Determinism);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
    assert_eq!(analysis.suppressed, 2);
    assert_eq!(analysis.allows.len(), 2);
}

#[test]
fn bad_panic_fixture_flags_only_the_reachable_sites() {
    let analysis = run("panics_bad.rs", Pass::Panics);
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert_eq!(rendered.len(), 2, "{rendered:?}");
    assert!(rendered.iter().any(|f| f.contains("`.unwrap()`")));
    assert!(rendered
        .iter()
        .any(|f| f.contains("`panic!`") && f.contains("handle_connection → parse")));
    assert!(
        !rendered.iter().any(|f| f.contains("build_server")),
        "setup-path unwrap must stay unflagged: {rendered:?}"
    );
}

#[test]
fn good_panic_fixture_is_clean() {
    let analysis = run("panics_good.rs", Pass::Panics);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
    assert_eq!(analysis.suppressed, 1);
}

#[test]
fn bad_units_fixture_flags_cross_unit_arithmetic_and_missing_annotations() {
    let analysis = run("units_bad.rs", Pass::Units);
    let by_lint = |lint: &str| analysis.findings.iter().filter(|f| f.lint == lint).count();
    assert_eq!(by_lint("unit-mismatch"), 2, "{:?}", analysis.findings);
    assert_eq!(by_lint("unit-missing"), 1, "{:?}", analysis.findings);
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.message.contains("pj") && f.message.contains("cycles")),
        "the pj + cycles mix must name both units: {:?}",
        analysis.findings
    );
}

#[test]
fn good_units_fixture_is_clean() {
    let analysis = run("units_good.rs", Pass::Units);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
}

#[test]
fn bad_schema_fixture_detects_golden_drift_and_duplicate_columns() {
    let golden = fixtures(&["schema_golden.csv"]).remove(0);
    let analysis =
        analyze_files(&fixture("schema_bad.rs"), &Pass::Schema(golden)).expect("fixture readable");
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert_eq!(rendered.len(), 2, "{rendered:?}");
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("exporter adds [rows_swept]")),
        "added-column drift missing: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("duplicate column `pe_rows`")),
        "duplicate push missing: {rendered:?}"
    );
}

#[test]
fn good_schema_fixture_is_clean() {
    let golden = fixtures(&["schema_golden.csv"]).remove(0);
    let analysis =
        analyze_files(&fixture("schema_good.rs"), &Pass::Schema(golden)).expect("fixture readable");
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
}

#[test]
fn json_rendering_escapes_payloads_and_reports_counts() {
    let analysis = run("units_bad.rs", Pass::Units);
    let json = spade_analysis::render_json(&analysis);
    assert!(json.contains("\"findings\": ["), "{json}");
    assert!(json.contains("\"lint\": \"unit-mismatch\""), "{json}");
    // Messages quote identifiers in backticks and units verbatim; the
    // escaper must keep the output a single well-formed JSON document
    // (no raw quotes or newlines inside string values).
    for line in json.lines() {
        let mut escaped = false;
        let mut in_str = false;
        for c in line.chars() {
            match c {
                '\\' if in_str => escaped = !escaped,
                '"' if !escaped => in_str = !in_str,
                _ => escaped = false,
            }
        }
        assert!(!in_str, "unterminated string in JSON line: {line}");
    }
    assert!(
        json.contains(&format!("\"files_analyzed\": {}", analysis.files_analyzed)),
        "{json}"
    );
}

#[test]
fn missing_listed_file_is_a_hard_error_not_a_silent_skip() {
    // A root whose `crates/` exists but holds none of the listed files must
    // refuse to run rather than quietly analyzing nothing.
    let empty = workspace_root().join("target/selftest-empty-ws");
    std::fs::create_dir_all(empty.join("crates")).expect("temp workspace creatable");
    let err = analyze_tree(&empty).expect_err("stale file lists must not pass silently");
    assert!(
        err.contains("missing from the workspace walk"),
        "wrong error: {err}"
    );
    assert!(
        err.contains("crates/bench/src/serve.rs"),
        "wrong error: {err}"
    );
}

#[test]
fn current_tree_has_zero_unannotated_findings() {
    let analysis = analyze_tree(&workspace_root()).expect("workspace sources readable");
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "lint findings in the tree: {rendered:#?}"
    );
    assert!(
        analysis.suppressed > 0,
        "suppression accounting broke: annotated sites exist in serve.rs"
    );
}

#[test]
fn summary_is_deterministic_and_matches_the_committed_allowlist() {
    let root = workspace_root();
    let first = render_summary(&analyze_tree(&root).unwrap());
    let second = render_summary(&analyze_tree(&root).unwrap());
    assert_eq!(first, second, "summary rendering must be deterministic");
    let committed = std::fs::read_to_string(root.join("crates/analysis/ALLOWLIST.md"))
        .expect("ALLOWLIST.md committed");
    assert_eq!(
        committed, first,
        "ALLOWLIST.md is stale; regenerate with \
         `cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md`"
    );
}
