//! `spade-lint` self-tests: every pass against its committed known-good /
//! known-bad fixture, plus the gate the repo actually relies on — the
//! current tree reports zero unannotated findings.

use spade_analysis::{analyze_files, analyze_tree, render_summary, Analysis, Pass};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    vec![path.to_string_lossy().into_owned()]
}

fn run(name: &str, pass: Pass) -> Analysis {
    analyze_files(&fixture(name), &pass).expect("fixture readable")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn bad_lock_fixture_reports_the_pr7_abba_cycle() {
    let analysis = run("lock_order_bad.rs", Pass::LockOrder);
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("acquires 'state' while holding 'stream-entry'")),
        "inversion edge missing: {rendered:?}"
    );
    assert!(
        rendered
            .iter()
            .any(|f| f.contains("lock-order cycle: state → stream-entry → state")),
        "ABBA cycle missing: {rendered:?}"
    );
    assert!(
        rendered.iter().all(|f| f.contains("[lock-order]")),
        "unexpected non-lock findings: {rendered:?}"
    );
}

#[test]
fn good_lock_fixture_is_clean() {
    let analysis = run("lock_order_good.rs", Pass::LockOrder);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
}

#[test]
fn bad_determinism_fixture_flags_hash_iteration_and_wall_clock() {
    let analysis = run("determinism_bad.rs", Pass::Determinism);
    let by_lint = |lint: &str| analysis.findings.iter().filter(|f| f.lint == lint).count();
    assert_eq!(by_lint("hash-iter"), 3, "{:?}", analysis.findings);
    assert_eq!(by_lint("wall-clock"), 2, "{:?}", analysis.findings);
}

#[test]
fn good_determinism_fixture_is_clean_and_annotations_counted() {
    let analysis = run("determinism_good.rs", Pass::Determinism);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
    assert_eq!(analysis.suppressed, 2);
    assert_eq!(analysis.allows.len(), 2);
}

#[test]
fn bad_panic_fixture_flags_only_the_reachable_sites() {
    let analysis = run("panics_bad.rs", Pass::Panics);
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert_eq!(rendered.len(), 2, "{rendered:?}");
    assert!(rendered.iter().any(|f| f.contains("`.unwrap()`")));
    assert!(rendered
        .iter()
        .any(|f| f.contains("`panic!`") && f.contains("handle_connection → parse")));
    assert!(
        !rendered.iter().any(|f| f.contains("build_server")),
        "setup-path unwrap must stay unflagged: {rendered:?}"
    );
}

#[test]
fn good_panic_fixture_is_clean() {
    let analysis = run("panics_good.rs", Pass::Panics);
    assert!(
        analysis.findings.is_empty(),
        "false positives: {:?}",
        analysis.findings
    );
    assert_eq!(analysis.suppressed, 1);
}

#[test]
fn current_tree_has_zero_unannotated_findings() {
    let analysis = analyze_tree(&workspace_root()).expect("workspace sources readable");
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "lint findings in the tree: {rendered:#?}"
    );
    assert!(
        analysis.suppressed > 0,
        "suppression accounting broke: annotated sites exist in serve.rs"
    );
}

#[test]
fn summary_is_deterministic_and_matches_the_committed_allowlist() {
    let root = workspace_root();
    let first = render_summary(&analyze_tree(&root).unwrap());
    let second = render_summary(&analyze_tree(&root).unwrap());
    assert_eq!(first, second, "summary rendering must be deterministic");
    let committed = std::fs::read_to_string(root.join("crates/analysis/ALLOWLIST.md"))
        .expect("ALLOWLIST.md committed");
    assert_eq!(
        committed, first,
        "ALLOWLIST.md is stale; regenerate with \
         `cargo run -q -p spade-analysis --bin spade-lint -- --summary > crates/analysis/ALLOWLIST.md`"
    );
}
