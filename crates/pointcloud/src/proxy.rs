//! Accuracy-proxy model for the dynamic-pruning trade-off study.
//!
//! The paper's accuracy numbers (Table I, Fig. 13(a)) come from models trained
//! on KITTI/nuScenes with vector-sparsity regularisation and pruning-aware
//! fine-tuning. Training is out of scope for this reproduction, so we model
//! accuracy with a *coverage-retention proxy*: detection accuracy degrades in
//! proportion to how much foreground evidence (active pillars inside
//! ground-truth boxes) the sparsification step discards, with a tolerance knee
//! that reflects the robustness added by regularised fine-tuning.
//!
//! The proxy reproduces the qualitative shape the paper reports: accuracy is
//! flat while pruning removes only background pillars (up to roughly 26 %
//! extra sparsity with fine-tuning), then degrades increasingly steeply.

use serde::{Deserialize, Serialize};

/// Accuracy-proxy parameters.
///
/// # Example
///
/// ```
/// use spade_pointcloud::AccuracyProxy;
///
/// let tuned = AccuracyProxy::with_finetuning(87.4);
/// let raw = AccuracyProxy::without_finetuning(87.4);
/// // With full foreground coverage, both retain the baseline.
/// assert!((tuned.estimate_map(1.0) - 87.4).abs() < 1e-9);
/// // Losing 20% of foreground coverage hurts the un-finetuned model more.
/// assert!(tuned.estimate_map(0.8) > raw.estimate_map(0.8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProxy {
    /// Dense-baseline mAP (percentage points, e.g. 87.4 for PP BEV on KITTI).
    pub baseline_map: f64,
    /// Coverage loss tolerated with no accuracy impact (fraction in `[0, 1)`).
    pub tolerance: f64,
    /// Accuracy lost (percentage points) per unit of coverage loss beyond the
    /// tolerance knee.
    pub slope: f64,
    /// Curvature of the post-knee degradation (1.0 = linear; >1 = accelerating).
    pub curvature: f64,
}

impl AccuracyProxy {
    /// Proxy for a model trained with vector-sparsity regularisation and
    /// pruning-aware fine-tuning (the paper's SpConv-P recipe).
    #[must_use]
    pub fn with_finetuning(baseline_map: f64) -> Self {
        Self {
            baseline_map,
            tolerance: 0.26,
            slope: 28.0,
            curvature: 1.6,
        }
    }

    /// Proxy for naive magnitude pruning without regularised fine-tuning.
    #[must_use]
    pub fn without_finetuning(baseline_map: f64) -> Self {
        Self {
            baseline_map,
            tolerance: 0.05,
            slope: 40.0,
            curvature: 1.3,
        }
    }

    /// Estimates mAP (percentage points) given the fraction of foreground
    /// (in-box) pillar evidence retained after sparsification.
    ///
    /// `foreground_coverage` is clamped to `[0, 1]`; `1.0` means no foreground
    /// pillar was discarded.
    #[must_use]
    pub fn estimate_map(&self, foreground_coverage: f64) -> f64 {
        let coverage = foreground_coverage.clamp(0.0, 1.0);
        let loss = 1.0 - coverage;
        if loss <= self.tolerance {
            return self.baseline_map;
        }
        let excess = (loss - self.tolerance) / (1.0 - self.tolerance).max(1e-9);
        let drop = self.slope * excess.powf(self.curvature);
        (self.baseline_map - drop).max(0.0)
    }

    /// Estimates accuracy degradation in percentage points relative to the
    /// dense baseline.
    #[must_use]
    pub fn estimate_drop(&self, foreground_coverage: f64) -> f64 {
        self.baseline_map - self.estimate_map(foreground_coverage)
    }
}

/// Fraction of foreground evidence retained: the ratio of kept in-box pillars
/// to all in-box pillars.
///
/// Returns `1.0` when there is no foreground at all (nothing to lose).
#[must_use]
pub fn foreground_coverage(kept_in_box: usize, total_in_box: usize) -> f64 {
    if total_in_box == 0 {
        1.0
    } else {
        kept_in_box as f64 / total_in_box as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_retains_baseline() {
        let p = AccuracyProxy::with_finetuning(77.3);
        assert_eq!(p.estimate_map(1.0), 77.3);
        assert_eq!(p.estimate_drop(1.0), 0.0);
    }

    #[test]
    fn accuracy_is_flat_within_tolerance() {
        let p = AccuracyProxy::with_finetuning(87.4);
        assert_eq!(p.estimate_map(0.80), 87.4);
        assert_eq!(p.estimate_map(0.74), 87.4);
        assert!(p.estimate_map(0.5) < 87.4);
    }

    #[test]
    fn finetuning_dominates_naive_pruning() {
        let tuned = AccuracyProxy::with_finetuning(87.4);
        let naive = AccuracyProxy::without_finetuning(87.4);
        for cov in [0.9, 0.8, 0.7, 0.5, 0.3] {
            assert!(
                tuned.estimate_map(cov) >= naive.estimate_map(cov),
                "coverage {cov}"
            );
        }
    }

    #[test]
    fn degradation_is_monotone_in_coverage_loss() {
        let p = AccuracyProxy::with_finetuning(87.4);
        let mut prev = p.estimate_map(1.0);
        for i in 1..=20 {
            let cov = 1.0 - i as f64 * 0.05;
            let m = p.estimate_map(cov);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn map_never_goes_negative() {
        let p = AccuracyProxy::without_finetuning(50.0);
        assert!(p.estimate_map(0.0) >= 0.0);
    }

    #[test]
    fn coverage_helper_handles_empty_foreground() {
        assert_eq!(foreground_coverage(0, 0), 1.0);
        assert_eq!(foreground_coverage(5, 10), 0.5);
        assert_eq!(foreground_coverage(10, 10), 1.0);
    }

    #[test]
    fn out_of_range_coverage_is_clamped() {
        let p = AccuracyProxy::with_finetuning(80.0);
        assert_eq!(p.estimate_map(1.5), 80.0);
        assert!(p.estimate_map(-0.5) >= 0.0);
    }
}
