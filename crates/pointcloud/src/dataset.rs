//! Dataset presets bundling scene, LiDAR, and pillarisation configurations.

use crate::lidar::LidarConfig;
use crate::pillarize::{pillarize, PillarizationConfig, PillarizedCloud};
use crate::scene::{Scene, SceneConfig, SceneGenerator};
use serde::{Deserialize, Serialize};
use spade_tensor::GridShape;

/// Which benchmark a preset approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// KITTI-like: forward-facing 432×496 grid, used by PointPillars (PP/SPP).
    KittiLike,
    /// nuScenes-like: surround 512×512 grid, used by CenterPoint and PillarNet.
    NuscenesLike,
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetKind::KittiLike => f.write_str("KITTI-like"),
            DatasetKind::NuscenesLike => f.write_str("nuScenes-like"),
        }
    }
}

/// A complete synthetic-dataset preset: scene statistics, LiDAR model, and
/// pillarisation grid.
///
/// # Example
///
/// ```
/// use spade_pointcloud::DatasetPreset;
/// let kitti = DatasetPreset::kitti_like();
/// let frame = kitti.generate_frame(0);
/// assert!(frame.pillars.occupancy() > 0.005 && frame.pillars.occupancy() < 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetPreset {
    kind: DatasetKind,
    scene: SceneConfig,
    lidar: LidarConfig,
    pillar: PillarizationConfig,
}

/// One generated frame: the scene (ground truth), the raw point cloud size,
/// and the pillarised BEV occupancy.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The generated scene with ground-truth objects.
    pub scene: Scene,
    /// Number of LiDAR points sampled.
    pub num_points: usize,
    /// The pillarised point cloud.
    pub pillars: PillarizedCloud,
}

impl DatasetPreset {
    /// The KITTI-like preset (PointPillars grid).
    #[must_use]
    pub fn kitti_like() -> Self {
        Self {
            kind: DatasetKind::KittiLike,
            scene: SceneConfig::kitti_like(),
            lidar: LidarConfig::kitti_like(),
            pillar: PillarizationConfig::kitti_like(),
        }
    }

    /// The nuScenes-like preset (CenterPoint / PillarNet grid).
    #[must_use]
    pub fn nuscenes_like() -> Self {
        Self {
            kind: DatasetKind::NuscenesLike,
            scene: SceneConfig::nuscenes_like(),
            lidar: LidarConfig::nuscenes_like(),
            pillar: PillarizationConfig::nuscenes_like(),
        }
    }

    /// Which benchmark this preset approximates.
    #[must_use]
    pub const fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The scene-generation configuration.
    #[must_use]
    pub fn scene_config(&self) -> SceneConfig {
        self.scene.clone()
    }

    /// The LiDAR sampling configuration.
    #[must_use]
    pub fn lidar_config(&self) -> LidarConfig {
        self.lidar.clone()
    }

    /// The pillarisation configuration.
    #[must_use]
    pub fn pillar_config(&self) -> PillarizationConfig {
        self.pillar.clone()
    }

    /// The BEV grid shape of this preset.
    #[must_use]
    pub fn grid_shape(&self) -> GridShape {
        self.pillar.grid_shape()
    }

    /// Generates one complete frame (scene → LiDAR → pillars), seeded.
    #[must_use]
    pub fn generate_frame(&self, seed: u64) -> Frame {
        self.generate_frame_with_scene_config(self.scene.clone(), seed)
    }

    /// Generates a frame from an explicit scene configuration while keeping
    /// this preset's LiDAR and pillarisation settings — the one frame-
    /// construction path shared with [`crate::drive::DriveScenario`], which
    /// modulates scene density per frame.
    #[must_use]
    pub fn generate_frame_with_scene_config(&self, scene_cfg: SceneConfig, seed: u64) -> Frame {
        let scene = SceneGenerator::new(scene_cfg, seed).generate();
        let points = scene.sample_lidar(&self.lidar, seed.wrapping_add(1));
        let pillars = pillarize(&points, &self.pillar);
        Frame {
            scene,
            num_points: points.len(),
            pillars,
        }
    }

    /// Generates a batch of frames with consecutive seeds starting at
    /// `base_seed`.
    #[must_use]
    pub fn generate_frames(&self, base_seed: u64, count: usize) -> Vec<Frame> {
        (0..count)
            .map(|i| self.generate_frame(base_seed.wrapping_add(i as u64 * 1000)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kitti_frame_occupancy_is_a_few_percent() {
        let frame = DatasetPreset::kitti_like().generate_frame(1);
        let occ = frame.pillars.occupancy();
        assert!(occ > 0.005, "occupancy {occ} too low");
        assert!(occ < 0.25, "occupancy {occ} too high");
    }

    #[test]
    fn both_presets_have_realistic_occupancy() {
        // The paper reports that only roughly 3-5% of BEV cells hold an active
        // pillar; both presets should land in that few-percent regime.
        for preset in [DatasetPreset::kitti_like(), DatasetPreset::nuscenes_like()] {
            let occ: f64 = preset
                .generate_frames(0, 3)
                .iter()
                .map(|f| f.pillars.occupancy())
                .sum::<f64>()
                / 3.0;
            assert!(occ > 0.005, "{:?} occupancy {occ} too low", preset.kind());
            assert!(occ < 0.15, "{:?} occupancy {occ} too high", preset.kind());
        }
    }

    #[test]
    fn frame_generation_is_deterministic() {
        let p = DatasetPreset::kitti_like();
        let a = p.generate_frame(33);
        let b = p.generate_frame(33);
        assert_eq!(a.num_points, b.num_points);
        assert_eq!(a.pillars.active_coords, b.pillars.active_coords);
    }

    #[test]
    fn grid_shapes_match_presets() {
        assert_eq!(
            DatasetPreset::kitti_like().grid_shape(),
            GridShape::new(432, 496)
        );
        assert_eq!(
            DatasetPreset::nuscenes_like().grid_shape(),
            GridShape::new(512, 512)
        );
    }

    #[test]
    fn batch_uses_distinct_seeds() {
        let frames = DatasetPreset::kitti_like().generate_frames(7, 3);
        assert_eq!(frames.len(), 3);
        assert_ne!(
            frames[0].pillars.active_coords,
            frames[1].pillars.active_coords
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(DatasetKind::KittiLike.to_string(), "KITTI-like");
        assert_eq!(DatasetKind::NuscenesLike.to_string(), "nuScenes-like");
    }
}
